"""What-if: how hardware evolution erodes the paper's advantage.

The MPI-LAPI win is fundamentally a *copy-avoidance* win, so it is a
bet on memcpy being slow relative to the wire.  Sweeping the host copy
bandwidth shows the 64 KB bandwidth gap shrinking as memory gets faster
— the quantitative version of why zero-copy mattered so much in 1998
and why the calculus shifts on later machines (and why the paper's
successors — today's UCX/libfabric — still fight the same fight at
today's ratios).
"""

import pytest

from repro import MachineParams
from repro.bench.harness import bandwidth_mbps, pingpong_us

COPY_RATES = [100.0, 150.0, 400.0, 1600.0]


def gap_at(copy_mbps: float) -> float:
    """Relative MPI-LAPI bandwidth advantage at 64 KB."""
    p = MachineParams(copy_bandwidth_MBps=copy_mbps)
    n = bandwidth_mbps("native", 65536, count=12, params=p)
    l = bandwidth_mbps("lapi-enhanced", 65536, count=12, params=p)
    return (l - n) / n


@pytest.mark.parametrize("copy_mbps", COPY_RATES)
def test_bandwidth_gap_vs_copy_rate(benchmark, copy_mbps):
    g = benchmark.pedantic(lambda: gap_at(copy_mbps), rounds=1, iterations=1)
    assert g > -0.15


def test_gap_shrinks_with_faster_memory(benchmark):
    gaps = benchmark.pedantic(
        lambda: [gap_at(r) for r in COPY_RATES], rounds=1, iterations=1
    )
    # monotone (allowing tiny noise): slower memcpy -> bigger LAPI win
    for a, b in zip(gaps, gaps[1:]):
        assert b <= a + 0.02, gaps
    assert gaps[0] > 0.15, "on 1998-class memory the win is large"
    assert gaps[-1] < 0.10, "on fast memory the copy argument fades"


def test_small_message_latency_insensitive_to_copy_rate(benchmark):
    """Tiny messages are protocol-bound, not copy-bound: the crossover
    region of Fig 11 barely moves with memcpy speed."""

    def measure():
        out = {}
        for r in (150.0, 1600.0):
            p = MachineParams(copy_bandwidth_MBps=r)
            out[r] = pingpong_us("lapi-enhanced", 16, reps=6, params=p)
        return out

    t = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert abs(t[150.0] - t[1600.0]) < 2.0
