"""Ablation: SMP nodes vs the completion-handler thread switch.

The paper's testbed uses 4-way SMP nodes but the MPI task and the LAPI
completion thread still contend in practice; this ablation shows what
an idle spare core buys: the Base variant's thread hand-off becomes
cheap (the handler runs concurrently), shrinking the Base↔Enhanced gap
that motivated the enhanced LAPI in the first place.
"""

import pytest

from repro import MachineParams
from repro.bench.harness import pingpong_us

CORES = [1, 2, 4]


@pytest.mark.parametrize("cores", CORES)
@pytest.mark.parametrize("variant", ["lapi-base", "lapi-enhanced"])
def test_latency_vs_cores(benchmark, cores, variant):
    t = benchmark.pedantic(
        lambda: pingpong_us(variant, 64, reps=6,
                            params=MachineParams(cpus_per_node=cores)),
        rounds=1, iterations=1,
    )
    assert t > 0


def test_smp_collapses_base_gap(benchmark):
    def measure():
        out = {}
        for cores in (1, 2):
            p = MachineParams(cpus_per_node=cores)
            out[cores] = (
                pingpong_us("lapi-base", 64, reps=6, params=p),
                pingpong_us("lapi-enhanced", 64, reps=6, params=p),
            )
        return out

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    gap_up = out[1][0] - out[1][1]
    gap_smp = out[2][0] - out[2][1]
    assert gap_smp < 0.5 * gap_up, (gap_up, gap_smp)
