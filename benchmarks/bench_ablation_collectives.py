"""Ablation: collective algorithm choice × protocol stack.

The MPI layer builds collectives from point-to-point messages (paper
§2), so the best decomposition depends on how the stack prices
messages.  Measures allreduce algorithms at small and large vector
sizes on both stacks.
"""

import numpy as np
import pytest

from repro import SPCluster
from repro.mpi.coll_algorithms import ALLREDUCE_ALGORITHMS

SIZES = {"small": 64, "large": 65536}


def allreduce_time(stack, algo, nbytes, nodes=4):
    cl = SPCluster(nodes, stack=stack)
    n = nbytes // 8

    def program(comm, rank, size):
        comm.coll_algorithms["allreduce"] = algo
        out = np.zeros(n)
        yield from comm.allreduce(np.full(n, float(rank)), out)
        return None

    return cl.run(program).elapsed_us


@pytest.mark.parametrize("algo", sorted(ALLREDUCE_ALGORITHMS))
@pytest.mark.parametrize("label", sorted(SIZES))
@pytest.mark.parametrize("stack", ["native", "lapi-enhanced"])
def test_allreduce_algo(benchmark, stack, label, algo):
    t = benchmark.pedantic(
        lambda: allreduce_time(stack, algo, SIZES[label]), rounds=1, iterations=1
    )
    assert t > 0


def test_ring_wins_large_reduce_bcast_wins_small(benchmark):
    def measure():
        return {
            (algo, label): allreduce_time("lapi-enhanced", algo, nbytes)
            for algo in ("reduce_bcast", "ring")
            for label, nbytes in SIZES.items()
        }

    t = benchmark.pedantic(measure, rounds=1, iterations=1)
    # bandwidth-optimal ring wins on big vectors...
    assert t[("ring", "large")] < t[("reduce_bcast", "large")]
    # ...but pays extra rounds on small ones
    assert t[("reduce_bcast", "small")] < t[("ring", "small")]
