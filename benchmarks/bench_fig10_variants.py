"""Fig 10 — ping-pong time of RAW LAPI vs the three MPI-LAPI variants.

Regenerates the figure's series (reduced size sweep for CI speed) and
asserts the paper's shape: Base >> Counters >= Enhanced ~= RAW LAPI,
with the Counters variant tracking Enhanced in the eager range and Base
in the rendezvous range.
"""

import pytest

from repro.bench import fig10
from repro.bench.harness import pingpong_us, raw_lapi_pingpong_us

SIZES = [4, 1024, 16384]


@pytest.mark.parametrize("size", SIZES)
def test_raw_lapi(benchmark, size):
    t = benchmark.pedantic(
        lambda: raw_lapi_pingpong_us(size, reps=6), rounds=2, iterations=1
    )
    assert t > 0


@pytest.mark.parametrize("variant", ["lapi-base", "lapi-counters", "lapi-enhanced"])
@pytest.mark.parametrize("size", SIZES)
def test_mpi_lapi_variant(benchmark, variant, size):
    t = benchmark.pedantic(
        lambda: pingpong_us(variant, size, reps=6), rounds=2, iterations=1
    )
    assert t > 0


def test_fig10_shape(benchmark, shape_report):
    data = benchmark.pedantic(
        lambda: fig10.rows(sizes=[4, 256, 1024, 16384, 65536]),
        rounds=1, iterations=1,
    )
    problems = fig10.check_shape(data)
    shape_report["fig10"] = problems
    assert not problems, problems
    # the §5 narrative in one assertion: the base->enhanced gap at eager
    # sizes is dominated by the completion-handler thread switches
    small = data[0]
    assert small["lapi-base"] - small["lapi-enhanced"] > 20.0


def main(argv=None) -> int:
    """Write BENCH_fig10_variants.json: the variant sweep plus the
    per-phase breakdown behind the Base/Enhanced gap."""
    import argparse

    from repro.bench.artifact import make_artifact, write_artifact
    from repro.obs import breakdown as obs_breakdown

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--out", default=".", help="output directory")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel sweep workers (0 = one per CPU); "
                             "results are identical at any worker count")
    args = parser.parse_args(argv)

    sizes = [4, 256, 1024, 16384, 65536]
    data = fig10.rows(sizes=sizes, jobs=args.jobs)
    breakdown = {}
    for variant in ("lapi-base", "lapi-counters", "lapi-enhanced"):
        summary, _ = obs_breakdown(variant, 256, reps=4)
        breakdown[variant] = summary
    doc = make_artifact(
        "fig10_variants",
        params={"sizes": sizes, "breakdown_bytes": 256},
        results=data,
        breakdown=breakdown,
    )
    path = write_artifact(doc, args.out)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
