"""Ablation: the native interrupt handler's hysteresis dwell (Fig 13).

Sweeping the dwell window shows interrupt-mode latency degrading
roughly linearly with it, and the dwell counter confirms the mechanism.
"""

import pytest

from repro import MachineParams, SPCluster
from repro.bench.harness import interrupt_pingpong_us

DWELLS = [10.0, 40.0, 80.0, 160.0]


@pytest.mark.parametrize("dwell", DWELLS)
def test_native_interrupt_latency_vs_dwell(benchmark, dwell):
    t = benchmark.pedantic(
        lambda: interrupt_pingpong_us(
            "native", 64, reps=6,
            params=MachineParams(hysteresis_initial_us=dwell,
                                 hysteresis_max_us=4 * dwell),
        ),
        rounds=1, iterations=1,
    )
    assert t > 0


def test_latency_monotonic_in_dwell(benchmark):
    def measure():
        return [
            interrupt_pingpong_us(
                "native", 64, reps=6,
                params=MachineParams(hysteresis_initial_us=d,
                                     hysteresis_max_us=4 * d),
            )
            for d in DWELLS
        ]

    ts = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert all(a < b for a, b in zip(ts, ts[1:])), ts


def test_dwell_counter_records_mechanism(benchmark):
    def measure():
        cluster = SPCluster(2, stack="native", interrupt_mode=True)

        def program(comm, rank, size):
            import numpy as np

            if rank == 0:
                yield from comm.send(b"\x07" * 64, dest=1)
                return None
            # spin on buffer contents (no MPI calls): progress can only
            # come from the interrupt path, dwell included
            buf = np.zeros(64, dtype=np.uint8)
            yield from comm.irecv(buf, source=0)
            while buf[-1] != 7:
                yield from comm.backend.cpu.execute(
                    "user", comm.backend.params.poll_check_us
                )
            # let the in-flight interrupt handler finish its dwell before
            # the run ends, so the statistic is recorded
            yield comm.env.timeout(2000.0)
            return None

        return cluster.run(program).stats

    stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert stats.hysteresis_dwells >= 1
    assert stats.interrupts >= 1
