"""Simulator-kernel micro-benchmark: events/sec, packets/sec, ns/event.

Times the discrete-event kernel itself, not the modelled machine: four
workloads stress the paths the hot-path optimisation touched —

- ``timeout_wheel``  — nonzero delays, pure heap scheduling;
- ``event_chain``    — delay-0 timeouts, the deque fast path;
- ``store_churn``    — producer/consumer resource ops (pooled events);
- ``pingpong``       — the full LAPI/MPI stack, for packets/sec.

Every workload is deterministic: the *event count* and final *simulated
time* must reproduce exactly between runs, rounds, and kernel versions
(they are the regression-gated fields of ``BENCH_simcore.json``); only
the wall-clock fields (``wall_ms``, ``events_per_sec``, ``ns_per_event``,
``packets_per_sec``) vary with the machine, and the CI gate compares
those with effectively infinite tolerance.

CLI::

    python benchmarks/bench_simcore.py --out DIR [--rounds N]
"""

from __future__ import annotations

import time

from repro.sim import Environment, Store

#: per-round wall-clock measurements keep the best of this many runs
DEFAULT_ROUNDS = 5


# ------------------------------------------------------------- workloads
def wl_timeout_wheel(procs: int = 200, touts: int = 200):
    """Heap-heavy: every timeout has a nonzero, scattered delay."""
    env = Environment()

    def runner(i):
        for k in range(touts):
            yield env.timeout(1.0 + (i * 7 + k) % 13)

    for i in range(procs):
        env.process(runner(i))
    env.run()
    return env._seq, env.now, 0


def wl_event_chain(procs: int = 50, steps: int = 4000):
    """Delay-0 timeouts back to back: the same-instant deque fast path."""
    env = Environment()

    def runner():
        t = env.timeout
        for _ in range(steps):
            yield t(0)

    for _ in range(procs):
        env.process(runner())
    env.run()
    return env._seq, env.now, 0


def wl_store_churn(pairs: int = 100, rounds: int = 200):
    """Producer/consumer pairs over Stores: pooled operation events."""
    env = Environment()

    def producer(s):
        for k in range(rounds):
            s.put(k)
            yield env.timeout(0)

    def consumer(s):
        for _ in range(rounds):
            yield s.get()

    for _ in range(pairs):
        s = Store(env)
        env.process(producer(s))
        env.process(consumer(s))
    env.run()
    return env._seq, env.now, 0


def wl_pingpong(reps: int = 30, msg_size: int = 4096,
                stack: str = "lapi-enhanced"):
    """The full simulated stack end to end; counts fabric packets."""
    from repro.cluster import SPCluster

    cluster = SPCluster(2, stack=stack, seed=0)
    payload = bytes(msg_size)

    def program(comm, rank, size):
        buf = bytearray(msg_size)
        yield from comm.barrier()
        for _ in range(reps):
            if rank == 0:
                yield from comm.send(payload, dest=1)
                yield from comm.recv(buf, source=1)
            else:
                yield from comm.recv(buf, source=0)
                yield from comm.send(payload, dest=0)

    cluster.run(program)
    env = cluster.env
    return env._seq, env.now, cluster.fabric.delivered


WORKLOADS = (
    ("timeout_wheel", wl_timeout_wheel),
    ("event_chain", wl_event_chain),
    ("store_churn", wl_store_churn),
    ("pingpong", wl_pingpong),
)


# ------------------------------------------------------------- measuring
def measure(fn, rounds: int = DEFAULT_ROUNDS) -> tuple[int, float, int, float]:
    """(events, sim_time_us, packets, best_wall_s) over ``rounds`` runs.

    The deterministic counters must agree across rounds; a mismatch
    means the kernel lost determinism and is raised immediately.
    """
    counts = None
    best = float("inf")
    for _ in range(max(1, rounds)):
        t0 = time.perf_counter()
        got = fn()
        wall = time.perf_counter() - t0
        if counts is None:
            counts = got
        elif got != counts:
            raise AssertionError(f"{fn.__name__}: nondeterministic counters "
                                 f"{got} != {counts}")
        best = min(best, wall)
    events, sim_us, packets = counts
    return events, sim_us, packets, best


def rows(rounds: int = DEFAULT_ROUNDS) -> list[dict]:
    out = []
    total_events = 0
    total_packets = 0
    total_wall = 0.0
    for name, fn in WORKLOADS:
        events, sim_us, packets, wall = measure(fn, rounds)
        total_events += events
        total_packets += packets
        total_wall += wall
        out.append(_row(name, events, sim_us, packets, wall))
    # the headline aggregate: all workloads' events over their summed
    # best wall times (the number the before/after speedup quotes)
    out.append(_row("TOTAL", total_events, 0.0, total_packets, total_wall))
    return out


def _row(name: str, events: int, sim_us: float, packets: int,
         wall_s: float) -> dict:
    return {
        "workload": name,
        "events": events,
        "sim_time_us": sim_us,
        "packets": packets,
        "wall_ms": wall_s * 1e3,
        "events_per_sec": events / wall_s,
        "ns_per_event": wall_s * 1e9 / events,
        "packets_per_sec": packets / wall_s if packets else 0.0,
    }


# --------------------------------------------------------------- pytest
def test_simcore_counts_deterministic():
    """Each workload's event/packet counters reproduce exactly."""
    for name, fn in WORKLOADS:
        assert fn() == fn(), f"{name}: counters not deterministic"


# ------------------------------------------------------------------ CLI
def main(argv=None) -> int:
    """Write the schema-versioned BENCH_simcore.json artifact."""
    import argparse

    from repro.bench.artifact import make_artifact, write_artifact

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--out", default=".", help="output directory")
    parser.add_argument("--rounds", type=int, default=DEFAULT_ROUNDS,
                        help="wall-clock rounds per workload (best kept)")
    args = parser.parse_args(argv)

    data = rows(rounds=args.rounds)
    doc = make_artifact(
        "simcore",
        params={"rounds": args.rounds,
                "workloads": [name for name, _ in WORKLOADS]},
        results=data,
    )
    path = write_artifact(doc, args.out)
    print(f"wrote {path}")
    for r in data:
        print(f"  {r['workload']:14s} {r['events']:>9d} events "
              f"{r['wall_ms']:8.1f} ms  {r['events_per_sec'] / 1e6:6.2f} M ev/s "
              f"{r['ns_per_event']:7.1f} ns/ev")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
