"""Ablation: the native stack's pipe staging window (16 KB first/last).

The copies through the pipe buffers are the native stack's §2 overhead;
growing the window hurts native bandwidth, shrinking it toward zero
approaches MPI-LAPI's copy discipline.
"""

import pytest

from repro import MachineParams
from repro.bench.harness import bandwidth_mbps

WINDOWS = [0, 4096, 16384, 65536]


@pytest.mark.parametrize("window", WINDOWS)
def test_native_bandwidth_vs_copy_window(benchmark, window):
    bw = benchmark.pedantic(
        lambda: bandwidth_mbps(
            "native", 65536, count=12,
            params=MachineParams(pipe_copy_window=window),
        ),
        rounds=1, iterations=1,
    )
    assert bw > 0


def test_bandwidth_monotonic_in_window(benchmark):
    def measure():
        return [
            bandwidth_mbps("native", 65536, count=12,
                           params=MachineParams(pipe_copy_window=w))
            for w in WINDOWS
        ]

    bws = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert all(a >= b * 0.999 for a, b in zip(bws, bws[1:])), bws
    # zero staging narrows (not necessarily closes) the gap to MPI-LAPI
    lapi = bandwidth_mbps("lapi-enhanced", 65536, count=12)
    assert bws[0] > bws[2], "removing staging copies must help"
    assert lapi > bws[2], "with the paper's 16K window MPI-LAPI wins"
