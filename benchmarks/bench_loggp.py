"""LogGP characterisation as regression-checked numbers."""

import pytest

from repro.bench import loggp


@pytest.mark.parametrize("stack", ["native", "lapi-enhanced"])
def test_fit(benchmark, stack):
    out = benchmark.pedantic(lambda: loggp.fit(stack), rounds=1, iterations=1)
    assert out["L_plus_2o_us"] > 0
    assert out["G_us_per_byte"] > 0


def test_paper_story_in_loggp_terms(benchmark):
    data = benchmark.pedantic(loggp.rows, rounds=1, iterations=1)
    native, lapi = data
    # MPI-LAPI: slightly larger constant term...
    assert lapi["L_plus_2o_us"] > native["L_plus_2o_us"]
    assert lapi["L_plus_2o_us"] - native["L_plus_2o_us"] < 6.0
    # ...much smaller per-byte gap (the copy-avoidance dividend)
    assert native["G_us_per_byte"] > 1.2 * lapi["G_us_per_byte"]
    # and the implied crossover lands in the hundreds of bytes
    crossover = (lapi["L_plus_2o_us"] - native["L_plus_2o_us"]) / (
        native["G_us_per_byte"] - lapi["G_us_per_byte"]
    )
    assert 30 < crossover < 2000
