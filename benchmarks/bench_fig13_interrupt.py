"""Fig 13 — interrupt-mode latency, native MPI vs MPI-LAPI.

Shape: MPI-LAPI wins decisively at every size; the native stack's
hysteresis dwell (its interrupt handler spins waiting for more packets)
is the pathology the paper identifies.
"""

import pytest

from repro import MachineParams
from repro.bench import fig13
from repro.bench.harness import interrupt_pingpong_us

SIZES = [4, 1024]


@pytest.mark.parametrize("stack", ["native", "lapi-enhanced"])
@pytest.mark.parametrize("size", SIZES)
def test_interrupt_latency(benchmark, stack, size):
    t = benchmark.pedantic(
        lambda: interrupt_pingpong_us(stack, size, reps=6), rounds=2, iterations=1
    )
    assert t > 0


def test_fig13_shape(benchmark, shape_report):
    data = benchmark.pedantic(
        lambda: fig13.rows(sizes=[1, 64, 1024, 8192]), rounds=1, iterations=1
    )
    problems = fig13.check_shape(data)
    shape_report["fig13"] = problems
    assert not problems, problems


def test_hysteresis_dwells_are_the_cause(benchmark):
    """Structural check: the native stack actually takes dwells, and
    removing them (hysteresis window -> ~0) closes most of the gap."""

    def measure():
        normal = interrupt_pingpong_us("native", 64, reps=6)
        no_dwell = interrupt_pingpong_us(
            "native", 64, reps=6,
            params=MachineParams(hysteresis_initial_us=1.0, hysteresis_max_us=1.0),
        )
        lapi = interrupt_pingpong_us("lapi-enhanced", 64, reps=6)
        return normal, no_dwell, lapi

    normal, no_dwell, lapi = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert normal > no_dwell * 1.5
    assert no_dwell < lapi * 1.8


def main(argv=None) -> int:
    """Write BENCH_fig13_interrupt.json."""
    import argparse

    from repro.bench.artifact import make_artifact, write_artifact

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--out", default=".", help="output directory")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel sweep workers (0 = one per CPU); "
                             "results are identical at any worker count")
    args = parser.parse_args(argv)

    sizes = [1, 64, 1024, 8192]
    data = fig13.rows(sizes=sizes, jobs=args.jobs)
    doc = make_artifact("fig13_interrupt", params={"sizes": sizes}, results=data)
    path = write_artifact(doc, args.out)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
