"""LAPI primitive microbenchmarks (Table 1 operations under load)."""

import pytest

from repro.bench import micro


@pytest.mark.parametrize("size", [8, 1024, 16384])
def test_amsend(benchmark, size):
    t = benchmark.pedantic(lambda: micro.amsend_oneway_us(size, reps=6),
                           rounds=1, iterations=1)
    assert t > 0


@pytest.mark.parametrize("size", [8, 16384])
def test_put(benchmark, size):
    t = benchmark.pedantic(lambda: micro.put_oneway_us(size, reps=6),
                           rounds=1, iterations=1)
    assert t > 0


def test_get(benchmark):
    t = benchmark.pedantic(lambda: micro.get_roundtrip_us(1024, reps=4),
                           rounds=1, iterations=1)
    assert t > 0


def test_rmw(benchmark):
    t = benchmark.pedantic(lambda: micro.rmw_roundtrip_us(reps=4),
                           rounds=1, iterations=1)
    assert t > 0


def test_gfence(benchmark):
    t = benchmark.pedantic(lambda: micro.gfence_us(4), rounds=1, iterations=1)
    assert t > 0


def test_primitive_relationships(benchmark):
    """Structural sanity: a Get costs about a full round trip of its
    payload; Put and Amsend are within a whisker of each other (Put IS
    an Amsend with the internal put handler)."""

    def measure():
        return {
            "amsend": micro.amsend_oneway_us(1024, reps=6),
            "amsend8": micro.amsend_oneway_us(8, reps=6),
            "put": micro.put_oneway_us(1024, reps=6),
            "get": micro.get_roundtrip_us(1024, reps=4),
            "rmw": micro.rmw_roundtrip_us(reps=4),
        }

    t = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert abs(t["amsend"] - t["put"]) < 2.0
    # a Get is a tiny request one way plus the payload back
    assert abs(t["get"] - (t["amsend8"] + t["amsend"])) < 10.0
    # an Rmw is two tiny messages
    assert abs(t["rmw"] - 2 * t["amsend8"]) < 5.0
