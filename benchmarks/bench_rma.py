"""RMA (MPI-3 one-sided) vs two-sided — the layering contrast.

The paper built two-sided MPI on one-sided LAPI; ``repro.mpi.rma`` maps
MPI-3 one-sided back onto those primitives directly.  The asserted
shape: a fence-synchronized small put beats two-sided send/recv on the
thin LAPI mapping, while the native stack — which must *emulate* RMA
through a target-side server over send/recv — pays for the layering
inversion at every size.
"""

import pytest

from repro.bench import rma

SIZES = [8, 1024, 16384]


@pytest.mark.parametrize("stack", ["lapi-enhanced", "native"])
@pytest.mark.parametrize("size", SIZES)
def test_rma_pingpong(benchmark, stack, size):
    t = benchmark.pedantic(
        lambda: rma.rma_pingpong_us(stack, size, reps=6), rounds=2,
        iterations=1,
    )
    assert t > 0


@pytest.mark.parametrize("stack", ["lapi-enhanced", "native"])
def test_rma_lock_round(benchmark, stack):
    t = benchmark.pedantic(
        lambda: rma.rma_lock_us(stack, 8, reps=6), rounds=2, iterations=1
    )
    assert t > 0


def test_rma_shape(benchmark, shape_report):
    data = benchmark.pedantic(lambda: rma.rows(), rounds=1, iterations=1)
    problems = rma.check(data)
    shape_report["rma"] = problems
    assert not problems, problems


def _flatten(data):
    """One artifact row per (series, size) cell, deterministic order.

    The schema wants every row to carry the same keys, so each row is
    padded with the union of all series' columns (``None`` where the
    series has no such measurement).
    """
    rows = []
    for series in ("latency", "lock", "bandwidth"):
        for row in data[series]:
            out = {"label": f"{series}:{row['size']}", "series": series}
            out.update(row)
            del out["size"]  # the label carries it; keeps row keys unique
            rows.append(out)
    columns = sorted({k for r in rows for k in r})
    return [{k: r.get(k) for k in columns} for r in rows]


def main(argv=None) -> int:
    """Write the schema-versioned BENCH_rma.json artifact: the three
    RMA series (latency vs two-sided, passive-target rounds, streaming
    bandwidth) flattened to labelled rows."""
    import argparse

    from repro.bench.artifact import make_artifact, write_artifact

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--out", default=".", help="output directory")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel sweep workers (0 = one per CPU); "
                             "results are identical at any worker count")
    args = parser.parse_args(argv)

    sizes = [8, 256, 1024, 16384]
    data = rma.rows(sizes=sizes, jobs=args.jobs)
    problems = rma.check(data)
    doc = make_artifact(
        "rma",
        params={"sizes": sizes, "stacks": list(rma.LAT_STACKS)},
        results=_flatten(data),
    )
    path = write_artifact(doc, args.out)
    print(f"wrote {path}")
    for p in problems:
        print(f"shape problem: {p}")
    return 1 if problems else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
