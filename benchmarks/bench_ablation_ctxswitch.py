"""Ablation: the completion-handler context-switch cost (§5 hypothesis).

The paper's central claim is that the Base/Enhanced gap is *entirely*
the cost of dispatching completion handlers on a separate thread.  If
that is true in this model, sweeping ``ctx_switch_us`` toward zero must
collapse MPI-LAPI Base onto Enhanced.
"""

import pytest

from repro import MachineParams
from repro.bench.harness import pingpong_us

SWEEP = [0.0, 6.0, 12.0, 24.0, 48.0]


@pytest.mark.parametrize("ctx_us", SWEEP)
def test_base_latency_vs_ctx_switch(benchmark, ctx_us):
    t = benchmark.pedantic(
        lambda: pingpong_us(
            "lapi-base", 64, reps=6, params=MachineParams(ctx_switch_us=ctx_us)
        ),
        rounds=1, iterations=1,
    )
    assert t > 0


def test_gap_collapses_without_switch_cost(benchmark):
    def measure():
        p0 = MachineParams(ctx_switch_us=0.0)
        base0 = pingpong_us("lapi-base", 64, reps=6, params=p0)
        enh0 = pingpong_us("lapi-enhanced", 64, reps=6, params=p0)
        p24 = MachineParams(ctx_switch_us=24.0)
        base24 = pingpong_us("lapi-base", 64, reps=6, params=p24)
        enh24 = pingpong_us("lapi-enhanced", 64, reps=6, params=p24)
        return base0, enh0, base24, enh24

    base0, enh0, base24, enh24 = benchmark.pedantic(measure, rounds=1, iterations=1)
    # with the switch cost zeroed, base sits within a few us of enhanced
    assert base0 - enh0 < 5.0
    # with it restored, the gap is roughly two switches per message
    assert base24 - enh24 > 1.5 * 24.0 * 0.8


def test_gap_scales_linearly_with_switch_cost(benchmark):
    def measure():
        return [
            pingpong_us("lapi-base", 64, reps=6,
                        params=MachineParams(ctx_switch_us=c))
            for c in (0.0, 12.0, 24.0)
        ]

    t0, t12, t24 = benchmark.pedantic(measure, rounds=1, iterations=1)
    d1 = t12 - t0
    d2 = t24 - t12
    assert d1 > 0 and d2 > 0
    assert abs(d1 - d2) < 0.5 * max(d1, d2), "gap should grow ~linearly"
