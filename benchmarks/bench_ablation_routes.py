"""Ablation: switch routes and out-of-order delivery.

The SP switch spreads a flow over four routes whose differing congestion
reorders packets (paper §2).  With heavy route skew, a single-route
fabric delivers in order while four routes force the stacks' reordering
machinery (Pipes resequencing, LAPI assemble-by-offset) to do real work
— data must stay correct either way.
"""

import numpy as np
import pytest

from repro import MachineParams, SPCluster
from repro.bench.harness import bandwidth_mbps


def _transfer_ok(stack, routes, skew):
    params = MachineParams(route_count=routes, route_skew_us=skew,
                           route_jitter_us=skew / 4)
    cluster = SPCluster(2, stack=stack, params=params, seed=3)
    payload = np.random.default_rng(0).integers(0, 256, 32768, dtype=np.uint8)

    def program(comm, rank, size):
        if rank == 0:
            yield from comm.send(payload, dest=1)
            return None
        buf = np.zeros(32768, dtype=np.uint8)
        yield from comm.recv(buf, source=0)
        return bool(np.array_equal(buf, payload))

    return cluster.run(program).values[1]


@pytest.mark.parametrize("stack", ["native", "lapi-enhanced"])
@pytest.mark.parametrize("routes", [1, 4])
def test_correct_under_reordering(benchmark, stack, routes):
    ok = benchmark.pedantic(
        lambda: _transfer_ok(stack, routes, skew=60.0), rounds=1, iterations=1
    )
    assert ok


@pytest.mark.parametrize("routes", [1, 2, 4])
def test_bandwidth_vs_route_count(benchmark, routes):
    bw = benchmark.pedantic(
        lambda: bandwidth_mbps(
            "lapi-enhanced", 16384, count=12,
            params=MachineParams(route_count=routes),
        ),
        rounds=1, iterations=1,
    )
    assert bw > 0
