"""Fig 12 — streaming bandwidth, native MPI vs MPI-LAPI Enhanced.

Shape: MPI-LAPI leads over a wide mid range (roughly +25% around the
paper's highlighted size); the curves converge at very large messages.
"""

import pytest

from repro.bench import fig12
from repro.bench.harness import bandwidth_mbps

SIZES = [1024, 65536]


@pytest.mark.parametrize("stack", ["native", "lapi-enhanced"])
@pytest.mark.parametrize("size", SIZES)
def test_bandwidth(benchmark, stack, size):
    bw = benchmark.pedantic(
        lambda: bandwidth_mbps(stack, size, count=16), rounds=2, iterations=1
    )
    assert bw > 0


def test_fig12_shape(benchmark, shape_report):
    data = benchmark.pedantic(
        lambda: fig12.rows(sizes=[1024, 4096, 16384, 65536, 1048576]),
        rounds=1, iterations=1,
    )
    problems = fig12.check_shape(data)
    shape_report["fig12"] = problems
    assert not problems, problems


def main(argv=None) -> int:
    """Write BENCH_fig12_bandwidth.json."""
    import argparse

    from repro.bench.artifact import make_artifact, write_artifact

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--out", default=".", help="output directory")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel sweep workers (0 = one per CPU); "
                             "results are identical at any worker count")
    args = parser.parse_args(argv)

    sizes = [1024, 4096, 16384, 65536, 1048576]
    data = fig12.rows(sizes=sizes, jobs=args.jobs)
    doc = make_artifact("fig12_bandwidth", params={"sizes": sizes}, results=data)
    path = write_artifact(doc, args.out)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
