"""Table 2 — MPI communication modes and their internal protocols.

Regenerates the translation table and measures one send per (mode,
size-class) cell, asserting the protocol each cell actually uses.
"""

import numpy as np
import pytest

from repro import MachineParams, SPCluster
from repro.mpi.protocol import (
    BUFFERED,
    EAGER,
    READY,
    RENDEZVOUS,
    STANDARD,
    SYNCHRONOUS,
    select_protocol,
)

EAGER_LIMIT = MachineParams().eager_limit
TABLE2 = [
    (STANDARD, EAGER_LIMIT, EAGER),
    (STANDARD, EAGER_LIMIT + 1, RENDEZVOUS),
    (READY, EAGER_LIMIT + 1, EAGER),
    (SYNCHRONOUS, 1, RENDEZVOUS),
    (BUFFERED, EAGER_LIMIT, EAGER),
    (BUFFERED, EAGER_LIMIT + 1, RENDEZVOUS),
]


@pytest.mark.parametrize("mode,size,expected", TABLE2)
def test_translation(mode, size, expected):
    assert select_protocol(mode, size, EAGER_LIMIT) == expected


def _send_with_mode(mode, size):
    cluster = SPCluster(2, stack="lapi-enhanced")
    payload = bytes(size)

    def program(comm, rank, n):
        if rank == 0:
            if mode == BUFFERED:
                comm.buffer_attach(2 * size + 1024)
            if mode == READY:
                yield from comm.barrier()
            sender = {
                STANDARD: comm.send,
                SYNCHRONOUS: comm.ssend,
                READY: comm.rsend,
                BUFFERED: comm.bsend,
            }[mode]
            yield from sender(payload, dest=1)
            return None
        buf = bytearray(size)
        if mode == READY:
            req = yield from comm.irecv(buf, source=0)
            yield from comm.barrier()
            yield from comm.wait(req)
        else:
            yield from comm.recv(buf, source=0)
        return None

    result = cluster.run(program)
    return result.stats


@pytest.mark.parametrize("mode,size,expected", TABLE2)
def test_modes_use_their_protocol(benchmark, mode, size, expected):
    stats = benchmark.pedantic(
        lambda: _send_with_mode(mode, size), rounds=1, iterations=1
    )
    if expected == EAGER:
        assert stats.eager_sends >= 1
        assert stats.rendezvous_started == 0
    else:
        assert stats.rendezvous_started >= 1


def test_print_table2():
    print("\nTable 2 — MPI communication mode -> internal protocol")
    for mode in (STANDARD, READY, SYNCHRONOUS, BUFFERED):
        small = select_protocol(mode, EAGER_LIMIT, EAGER_LIMIT)
        large = select_protocol(mode, EAGER_LIMIT + 1, EAGER_LIMIT)
        rule = small if small == large else f"{small} if size<=limit else {large}"
        print(f"  {mode:<12} -> {rule}")
