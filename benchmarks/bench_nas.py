"""§6.2 — NAS Parallel Benchmarks, native vs MPI-LAPI on 4 nodes.

One benchmark target per kernel plus the paper's comparison table as a
shape check: MPI-LAPI at least matches native on all eight kernels and
the communication-bound group (LU, IS, CG, BT, FT) improves more than
the compute-bound group (EP, MG, SP).
"""

import pytest

from repro.bench import nas as nasbench
from repro.bench.nas import run_one
from repro.nas import KERNELS


@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_kernel_on_mpi_lapi(benchmark, kernel):
    elapsed = benchmark.pedantic(
        lambda: run_one(kernel, "lapi-enhanced"), rounds=2, iterations=1
    )
    assert elapsed > 0


@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_kernel_on_native(benchmark, kernel):
    elapsed = benchmark.pedantic(
        lambda: run_one(kernel, "native"), rounds=2, iterations=1
    )
    assert elapsed > 0


def test_nas_table_shape(benchmark, shape_report):
    data = benchmark.pedantic(nasbench.rows, rounds=1, iterations=1)
    problems = nasbench.check_shape(data)
    shape_report["nas"] = problems
    assert not problems, problems


def main(argv=None) -> int:
    """Write BENCH_nas.json: the §6.2 kernel table (class S, 4 nodes)."""
    import argparse

    from repro.bench.artifact import make_artifact, write_artifact

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--out", default=".", help="output directory")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel sweep workers (0 = one per CPU); "
                             "results are identical at any worker count")
    args = parser.parse_args(argv)

    data = nasbench.rows(jobs=args.jobs)
    doc = make_artifact("nas", params={"nodes": 4, "class": "S"}, results=data)
    path = write_artifact(doc, args.out)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
