"""§6.2 — NAS Parallel Benchmarks, native vs MPI-LAPI on 4 nodes.

One benchmark target per kernel plus the paper's comparison table as a
shape check: MPI-LAPI at least matches native on all eight kernels and
the communication-bound group (LU, IS, CG, BT, FT) improves more than
the compute-bound group (EP, MG, SP).
"""

import pytest

from repro.bench import nas as nasbench
from repro.bench.nas import run_one
from repro.nas import KERNELS


@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_kernel_on_mpi_lapi(benchmark, kernel):
    elapsed = benchmark.pedantic(
        lambda: run_one(kernel, "lapi-enhanced"), rounds=2, iterations=1
    )
    assert elapsed > 0


@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_kernel_on_native(benchmark, kernel):
    elapsed = benchmark.pedantic(
        lambda: run_one(kernel, "native"), rounds=2, iterations=1
    )
    assert elapsed > 0


def test_nas_table_shape(benchmark, shape_report):
    data = benchmark.pedantic(nasbench.rows, rounds=1, iterations=1)
    problems = nasbench.check_shape(data)
    shape_report["nas"] = problems
    assert not problems, problems
