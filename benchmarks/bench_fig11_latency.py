"""Fig 11 — polling-mode latency, native MPI vs MPI-LAPI Enhanced.

Shape: native wins (slightly) for very short messages; MPI-LAPI wins
beyond a small crossover and the gap grows with message size.
"""

import pytest

from repro.bench import fig11
from repro.bench.harness import pingpong_us

SIZES = [4, 256, 4096]


@pytest.mark.parametrize("stack", ["native", "lapi-enhanced"])
@pytest.mark.parametrize("size", SIZES)
def test_latency(benchmark, stack, size):
    t = benchmark.pedantic(
        lambda: pingpong_us(stack, size, reps=6), rounds=2, iterations=1
    )
    assert t > 0


def test_fig11_shape(benchmark, shape_report):
    data = benchmark.pedantic(
        lambda: fig11.rows(sizes=[1, 16, 256, 1024, 4096, 16384]),
        rounds=1, iterations=1,
    )
    problems = fig11.check_shape(data)
    shape_report["fig11"] = problems
    assert not problems, problems
    # crossover exists: the winner flips somewhere in the sweep
    signs = [r["improvement_%"] > 0 for r in data]
    assert not signs[0] and signs[-1]


def main(argv=None) -> int:
    """Write the schema-versioned BENCH_fig11_latency.json artifact.

    Includes the Fig-10-style latency breakdown: the base variant pays
    the completion-handler thread switch, enhanced does not.
    """
    import argparse

    from repro.bench.artifact import make_artifact, write_artifact
    from repro.bench.harness import pingpong_result
    from repro.obs import breakdown as obs_breakdown

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--out", default=".", help="output directory")
    parser.add_argument("--full", action="store_true",
                        help="the figure's full size sweep")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel sweep workers (0 = one per CPU); "
                             "results are identical at any worker count")
    args = parser.parse_args(argv)

    sizes = fig11.DEFAULT_SIZES if args.full else [1, 16, 256, 1024, 4096]
    reps = 6
    data = fig11.rows(sizes=sizes, jobs=args.jobs)

    bd_size, bd_reps = 256, 4
    breakdown = {}
    for stack in ("native", "lapi-base", "lapi-counters", "lapi-enhanced"):
        summary, _ = obs_breakdown(stack, bd_size, reps=bd_reps)
        breakdown[stack] = summary
    metrics = pingpong_result("lapi-enhanced", bd_size, reps=bd_reps).metrics

    doc = make_artifact(
        "fig11_latency",
        params={"sizes": sizes, "reps": reps,
                "breakdown_bytes": bd_size, "breakdown_reps": bd_reps},
        results=data,
        metrics=metrics,
        breakdown=breakdown,
    )
    path = write_artifact(doc, args.out)
    print(f"wrote {path}")
    for stack, summary in breakdown.items():
        ph = summary["phases_us"]
        print(f"  {stack:14s} e2e={summary['end_to_end_us']:7.2f}us "
              f"thread_switch={ph['thread_switch']:6.2f}us")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
