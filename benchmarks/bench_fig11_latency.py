"""Fig 11 — polling-mode latency, native MPI vs MPI-LAPI Enhanced.

Shape: native wins (slightly) for very short messages; MPI-LAPI wins
beyond a small crossover and the gap grows with message size.
"""

import pytest

from repro.bench import fig11
from repro.bench.harness import pingpong_us

SIZES = [4, 256, 4096]


@pytest.mark.parametrize("stack", ["native", "lapi-enhanced"])
@pytest.mark.parametrize("size", SIZES)
def test_latency(benchmark, stack, size):
    t = benchmark.pedantic(
        lambda: pingpong_us(stack, size, reps=6), rounds=2, iterations=1
    )
    assert t > 0


def test_fig11_shape(benchmark, shape_report):
    data = benchmark.pedantic(
        lambda: fig11.rows(sizes=[1, 16, 256, 1024, 4096, 16384]),
        rounds=1, iterations=1,
    )
    problems = fig11.check_shape(data)
    shape_report["fig11"] = problems
    assert not problems, problems
    # crossover exists: the winner flips somewhere in the sweep
    signs = [r["improvement_%"] > 0 for r in data]
    assert not signs[0] and signs[-1]
