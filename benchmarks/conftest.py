"""pytest-benchmark configuration for the figure reproductions.

Each benchmark measures the *wall-clock cost of regenerating* a figure
data point (the simulator is deterministic, so the simulated-time
results themselves are exact); the asserted shape checks are what tie
the run back to the paper.
"""

import pytest


@pytest.fixture(scope="session")
def shape_report():
    """Collects per-figure shape-check results for the session summary."""
    report: dict[str, list[str]] = {}
    yield report
    print("\n=== paper-shape checks ===")
    for fig, problems in sorted(report.items()):
        print(f"{fig}: {'OK' if not problems else '; '.join(problems)}")
