"""Ablation: the eager limit (rendezvous switch-over).

The paper sets 4096 B by default and notes users trade early-arrival
buffering against rendezvous round trips.  Latency for a fixed message
size should jump when the limit drops below the message (rendezvous
adds a control round trip), and early-arrival buffer usage should grow
with the limit when receives are posted late.
"""

import pytest

from repro import MachineParams, SPCluster
from repro.bench.harness import pingpong_us

LIMITS = [256, 1024, 4096, 16384]


@pytest.mark.parametrize("limit", LIMITS)
def test_latency_2kb_message(benchmark, limit):
    t = benchmark.pedantic(
        lambda: pingpong_us(
            "lapi-enhanced", 2048, reps=6, params=MachineParams(eager_limit=limit)
        ),
        rounds=1, iterations=1,
    )
    assert t > 0


def test_rendezvous_roundtrip_penalty(benchmark):
    def measure():
        eager = pingpong_us("lapi-enhanced", 2048, reps=6,
                            params=MachineParams(eager_limit=4096))
        rndv = pingpong_us("lapi-enhanced", 2048, reps=6,
                           params=MachineParams(eager_limit=1024))
        return eager, rndv

    eager, rndv = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert rndv > eager + 10.0, "rendezvous must pay a control round trip"


def test_eager_limit_governs_ea_buffering(benchmark):
    """Late-posted receives: eager messages land in the EA buffer,
    rendezvous ones wait at the sender."""

    def run_with(limit):
        cluster = SPCluster(2, stack="lapi-enhanced",
                            params=MachineParams(eager_limit=limit))

        def program(comm, rank, size):
            if rank == 0:
                req = yield from comm.isend(bytes(2048), dest=1)
                yield from comm.wait(req)
                return None
            yield from comm.probe(source=0)  # drive progress, no recv posted
            buf = bytearray(2048)
            yield from comm.recv(buf, source=0)
            return None

        return cluster.run(program).stats

    def measure():
        return run_with(4096), run_with(256)

    eager_stats, rndv_stats = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert eager_stats.early_arrivals >= 1
    assert eager_stats.bytes_copied >= 2048  # EA staging copy happened
    assert rndv_stats.rendezvous_started == 1
