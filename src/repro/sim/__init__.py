"""Discrete-event simulation kernel.

A small, deterministic, generator-coroutine event simulator in the style
of SimPy, purpose-built for the MPI-LAPI reproduction.  Simulated time is
a float in microseconds.

Public surface:

- :class:`Environment` — event loop, clock, process spawning.
- :class:`Event` — one-shot triggerable event carrying a value or error.
- :class:`Timeout` — event that fires after a delay.
- :class:`Process` — a running generator; itself an event that triggers
  when the generator returns.
- :class:`AnyOf` / :class:`AllOf` — condition events.
- :class:`Interrupt` — exception thrown into a process by
  :meth:`Process.interrupt`.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import Channel, Mutex, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "Environment",
    "Event",
    "Interrupt",
    "Mutex",
    "Process",
    "SimulationError",
    "Store",
    "Timeout",
]
