"""Core discrete-event machinery: environment, events, processes.

Design notes
------------
* The event queue is a binary heap of ``(time, priority, seq, event)``
  tuples.  ``seq`` is a monotonically increasing counter so that events
  scheduled at the same instant fire in FIFO order — this makes every
  simulation fully deterministic.
* Processes are plain Python generators that ``yield`` events.  When the
  yielded event triggers, the process is resumed with the event's value
  (or the event's exception is thrown into it).
* An event may be triggered at most once.  Triggering schedules its
  callbacks; callbacks run when the event is popped from the queue.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (double trigger, etc.)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries an arbitrary payload describing why the process was
    interrupted (e.g. a packet-arrival notification for a polling loop).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Priorities: lower value pops first among events at the same timestamp.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot event.

    States: *pending* (created), *triggered* (value/exception set and the
    event is on the queue), *processed* (callbacks have run).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        #: a failed event whose exception was delivered to (or absorbed by)
        #: someone is "defused"; undefused failures crash the run.
        self._defused = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._enqueue(self, 0.0, priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._enqueue(self, 0.0, priority)
        return self

    def defuse(self) -> None:
        """Mark a failure as handled so it will not crash the simulation."""
        self._defused = True

    # -- callback plumbing -------------------------------------------------
    def _add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run at the current instant via a proxy.
            proxy = Event(self.env)
            proxy._value, proxy._ok = self._value, self._ok
            proxy.callbacks.append(fn)
            proxy._triggered = True
            self.env._enqueue(proxy, 0.0, URGENT)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """Event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._value = value
        env._enqueue(self, delay, NORMAL)


class Initialize(Event):
    """Internal: starts a freshly created process at the current instant."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._triggered = True
        env._enqueue(self, 0.0, URGENT)


class Process(Event):
    """Wraps a generator; is itself an event that fires on return.

    The generator yields :class:`Event` instances.  The process resumes
    with ``event.value`` when the event succeeds, or has the exception
    thrown in when the event fails.
    """

    __slots__ = ("_gen", "_target", "name")

    def __init__(self, env: "Environment", gen: Generator[Event, Any, Any], name: str = ""):
        if not hasattr(gen, "throw"):
            raise TypeError(f"{gen!r} is not a generator")
        super().__init__(env)
        self._gen = gen
        self._target: Optional[Event] = None
        self.name = name or getattr(gen, "__name__", "process")
        if env._m_procs is not None:
            env._m_procs.incr()
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self._triggered:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        if self.env._m_switches is not None and self.env._active_proc is not self:
            self.env._m_switches.incr()
        self.env._active_proc = self
        while True:
            if event._ok:
                try:
                    next_ev = self._gen.send(event._value)
                except StopIteration as exc:
                    self._triggered = True
                    self._ok = True
                    self._value = exc.value
                    self.env._enqueue(self, 0.0, NORMAL)
                    break
                except BaseException as exc:
                    self._triggered = True
                    self._ok = False
                    self._value = exc
                    self.env._enqueue(self, 0.0, NORMAL)
                    break
            else:
                # Deliver the failure into the generator.
                event._defused = True
                try:
                    next_ev = self._gen.throw(event._value)
                except StopIteration as exc:
                    self._triggered = True
                    self._ok = True
                    self._value = exc.value
                    self.env._enqueue(self, 0.0, NORMAL)
                    break
                except BaseException as exc:
                    self._triggered = True
                    self._ok = False
                    self._value = exc
                    self.env._enqueue(self, 0.0, NORMAL)
                    break

            if not isinstance(next_ev, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_ev!r}"
                )
                event = Event(self.env)
                event._triggered = True
                event._ok = False
                event._value = exc
                continue
            if next_ev._processed:
                # Already done: loop immediately with its outcome.
                event = next_ev
                if not next_ev._ok:
                    next_ev._defused = True
                continue
            self._target = next_ev
            next_ev._add_callback(self._resume)
            break
        self.env._active_proc = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'done' if self._triggered else 'alive'}>"


class Interruption(Event):
    """Internal: delivers an :class:`Interrupt` to a process, urgently."""

    __slots__ = ("_proc",)

    def __init__(self, process: Process, cause: Any):
        super().__init__(process.env)
        self._proc = process
        self._triggered = True
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.callbacks.append(self._deliver)
        process.env._enqueue(self, 0.0, URGENT)

    def _deliver(self, event: Event) -> None:
        proc = self._proc
        if proc._triggered:
            return  # terminated in the meantime; drop silently
        # Detach the process from whatever it was waiting on.
        target = proc._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(proc._resume)
            except ValueError:
                pass
        proc._target = None
        proc._resume(self)


class Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("events from different environments")
        if not self._events:
            self.succeed(self._collect())
            return
        for ev in self._events:
            if ev._processed:
                self._on_event(ev)
            else:
                ev._add_callback(self._on_event)

    def _collect(self) -> dict:
        return {
            ev: ev._value for ev in self._events if ev._processed and ev._ok
        }

    def _on_event(self, ev: Event) -> None:
        if self._triggered:
            if not ev._ok:
                ev._defused = True
            return
        if not ev._ok:
            ev._defused = True
            self.fail(ev._value)
            return
        self._count += 1
        if self._check():
            self.succeed(self._collect())

    def _check(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(Condition):
    """Triggers when any constituent event triggers."""

    __slots__ = ()

    def _check(self) -> bool:
        return self._count >= 1


class AllOf(Condition):
    """Triggers when all constituent events have triggered."""

    __slots__ = ()

    def _check(self) -> bool:
        return self._count >= len(self._events)


class Environment:
    """Simulation environment: clock plus the event queue.

    Pass a :class:`repro.obs.MetricsRegistry` as ``metrics`` to collect
    event-loop statistics (events popped, heap-depth high water, process
    switches, processes started).  All stats are counts of simulation
    activity, never wall clock, so they are deterministic.
    """

    def __init__(self, initial_time: float = 0.0, metrics=None):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_proc: Optional[Process] = None
        self.metrics = metrics
        if metrics is not None:
            self._m_popped = metrics.counter("sim.events_popped")
            self._m_heap = metrics.gauge("sim.heap_depth")
            self._m_switches = metrics.counter("sim.process_switches")
            self._m_procs = metrics.counter("sim.processes_started")
        else:
            self._m_popped = self._m_heap = None
            self._m_switches = self._m_procs = None

    @property
    def now(self) -> float:
        """Current simulated time (microseconds by convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_proc

    # -- factories ---------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator[Event, Any, Any], name: str = "") -> Process:
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))
        if self._m_heap is not None:
            self._m_heap.set(len(self._queue))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process one event off the queue."""
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self._now = when
        if self._m_popped is not None:
            self._m_popped.incr()
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the given time or event; return the event's value.

        ``until=None`` runs until the queue drains.
        """
        stop_at = float("inf")
        stop_event: Optional[Event] = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event._processed:
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value
        elif until is not None:
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(f"until={stop_at} is in the past (now={self._now})")

        while self._queue:
            if stop_event is not None and stop_event._processed:
                if not stop_event._ok:
                    stop_event._defused = True
                    raise stop_event._value
                return stop_event._value
            if self.peek() > stop_at:
                self._now = stop_at
                return None
            self.step()

        if stop_event is not None:
            if stop_event._processed:
                if not stop_event._ok:
                    stop_event._defused = True
                    raise stop_event._value
                return stop_event._value
            raise SimulationError(
                f"event queue drained before {stop_event!r} triggered (deadlock?)"
            )
        if stop_at != float("inf"):
            self._now = stop_at
        return None
