"""Core discrete-event machinery: environment, events, processes.

Design notes
------------
* The pending-event set keeps the exact ``(time, priority, seq)`` order
  of a single binary heap, but is split three ways for speed:

  - a binary heap of ``(time, priority, seq, event)`` tuples for events
    scheduled with ``delay > 0``;
  - two FIFO deques (urgent / normal) for ``delay == 0`` events.

  Delay-0 entries are stamped with the current instant and the clock can
  never advance past them (the pop always takes the global tuple-minimum
  of the heap top and the two deque fronts), so deque entries stay in
  heap order by construction: ``seq`` is a global monotone counter and
  FIFO append preserves it.  The overwhelmingly common "fires right now"
  schedule is an O(1) append instead of an O(log n) heap push, with a
  byte-identical event trajectory.
* Processes are plain Python generators that ``yield`` events.  When the
  yielded event triggers, the process is resumed with the event's value
  (or the event's exception is thrown into it).
* An event may be triggered at most once.  Triggering schedules its
  callbacks; callbacks run when the event is popped from the queue.
* Kernel-internal fire-and-forget events (:meth:`Environment.call_later`,
  :meth:`Environment.auto_timeout`, :meth:`Environment.auto_event`) come
  from a per-environment free list and are recycled as soon as their
  callbacks have run.  They must be yielded (or given their callback)
  immediately and never retained once processed — see
  ``docs/PERFORMANCE.md`` for the retention rules.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]

_heappush = heapq.heappush
_heappop = heapq.heappop
_INF = float("inf")


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (double trigger, etc.)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries an arbitrary payload describing why the process was
    interrupted (e.g. a packet-arrival notification for a polling loop).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Priorities: lower value pops first among events at the same timestamp.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot event.

    States: *pending* (created), *triggered* (value/exception set and the
    event is on the queue), *processed* (callbacks have run).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused")

    #: pooled kernel-internal events override this; the run loop recycles
    #: them right after their callbacks fire
    _auto = False

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        #: a failed event whose exception was delivered to (or absorbed by)
        #: someone is "defused"; undefused failures crash the run.
        self._defused = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        env = self.env
        seq = env._seq = env._seq + 1
        if priority:
            env._normal.append((env._now, priority, seq, self))
        else:
            env._urgent.append((env._now, priority, seq, self))
        if env._m_heap is not None:
            env._m_heap.set(len(env._queue) + len(env._urgent) + len(env._normal))
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        env = self.env
        seq = env._seq = env._seq + 1
        if priority:
            env._normal.append((env._now, priority, seq, self))
        else:
            env._urgent.append((env._now, priority, seq, self))
        if env._m_heap is not None:
            env._m_heap.set(len(env._queue) + len(env._urgent) + len(env._normal))
        return self

    def defuse(self) -> None:
        """Mark a failure as handled so it will not crash the simulation."""
        self._defused = True

    # -- callback plumbing -------------------------------------------------
    def _add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run at the current instant via a proxy.
            proxy = Event(self.env)
            proxy._value, proxy._ok = self._value, self._ok
            proxy.callbacks.append(fn)
            proxy._triggered = True
            self.env._enqueue(proxy, 0.0, URGENT)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """Event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._processed = False
        self._defused = False
        self.delay = delay
        seq = env._seq = env._seq + 1
        if delay == 0.0:
            env._normal.append((env._now, NORMAL, seq, self))
        else:
            _heappush(env._queue, (env._now + delay, NORMAL, seq, self))
        if env._m_heap is not None:
            env._m_heap.set(len(env._queue) + len(env._urgent) + len(env._normal))


class _AutoEvent(Event):
    """Kernel-internal pooled event.

    Grabbed from :attr:`Environment._free` by ``call_later`` /
    ``auto_timeout`` / ``auto_event`` and recycled by the run loop right
    after its callbacks fire.  References must never outlive processing.
    """

    __slots__ = ()

    _auto = True


class Initialize(Event):
    """Internal: starts a freshly created process at the current instant."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._cb)
        self._triggered = True
        env._enqueue(self, 0.0, URGENT)


class Process(Event):
    """Wraps a generator; is itself an event that fires on return.

    The generator yields :class:`Event` instances.  The process resumes
    with ``event.value`` when the event succeeds, or has the exception
    thrown in when the event fails.
    """

    __slots__ = ("_gen", "_target", "_cb", "name")

    def __init__(self, env: "Environment", gen: Generator[Event, Any, Any], name: str = ""):
        if not hasattr(gen, "throw"):
            raise TypeError(f"{gen!r} is not a generator")
        super().__init__(env)
        self._gen = gen
        self._target: Optional[Event] = None
        # one bound method for the process's whole life, instead of a fresh
        # allocation on every yield
        self._cb = self._resume
        self.name = name or getattr(gen, "__name__", "process")
        if env._m_procs is not None:
            env._m_procs.incr()
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self._triggered:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        env = self.env
        if env._active_proc is not self and env._m_switches is not None:
            env._m_switches.incr()
        env._active_proc = self
        while True:
            if event._ok:
                try:
                    next_ev = self._gen.send(event._value)
                except StopIteration as exc:
                    self._finish(env, True, exc.value)
                    break
                except BaseException as exc:
                    self._finish(env, False, exc)
                    break
            else:
                # Deliver the failure into the generator.
                event._defused = True
                try:
                    next_ev = self._gen.throw(event._value)
                except StopIteration as exc:
                    self._finish(env, True, exc.value)
                    break
                except BaseException as exc:
                    self._finish(env, False, exc)
                    break

            if not isinstance(next_ev, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_ev!r}"
                )
                event = Event(env)
                event._triggered = True
                event._ok = False
                event._value = exc
                continue
            if next_ev._processed:
                # Already done: loop immediately with its outcome.
                event = next_ev
                if not next_ev._ok:
                    next_ev._defused = True
                continue
            self._target = next_ev
            callbacks = next_ev.callbacks
            if callbacks is None:  # pragma: no cover - _processed caught above
                next_ev._add_callback(self._cb)
            else:
                callbacks.append(self._cb)
            break
        env._active_proc = None

    def _finish(self, env: "Environment", ok: bool, value: Any) -> None:
        self._triggered = True
        self._ok = ok
        self._value = value
        seq = env._seq = env._seq + 1
        env._normal.append((env._now, NORMAL, seq, self))
        if env._m_heap is not None:
            env._m_heap.set(len(env._queue) + len(env._urgent) + len(env._normal))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'done' if self._triggered else 'alive'}>"


class Interruption(Event):
    """Internal: delivers an :class:`Interrupt` to a process, urgently."""

    __slots__ = ("_proc",)

    def __init__(self, process: Process, cause: Any):
        super().__init__(process.env)
        self._proc = process
        self._triggered = True
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.callbacks.append(self._deliver)
        process.env._enqueue(self, 0.0, URGENT)

    def _deliver(self, event: Event) -> None:
        proc = self._proc
        if proc._triggered:
            return  # terminated in the meantime; drop silently
        # Detach the process from whatever it was waiting on.
        target = proc._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(proc._cb)
            except ValueError:
                pass
            if (not target.callbacks and not target._triggered
                    and isinstance(target, Condition)):
                # Nobody is left waiting on this condition: detach it from
                # its constituents so they stop accumulating callbacks.
                target._abandon()
        proc._target = None
        proc._resume(self)


class Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("events from different environments")
        if not self._events:
            self.succeed(self._collect())
            return
        on_event = self._on_event
        for ev in self._events:
            if ev._processed:
                self._on_event(ev)
            else:
                ev._add_callback(on_event)
            if self._triggered:
                # Decided already; _abandon() (called when we triggered)
                # defused the rest, so stop attaching callbacks.
                break

    def _collect(self) -> dict:
        return {
            ev: ev._value for ev in self._events if ev._processed and ev._ok
        }

    def _on_event(self, ev: Event) -> None:
        if self._triggered:
            if not ev._ok:
                ev._defused = True
            return
        if not ev._ok:
            ev._defused = True
            self.fail(ev._value)
            self._abandon()
            return
        self._count += 1
        if self._check():
            self.succeed(self._collect())
            self._abandon()

    def _abandon(self) -> None:
        """Detach from constituents that have not fired yet.

        Losing events would otherwise keep our ``_on_event`` alive for
        their whole lifetime (polling loops leak one callback per
        iteration).  A pruned loser that later *fails* must still not
        crash the run — the attached ``_on_event`` used to defuse it, so
        defuse preemptively, which is observably equivalent.
        """
        on_event = self._on_event
        for ev in self._events:
            cbs = ev.callbacks
            if cbs is not None:
                try:
                    cbs.remove(on_event)
                except ValueError:
                    pass
                ev._defused = True

    def _check(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(Condition):
    """Triggers when any constituent event triggers."""

    __slots__ = ()

    def _check(self) -> bool:
        return self._count >= 1


class AllOf(Condition):
    """Triggers when all constituent events have triggered."""

    __slots__ = ()

    def _check(self) -> bool:
        return self._count >= len(self._events)


class Environment:
    """Simulation environment: clock plus the event queue.

    Pass a :class:`repro.obs.MetricsRegistry` as ``metrics`` to collect
    event-loop statistics (events popped, heap-depth high water, process
    switches, processes started).  All stats are counts of simulation
    activity, never wall clock, so they are deterministic.
    """

    def __init__(self, initial_time: float = 0.0, metrics=None):
        self._now = float(initial_time)
        #: delay > 0 events, a real heap
        self._queue: list[tuple[float, int, int, Event]] = []
        #: delay == 0 events, FIFO per priority, always at the current instant
        self._urgent: deque[tuple[float, int, int, Event]] = deque()
        self._normal: deque[tuple[float, int, int, Event]] = deque()
        self._seq = 0
        #: recycled kernel-internal events (call_later / auto_timeout / auto_event)
        self._free: list[_AutoEvent] = []
        self._active_proc: Optional[Process] = None
        self.metrics = metrics
        if metrics is not None:
            self._m_popped = metrics.counter("sim.events_popped")
            self._m_heap = metrics.gauge("sim.heap_depth")
            self._m_switches = metrics.counter("sim.process_switches")
            self._m_procs = metrics.counter("sim.processes_started")
        else:
            self._m_popped = self._m_heap = None
            self._m_switches = self._m_procs = None

    @property
    def now(self) -> float:
        """Current simulated time (microseconds by convention)."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_proc

    # -- factories ---------------------------------------------------------
    # The two hottest factories build their objects inline (one frame,
    # no type.__call__ dispatch); keep them in sync with Event.__init__
    # and Timeout.__init__, which remain the documented construction path.
    def event(self) -> Event:
        ev = Event.__new__(Event)
        ev.env = self
        ev.callbacks = []
        ev._value = None
        ev._ok = True
        ev._triggered = False
        ev._processed = False
        ev._defused = False
        return ev

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        ev = Timeout.__new__(Timeout)
        ev.env = self
        ev.callbacks = []
        ev._value = value
        ev._ok = True
        ev._triggered = True
        ev._processed = False
        ev._defused = False
        ev.delay = delay
        seq = self._seq = self._seq + 1
        if delay == 0.0:
            self._normal.append((self._now, NORMAL, seq, ev))
        else:
            _heappush(self._queue, (self._now + delay, NORMAL, seq, ev))
        if self._m_heap is not None:
            self._m_heap.set(len(self._queue) + len(self._urgent) + len(self._normal))
        return ev

    def process(self, gen: Generator[Event, Any, Any], name: str = "") -> Process:
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- pooled kernel-internal events -------------------------------------
    def call_later(self, delay: float, fn: Callable[[Event], None],
                   value: Any = None) -> None:
        """Run ``fn(event)`` after ``delay``, on a pooled event.

        For kernel-internal fire-and-forget callbacks (fabric delivery,
        ISR scheduling).  The event is recycled right after ``fn`` runs,
        so ``fn`` must not retain it; ``event._value`` is ``value`` while
        ``fn`` executes.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        free = self._free
        ev = free.pop() if free else _AutoEvent(self)
        ev._triggered = True
        ev._value = value
        ev.callbacks.append(fn)
        seq = self._seq = self._seq + 1
        if delay == 0.0:
            self._normal.append((self._now, NORMAL, seq, ev))
        else:
            _heappush(self._queue, (self._now + delay, NORMAL, seq, ev))
        if self._m_heap is not None:
            self._m_heap.set(len(self._queue) + len(self._urgent) + len(self._normal))

    def auto_timeout(self, delay: float, value: Any = None) -> Event:
        """Pooled :class:`Timeout` for kernel-internal waits.

        Contract: yield it immediately (exactly one waiter) and never
        touch it again after it fires — the run loop recycles it.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        free = self._free
        ev = free.pop() if free else _AutoEvent(self)
        ev._triggered = True
        ev._value = value
        seq = self._seq = self._seq + 1
        if delay == 0.0:
            self._normal.append((self._now, NORMAL, seq, ev))
        else:
            _heappush(self._queue, (self._now + delay, NORMAL, seq, ev))
        if self._m_heap is not None:
            self._m_heap.set(len(self._queue) + len(self._urgent) + len(self._normal))
        return ev

    def auto_event(self) -> Event:
        """Pooled plain event for kernel-internal resource handshakes.

        Contract: the consumer yields it immediately (or drops it before
        it fires) and never reads its state after it has been processed.
        """
        free = self._free
        return free.pop() if free else _AutoEvent(self)

    # -- scheduling ----------------------------------------------------------
    def _enqueue(self, event: Event, delay: float, priority: int) -> None:
        seq = self._seq = self._seq + 1
        if delay == 0.0:
            if priority:
                self._normal.append((self._now, priority, seq, event))
            else:
                self._urgent.append((self._now, priority, seq, event))
        else:
            _heappush(self._queue, (self._now + delay, priority, seq, event))
        if self._m_heap is not None:
            self._m_heap.set(len(self._queue) + len(self._urgent) + len(self._normal))

    def _pop(self) -> tuple[float, int, int, Event]:
        """Remove and return the globally next schedule entry."""
        u, n, q = self._urgent, self._normal, self._queue
        if u:
            if q and q[0] < u[0]:
                return _heappop(q)
            return u.popleft()
        if n:
            if q and q[0] < n[0]:
                return _heappop(q)
            return n.popleft()
        return _heappop(q)  # IndexError when fully drained, as before

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._urgent or self._normal:
            return self._now  # delay-0 events are always at the current instant
        return self._queue[0][0] if self._queue else _INF

    def step(self) -> None:
        """Process one event off the queue."""
        entry = self._pop()
        self._now = entry[0]
        event = entry[3]
        if self._m_popped is not None:
            self._m_popped.incr()
        callbacks, event.callbacks = event.callbacks, None
        event._processed = True
        for cb in callbacks:
            cb(event)
        if event._auto:
            event._processed = False
            event._triggered = False
            event._ok = True
            event._value = None
            event._defused = False
            event.callbacks = []
            self._free.append(event)
        elif not event._ok and not event._defused:
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the given time or event; return the event's value.

        ``until=None`` runs until the queue drains.
        """
        stop_at = _INF
        stop_event: Optional[Event] = None
        if isinstance(until, Event):
            stop_event = until
            if stop_event._processed:
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value
        elif until is not None:
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(f"until={stop_at} is in the past (now={self._now})")

        # The heap/deque structures, the pop logic, and the body of step()
        # are inlined here with bound locals: this loop is the simulator's
        # single hottest path (see benchmarks/bench_simcore.py).
        u, n, q = self._urgent, self._normal, self._queue
        heappop = _heappop
        free = self._free
        m_popped = self._m_popped
        incr = None if m_popped is None else m_popped.incr

        if stop_event is None and stop_at == _INF and incr is None:
            # drain loop: no stop checks, no metrics
            while True:
                if u:
                    entry = heappop(q) if q and q[0] < u[0] else u.popleft()
                elif n:
                    entry = heappop(q) if q and q[0] < n[0] else n.popleft()
                elif q:
                    entry = heappop(q)
                else:
                    return None
                self._now = entry[0]
                event = entry[3]
                callbacks = event.callbacks
                event.callbacks = None
                event._processed = True
                for cb in callbacks:
                    cb(event)
                if event._auto:
                    event._processed = False
                    event._triggered = False
                    event._ok = True
                    event._value = None
                    event._defused = False
                    event.callbacks = []
                    free.append(event)
                elif not event._ok and not event._defused:
                    raise event._value

        while True:
            if stop_event is not None and stop_event._processed:
                if not stop_event._ok:
                    stop_event._defused = True
                    raise stop_event._value
                return stop_event._value
            # pop the global (time, priority, seq) minimum; only heap
            # entries can lie beyond stop_at (deque entries are always at
            # the current instant, which never exceeds it)
            if u:
                entry = heappop(q) if q and q[0] < u[0] else u.popleft()
            elif n:
                entry = heappop(q) if q and q[0] < n[0] else n.popleft()
            elif q:
                entry = q[0]
                if entry[0] > stop_at:
                    self._now = stop_at
                    return None
                heappop(q)
            else:
                break
            self._now = entry[0]
            event = entry[3]
            if incr is not None:
                incr()
            callbacks = event.callbacks
            event.callbacks = None
            event._processed = True
            for cb in callbacks:
                cb(event)
            if event._auto:
                event._processed = False
                event._triggered = False
                event._ok = True
                event._value = None
                event._defused = False
                event.callbacks = []
                free.append(event)
            elif not event._ok and not event._defused:
                raise event._value

        if stop_event is not None:
            if stop_event._processed:
                if not stop_event._ok:
                    stop_event._defused = True
                    raise stop_event._value
                return stop_event._value
            raise SimulationError(
                f"event queue drained before {stop_event!r} triggered (deadlock?)"
            )
        if stop_at != _INF:
            self._now = stop_at
        return None
