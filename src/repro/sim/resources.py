"""Waitable resources built on the event kernel.

- :class:`Mutex` — FIFO mutual exclusion (models a lock or a CPU core).
- :class:`Store` — unbounded FIFO of items with blocking ``get``.
- :class:`Channel` — bounded FIFO with blocking ``put`` and ``get``
  (models hardware FIFOs with back-pressure).

The operation events these return come from the environment's pooled
free list (:meth:`Environment.auto_event`): yield them immediately and
do not read their state after they fire — the run loop recycles them.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.sim.core import Environment, Event, SimulationError

__all__ = ["Channel", "Mutex", "Store"]


class Mutex:
    """FIFO mutex.  ``yield mutex.acquire()`` then ``mutex.release()``."""

    def __init__(self, env: Environment, name: str = "mutex"):
        self.env = env
        self.name = name
        self._locked = False
        self._waiters: Deque[Event] = deque()
        #: total number of acquisitions (statistic)
        self.acquisitions = 0

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Event:
        ev = self.env.auto_event()
        if not self._locked:
            self._locked = True
            self.acquisitions += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire; returns True on success."""
        if self._locked:
            return False
        self._locked = True
        self.acquisitions += 1
        return True

    def release(self) -> None:
        if not self._locked:
            raise SimulationError(f"{self.name}: release of unlocked mutex")
        if self._waiters:
            self.acquisitions += 1
            self._waiters.popleft().succeed()
        else:
            self._locked = False


class Store:
    """Unbounded FIFO store of items.

    ``put`` is immediate; ``yield store.get()`` blocks until an item is
    available.  Getters are served FIFO.
    """

    def __init__(self, env: Environment, name: str = "store"):
        self.env = env
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = self.env.auto_event()
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns (ok, item)."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def peek_all(self) -> list[Any]:
        """Snapshot of queued items (for inspection/tests)."""
        return list(self._items)


class Channel:
    """Bounded FIFO with blocking put (back-pressure) and blocking get."""

    def __init__(self, env: Environment, capacity: int, name: str = "channel"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()
        #: high-water mark of queued items (statistic)
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        ev = self.env.auto_event()
        if self._getters:
            self._getters.popleft().succeed(item)
            ev.succeed()
        elif len(self._items) < self.capacity:
            self._items.append(item)
            self.max_occupancy = max(self.max_occupancy, len(self._items))
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns True if the item was accepted."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if len(self._items) < self.capacity:
            self._items.append(item)
            self.max_occupancy = max(self.max_occupancy, len(self._items))
            return True
        return False

    def get(self) -> Event:
        ev = self.env.auto_event()
        if self._items:
            item = self._items.popleft()
            self._admit_waiting_putter()
            ev.succeed(item)
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> tuple[bool, Any]:
        if self._items:
            item = self._items.popleft()
            self._admit_waiting_putter()
            return True, item
        return False, None

    def _admit_waiting_putter(self) -> None:
        if self._putters:
            put_ev, pending = self._putters.popleft()
            self._items.append(pending)
            self.max_occupancy = max(self.max_occupancy, len(self._items))
            put_ev.succeed()
