"""Structured event tracing across the protocol stacks.

Enable with ``SPCluster(..., trace=True)``; every layer then emits
timestamped records (packet departures/arrivals, header/completion
handlers, matches, early arrivals, rendezvous control steps,
retransmissions, interrupts...).  Useful for debugging protocol issues
and for *seeing* the paper's Figures 3-9 as an actual timeline — see
``examples/protocol_trace.py``.

Records deliberately carry plain dict payloads so tests can assert on
them without coupling to layer internals.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass
class TraceRecord:
    time: float
    node: int
    layer: str
    event: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:10.2f}us] n{self.node} {self.layer:8s} {self.event:20s} {extra}"


class Tracer:
    """Collects :class:`TraceRecord` entries, optionally bounded."""

    def __init__(self, clock, capacity: Optional[int] = None):
        """``clock`` is any object with a ``now`` attribute (the sim env)."""
        self._clock = clock
        self.capacity = capacity
        self.records: list[TraceRecord] = []
        self.dropped = 0
        #: layer -> records dropped after the capacity was hit; tells a
        #: truncated-capture post-mortem which layer dominated the loss
        self.dropped_by_layer: Counter = Counter()

    def emit(self, node: int, layer: str, event: str, **fields: Any) -> None:
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped += 1
            self.dropped_by_layer[layer] += 1
            return
        # None-valued fields carry no information (optional correlation
        # keys such as ``mid`` on non-MPI traffic); drop them at the source
        self.records.append(
            TraceRecord(
                self._clock.now, node, layer, event,
                {k: v for k, v in fields.items() if v is not None},
            )
        )

    # ------------------------------------------------------------ queries
    def filter(
        self,
        node: Optional[int] = None,
        layer: Optional[str] = None,
        event: Optional[str] = None,
        **field_filters: Any,
    ) -> list[TraceRecord]:
        out = []
        for r in self.records:
            if node is not None and r.node != node:
                continue
            if layer is not None and r.layer != layer:
                continue
            if event is not None and r.event != event:
                continue
            if any(r.fields.get(k) != v for k, v in field_filters.items()):
                continue
            out.append(r)
        return out

    def events(self, **kw) -> list[str]:
        """Event names in chronological order (after filtering)."""
        return [r.event for r in self.filter(**kw)]

    def summary(self) -> Counter:
        """(layer, event) -> count."""
        return Counter((r.layer, r.event) for r in self.records)

    def dump(self, limit: Optional[int] = None) -> str:
        rows = self.records if limit is None else self.records[:limit]
        return "\n".join(str(r) for r in rows)

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0
        self.dropped_by_layer.clear()
