"""Machine model: cost parameters, per-node CPU scheduling, statistics.

The machine model is where simulated time comes from.  Every software
action in the protocol stacks (copies, per-packet processing, matching,
handler execution, context switches, interrupts) charges time through a
:class:`Cpu`, parameterised by :class:`MachineParams`.
"""

from repro.machine.cpu import Cpu, INTERRUPT_CONTEXT
from repro.machine.params import MachineParams
from repro.machine.stats import NodeStats

__all__ = ["Cpu", "INTERRUPT_CONTEXT", "MachineParams", "NodeStats"]
