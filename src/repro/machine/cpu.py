"""Per-node CPU(s) with thread-switch accounting.

A node's software contexts (the user/MPI thread, the LAPI completion-
handler thread, interrupt handlers) share the node's core(s).  Every
timed software action runs inside :meth:`Cpu.execute`, which

1. acquires a core (preferring the core the thread last ran on),
2. charges a context-switch penalty if that core was last running a
   *different* thread (the paper's §5 effect),
3. advances simulated time by the service cost, and
4. releases the core.

Interrupt contexts are special-cased: entering one charges the
interrupt overhead instead of a thread context switch, and the
interrupted thread resumes without a switch charge (the hardware did
the save/restore, folded into ``interrupt_overhead_us``).

Uniprocessor SP nodes use ``cores=1`` (the default); the TBMX systems
in the paper were 4-way SMPs, which ``MachineParams.cpus_per_node``
models — on an SMP the completion-handler thread can run on its own
core, which is exactly why the Base variant hurts less there (see
``benchmarks/bench_ablation_smp.py``).

Scheduling is non-preemptive per core and FIFO-fair across waiters.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional

from repro.machine.params import MachineParams
from repro.machine.stats import NodeStats
from repro.sim import Environment, Event

#: thread-name prefix that marks an interrupt context
INTERRUPT_CONTEXT = "irq"

__all__ = ["Cpu", "INTERRUPT_CONTEXT"]


class _Core:
    __slots__ = ("index", "busy", "running", "last_thread", "preempted_thread")

    def __init__(self, index: int):
        self.index = index
        self.busy = False
        self.running: Optional[str] = None
        self.last_thread: Optional[str] = None
        self.preempted_thread: Optional[str] = None


class Cpu:
    """The processor(s) shared by one node's software contexts."""

    def __init__(
        self,
        env: Environment,
        params: MachineParams,
        stats: NodeStats,
        name: str = "cpu",
        cores: int = 1,
    ):
        if cores < 1:
            raise ValueError("need at least one core")
        self.env = env
        self.params = params
        self.stats = stats
        self.name = name
        self._cores = [_Core(i) for i in range(cores)]
        self._waiters: deque[Event] = deque()
        #: cumulative busy time across cores (utilisation statistic)
        self.busy_us: float = 0.0
        #: fault hook (:class:`repro.faults.FaultPoint`) for node-slowdown
        #: events; installed by the cluster, ``None`` otherwise
        self.faults = None

    @property
    def cores(self) -> int:
        return len(self._cores)

    # ------------------------------------------------------------------
    def execute(self, thread: str, cost_us: float) -> Generator:
        """Run ``cost_us`` of work attributed to ``thread``.

        Generator: ``yield from cpu.execute("user", 1.5)``.
        """
        core = self._try_acquire(thread)
        if core is None:
            ev = self.env.auto_event()
            self._waiters.append((ev, thread))
            core = yield ev  # hand-off: the releaser granted us this core
        try:
            switch = self._switch_penalty(core, thread)
            if self.faults is not None:
                cost_us = cost_us * self.faults.slowdown(self.env.now)
            total = switch + max(0.0, cost_us)
            if total > 0.0:
                yield self.env.auto_timeout(total)
            self.busy_us += total
        finally:
            core.last_thread = thread
            self._release(core)

    def memcpy(self, thread: str, nbytes: int) -> Generator:
        """Charge a host memory copy of ``nbytes`` and record it."""
        self.stats.record_copy(nbytes)
        yield from self.execute(thread, self.params.copy_cost(nbytes))

    # ------------------------------------------------------------------
    def _try_acquire(self, thread: str) -> Optional[_Core]:
        if len(self._cores) == 1:
            # Uniprocessor fast path (the paper's SP nodes, and by far the
            # common configuration): a busy core blocks everyone, a free
            # core with waiters means the waiters go first (none of them
            # can be blocked by a same-name conflict when nothing runs).
            core = self._cores[0]
            if core.busy or self._waiters:
                return None
            core.busy = True
            core.running = thread
            return core
        # FIFO fairness: newcomers queue behind *eligible* waiters (this
        # is what prevents a polling loop from starving handler contexts;
        # waiters blocked only by a same-name conflict don't block others)
        if self._waiters:
            running_now = {c.running for c in self._cores if c.busy}
            if any(t not in running_now for _ev, t in self._waiters):
                return None
        # one OS thread cannot occupy two cores: same-named sections
        # (e.g. the user program and LAPI engine work attributed to the
        # user thread) serialise
        if any(c.busy and c.running == thread for c in self._cores):
            return None
        free = [c for c in self._cores if not c.busy]
        if not free:
            return None
        # affinity first (no switch), then a never-used core, then any
        chosen = None
        for c in free:
            if c.last_thread == thread:
                chosen = c
                break
        if chosen is None:
            for c in free:
                if c.last_thread is None:
                    chosen = c
                    break
        if chosen is None:
            chosen = free[0]
        chosen.busy = True
        chosen.running = thread
        return chosen

    def _release(self, core: _Core) -> None:
        core.busy = False
        core.running = None
        # hand the core to the first waiter whose thread is not already
        # running elsewhere (FIFO among the eligible)
        running_now = {c.running for c in self._cores if c.busy}
        for i, (ev, thread) in enumerate(self._waiters):
            if thread not in running_now:
                del self._waiters[i]
                core.busy = True
                core.running = thread
                ev.succeed(core)
                return

    def _switch_penalty(self, core: _Core, thread: str) -> float:
        """Penalty for running ``thread`` on ``core`` next."""
        if thread.startswith(INTERRUPT_CONTEXT):
            if core.last_thread == thread:
                # Same interrupt context continuing; entry already charged.
                return 0.0
            if core.last_thread is not None and not core.last_thread.startswith(
                INTERRUPT_CONTEXT
            ):
                core.preempted_thread = core.last_thread
            self.stats.interrupts += 1
            return self.params.interrupt_overhead_us

        if core.last_thread == thread:
            return 0.0
        if core.preempted_thread == thread:
            # Returning from interrupt to the thread it preempted: the
            # restore cost is part of interrupt_overhead_us.
            core.preempted_thread = None
            return 0.0
        if core.last_thread is None:
            return 0.0
        self.stats.ctx_switches += 1
        self.stats.trace("cpu", "ctx_switch", to=thread, frm=core.last_thread,
                         cost_us=self.params.ctx_switch_us)
        return self.params.ctx_switch_us
