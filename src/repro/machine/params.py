"""Cost-model parameters for the simulated RS/6000 SP.

All times are microseconds, all sizes bytes, all rates MB/s.  Defaults
are calibrated so the reproduced curves have the *shape* reported by the
paper on 332 MHz PowerPC nodes with the TBMX adapter (see EXPERIMENTS.md
for the calibration rationale); several figures from the provided paper
text are OCR-garbled, so absolute values are period-plausible choices,
not measurements.

The single most important parameter for the paper's story is
:attr:`MachineParams.ctx_switch_us`: the cost of dispatching a LAPI
completion handler on its separate thread.  Section 5 of the paper
attributes essentially the whole Base-vs-Enhanced gap to it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


def _us_per_byte(mb_per_s: float) -> float:
    """Convert a MB/s rate to microseconds per byte (1 MB/s == 1 B/us)."""
    return 1.0 / mb_per_s


@dataclass
class MachineParams:
    """Tunable cost model for one simulated SP system.

    Instances are immutable in spirit: create variants with
    :meth:`replace` rather than mutating shared configuration.
    """

    # ------------------------------------------------------------ network
    #: maximum payload bytes carried by one switch packet
    packet_payload: int = 1024
    #: switch link rate; SP TBMX-era links sustain ~150 MB/s per direction
    link_bandwidth_MBps: float = 150.0
    #: per-switch-stage latency
    switch_hop_us: float = 0.15
    #: number of switch stages between any node pair (small SP frame)
    switch_hops: int = 3
    #: distinct routes between each node pair (the SP switch has 4)
    route_count: int = 4
    #: extra one-way latency added per route index (route r adds r * this),
    #: modelling congestion imbalance between routes; the source of
    #: out-of-order arrival
    route_skew_us: float = 0.6
    #: uniform random extra latency per packet (congestion jitter)
    route_jitter_us: float = 0.4
    #: probability a packet is dropped in the fabric (fault injection)
    packet_loss_rate: float = 0.0
    #: fabric model: "delay" (calibrated latency + skew/jitter, default)
    #: or "staged" (explicit butterfly with per-link contention)
    fabric_model: str = "delay"

    # ------------------------------------------------------------ adapter
    #: adapter DMA engine rate between host memory and adapter SRAM
    #: (the TBMX-era I/O bus, not the link, bounds peak throughput)
    dma_bandwidth_MBps: float = 110.0
    #: fixed DMA start cost per packet
    dma_setup_us: float = 0.8
    #: adapter receive FIFO capacity, packets
    adapter_recv_fifo: int = 64
    #: adapter send FIFO capacity, packets
    adapter_send_fifo: int = 64
    #: delay from packet arrival to interrupt assertion (interrupt mode)
    interrupt_latency_us: float = 10.0
    #: CPU cost of taking + returning from an interrupt
    interrupt_overhead_us: float = 9.0

    # ------------------------------------------------------------ memory
    #: host memory copy rate (buffer-to-buffer memcpy); P2SC/604e-era
    #: memcpy sustains well under the link rate, which is why staging
    #: copies hurt the native stack so much
    copy_bandwidth_MBps: float = 150.0
    #: fixed cost per memcpy call
    copy_setup_us: float = 0.25

    # --------------------------------------------------------------- CPU
    #: cores per node: 1 models the uniprocessor P2SC nodes; the paper's
    #: TBMX systems are 4-way PowerPC SMPs (see bench_ablation_smp)
    cpus_per_node: int = 1
    #: thread-to-thread context switch (the paper's §5 culprit)
    ctx_switch_us: float = 24.0
    #: one poll of the adapter recv FIFO from a wait loop
    poll_check_us: float = 0.35

    # --------------------------------------------------------------- HAL
    #: per-packet software send cost in the HAL (packetize + handshake)
    hal_send_pkt_us: float = 1.1
    #: per-packet software receive cost in the HAL
    hal_recv_pkt_us: float = 1.1

    # -------------------------------------------------------------- Pipes
    #: per-packet Pipes protocol processing (seqno, window, ack bookkeeping)
    pipe_pkt_us: float = 1.3
    #: sliding-window size, packets
    pipe_window_pkts: int = 32
    #: cumulative-ack frequency: ack every N packets
    pipe_ack_every: int = 8
    #: delayed-ack flush: pending acks are sent at most this late
    pipe_ack_delay_us: float = 150.0
    #: retransmission timeout
    pipe_rto_us: float = 4000.0
    #: pipe staging-buffer size per peer
    pipe_buffer_bytes: int = 64 * 1024
    #: native MPI copies the first and last this-many bytes of every
    #: message through the pipe buffers (paper §2: 16 KB)
    pipe_copy_window: int = 16 * 1024

    # --------------------------------------------------------------- LAPI
    #: origin-side cost of a LAPI communication call, incl. the exposed-
    #: interface parameter checking the paper mentions in §6.1
    lapi_call_us: float = 3.4
    #: of which: parameter checking alone
    lapi_param_check_us: float = 0.7
    #: origin-side cost per packet injected (beyond the HAL's)
    lapi_tx_pkt_us: float = 0.45
    #: dispatcher cost per received packet
    lapi_dispatch_us: float = 0.9
    #: fixed cost of invoking a header handler (excl. user work inside it)
    lapi_hdr_hdl_us: float = 1.0
    #: cost of running a *predefined* completion handler in-context
    #: (Enhanced LAPI only)
    lapi_inline_cmpl_us: float = 0.5
    #: LAPI/MPI-LAPI packet header size (paper value garbled; plausible)
    lapi_header_bytes: int = 62
    #: LAPI retransmission window, packets
    lapi_window_pkts: int = 64
    #: LAPI cumulative-ack frequency
    lapi_ack_every: int = 16
    #: LAPI delayed-ack flush interval
    lapi_ack_delay_us: float = 150.0
    #: LAPI retransmission timeout
    lapi_rto_us: float = 4000.0

    # ---------------------------------------------------------- MPCI/MPI
    #: fixed software cost of an MPI-level call (semantics enforcement)
    mpi_call_us: float = 1.2
    #: cost of locking+unlocking the matching data structures (paper §5.3)
    mpi_lock_us: float = 0.5
    #: fixed cost of a matching attempt
    match_base_us: float = 0.4
    #: additional matching cost per queue entry inspected
    match_per_entry_us: float = 0.08
    #: native MPI packet header size (paper value garbled; plausible)
    native_header_bytes: int = 30
    #: eager/rendezvous switch-over (MPI default per paper §4)
    eager_limit: int = 4096
    #: early-arrival buffer capacity per task
    early_arrival_bytes: int = 1 * 1024 * 1024
    #: completion-counter pool size per peer (MPI-LAPI "Counters" variant;
    #: the addresses are exchanged at initialisation, paper §5.2)
    counter_pool_slots: int = 256
    #: fixed software cost of an MPI-3 RMA call on the LAPI stacks — thin
    #: by construction: no tag matching, no request allocation, no posted/
    #: unexpected queues (Gerstenberger et al.: the win of mapping RMA
    #: directly onto a one-sided transport)
    rma_call_us: float = 0.8
    #: contiguous puts at or under this size are queued at the origin and
    #: issued by the closing synchronization; the last one carries the
    #: fence marker piggybacked (MPICH-style deferred RMA issue — saves
    #: the standalone marker packet on the epoch's critical path)
    rma_agg_limit: int = 1024
    #: software cost of a *queued* RMA op (deferred-issue path): just an
    #: op-list append — no lock, no adapter doorbell — so it undercuts
    #: the full ``rma_call_us`` the same way MPICH's enqueue-only
    #: MPI_Put does
    rma_queue_us: float = 0.4

    # ------------------------------------- native MPI interrupt hysteresis
    #: native MPI's interrupt handler dwells this long waiting for more
    #: packets before returning (paper §6.1, Fig 13); grows on traffic
    hysteresis_initial_us: float = 80.0
    #: growth factor applied while packets keep arriving during the dwell
    hysteresis_growth: float = 1.5
    #: dwell ceiling
    hysteresis_max_us: float = 320.0

    # ---------------------------------------------------------- derived
    @property
    def wire_us_per_byte(self) -> float:
        return _us_per_byte(self.link_bandwidth_MBps)

    @property
    def dma_us_per_byte(self) -> float:
        return _us_per_byte(self.dma_bandwidth_MBps)

    @property
    def copy_us_per_byte(self) -> float:
        return _us_per_byte(self.copy_bandwidth_MBps)

    @property
    def route_base_us(self) -> float:
        """Fixed fabric traversal latency (all hops), excluding skew/jitter."""
        return self.switch_hop_us * self.switch_hops

    def copy_cost(self, nbytes: int) -> float:
        """Host memcpy cost for ``nbytes``."""
        if nbytes <= 0:
            return 0.0
        return self.copy_setup_us + nbytes * self.copy_us_per_byte

    def dma_cost(self, nbytes: int) -> float:
        """Adapter DMA cost for ``nbytes``."""
        return self.dma_setup_us + nbytes * self.dma_us_per_byte

    def wire_cost(self, nbytes: int) -> float:
        """Link serialisation time for ``nbytes``."""
        return nbytes * self.wire_us_per_byte

    def replace(self, **changes) -> "MachineParams":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------ presets
    @classmethod
    def tbmx_332(cls) -> "MachineParams":
        """The paper's testbed: 4-way 332 MHz PowerPC SMP nodes with the
        TBMX adapter (§1, §6).  Identical to the defaults except the SMP
        core count; the paper's runs effectively dedicated one CPU to the
        MPI task, so the calibrated defaults stay uniprocessor — use this
        preset to study the SMP effect."""
        return cls(cpus_per_node=4)

    @classmethod
    def tb3_p2sc(cls) -> "MachineParams":
        """The earlier generation also described in §1: uniprocessor
        Power2-Super (P2SC) nodes with the TB3 adapter — a slower I/O
        path and slower memcpy, but a faster scalar FPU era."""
        return cls(
            cpus_per_node=1,
            dma_bandwidth_MBps=80.0,
            copy_bandwidth_MBps=120.0,
            link_bandwidth_MBps=150.0,
            ctx_switch_us=30.0,
            interrupt_latency_us=12.0,
        )

    def validate(self) -> None:
        """Raise ``ValueError`` on physically meaningless settings."""
        if self.packet_payload < 64:
            raise ValueError("packet_payload must be >= 64 bytes")
        if not (0.0 <= self.packet_loss_rate < 1.0):
            raise ValueError("packet_loss_rate must be in [0, 1)")
        if self.route_count < 1:
            raise ValueError("route_count must be >= 1")
        if self.eager_limit < 0:
            raise ValueError("eager_limit must be >= 0")
        for rate_field in ("link_bandwidth_MBps", "dma_bandwidth_MBps", "copy_bandwidth_MBps"):
            if getattr(self, rate_field) <= 0:
                raise ValueError(f"{rate_field} must be positive")
        if self.pipe_window_pkts < 1 or self.lapi_window_pkts < 1:
            raise ValueError("window sizes must be >= 1")
        if self.cpus_per_node < 1:
            raise ValueError("cpus_per_node must be >= 1")
        if self.fabric_model not in ("delay", "staged"):
            raise ValueError("fabric_model must be 'delay' or 'staged'")
        if self.lapi_header_bytes >= self.packet_payload:
            raise ValueError("lapi_header_bytes must fit in a packet")
        if self.native_header_bytes >= self.packet_payload:
            raise ValueError("native_header_bytes must fit in a packet")
