"""Per-node statistics counters.

Every layer increments these as it works; tests and EXPERIMENTS.md use
them to verify *structural* claims (e.g. MPI-LAPI performs strictly
fewer buffer copies per byte than the native stack, native MPI takes
hysteresis dwells in interrupt mode, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class NodeStats:
    """Counters for one simulated node.

    A :class:`repro.trace.Tracer` may be attached as the (non-dataclass)
    ``tracer`` attribute; layers emit structured events through
    :meth:`trace`, which is a no-op when tracing is off.
    """

    #: class-level defaults; SPCluster sets instance attributes
    tracer = None
    node_id = -1

    # memory traffic
    copies: int = 0
    bytes_copied: int = 0
    # adapter traffic
    packets_sent: int = 0
    packets_received: int = 0
    bytes_on_wire: int = 0
    packets_dropped: int = 0
    retransmissions: int = 0
    acks_sent: int = 0
    # CPU events
    ctx_switches: int = 0
    interrupts: int = 0
    hysteresis_dwells: int = 0
    polls: int = 0
    # LAPI activity
    hdr_handlers_run: int = 0
    cmpl_handlers_threaded: int = 0
    cmpl_handlers_inline: int = 0
    # MPI activity
    msgs_sent: int = 0
    msgs_received: int = 0
    early_arrivals: int = 0
    matches_posted: int = 0
    rendezvous_started: int = 0
    eager_sends: int = 0
    #: first packets whose matching was deferred to preserve MPI's
    #: non-overtaking rule after overtaking in the fabric
    deferred_announcements: int = 0

    def record_copy(self, nbytes: int) -> None:
        self.copies += 1
        self.bytes_copied += nbytes

    def trace(self, layer: str, event: str, **fields) -> None:
        """Emit a structured trace event (no-op unless a tracer is set)."""
        if self.tracer is not None:
            self.tracer.emit(self.node_id, layer, event, **fields)

    def merged_with(self, other: "NodeStats") -> "NodeStats":
        """Element-wise sum (for cluster-level aggregation)."""
        out = NodeStats()
        for f in fields(self):
            setattr(out, f.name, getattr(self, f.name) + getattr(other, f.name))
        return out

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def aggregate(stats: list[NodeStats]) -> NodeStats:
    """Sum a list of :class:`NodeStats`."""
    total = NodeStats()
    for s in stats:
        total = total.merged_with(s)
    return total


# re-export field for dataclass introspection users
__all__ = ["NodeStats", "aggregate", "field"]
