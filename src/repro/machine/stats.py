"""Per-node statistics counters, backed by the metrics registry.

Every layer increments these as it works; tests and EXPERIMENTS.md use
them to verify *structural* claims (e.g. MPI-LAPI performs strictly
fewer buffer copies per byte than the native stack, native MPI takes
hysteresis dwells in interrupt mode, etc.).

Since the observability PR, :class:`NodeStats` is a compatibility facade
over a per-node :class:`repro.obs.MetricsRegistry`: the historical
attribute counters (``stats.copies += 1`` and friends) are properties
that read/write registry counters, so the same numbers appear in
metrics snapshots, ``BENCH_*.json`` artifacts, and ``as_dict()``.
Layers that need richer metrics (gauges, histograms, namespaced
counters) reach the registry directly via ``stats.registry``.
"""

from __future__ import annotations

from dataclasses import field  # re-exported for backwards compatibility
from typing import Optional

from repro.obs.registry import MetricsRegistry

__all__ = ["COUNTER_FIELDS", "NodeStats", "aggregate", "field"]

#: the legacy per-node counters, in their historical (declaration) order
COUNTER_FIELDS = (
    # memory traffic
    "copies",
    "bytes_copied",
    # adapter traffic
    "packets_sent",
    "packets_received",
    "bytes_on_wire",
    "packets_dropped",
    "retransmissions",
    "acks_sent",
    # CPU events
    "ctx_switches",
    "interrupts",
    "hysteresis_dwells",
    "polls",
    # LAPI activity
    "hdr_handlers_run",
    "cmpl_handlers_threaded",
    "cmpl_handlers_inline",
    # MPI activity
    "msgs_sent",
    "msgs_received",
    "early_arrivals",
    "matches_posted",
    "rendezvous_started",
    "eager_sends",
    # first packets whose matching was deferred to preserve MPI's
    # non-overtaking rule after overtaking in the fabric
    "deferred_announcements",
)


class NodeStats:
    """Counters for one simulated node.

    A :class:`repro.trace.Tracer` may be attached as the ``tracer``
    attribute; layers emit structured events through :meth:`trace`,
    which is a no-op when tracing is off.

    Constructing with keyword arguments (``NodeStats(copies=3)``) seeds
    the named counters, mirroring the old dataclass behaviour.
    """

    #: class-level defaults; SPCluster sets instance attributes
    tracer = None
    node_id = -1

    def __init__(self, registry: Optional[MetricsRegistry] = None, **values: int):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {name: self.registry.counter(name) for name in COUNTER_FIELDS}
        for name, value in values.items():
            if name not in self._counters:
                raise TypeError(f"NodeStats has no counter {name!r}")
            self._counters[name].set(value)

    def record_copy(self, nbytes: int) -> None:
        self.copies += 1
        self.bytes_copied += nbytes

    def trace(self, layer: str, event: str, **fields) -> None:
        """Emit a structured trace event (no-op unless a tracer is set)."""
        if self.tracer is not None:
            self.tracer.emit(self.node_id, layer, event, **fields)

    def merged_with(self, other: "NodeStats") -> "NodeStats":
        """Element-wise sum (for cluster-level aggregation)."""
        out = NodeStats()
        for name in COUNTER_FIELDS:
            out._counters[name].set(getattr(self, name) + getattr(other, name))
        return out

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in COUNTER_FIELDS}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nonzero = {k: v for k, v in self.as_dict().items() if v}
        return f"<NodeStats node={self.node_id} {nonzero}>"


def _counter_property(name: str) -> property:
    def fget(self: NodeStats) -> int:
        return self._counters[name].value

    def fset(self: NodeStats, value: int) -> None:
        self._counters[name].set(value)

    return property(fget, fset)


for _name in COUNTER_FIELDS:
    setattr(NodeStats, _name, _counter_property(_name))
del _name


def aggregate(stats: list[NodeStats]) -> NodeStats:
    """Sum a list of :class:`NodeStats`."""
    total = NodeStats()
    for s in stats:
        total = total.merged_with(s)
    return total
