"""Observability: metrics registry, latency breakdowns, message spans."""

from repro.obs.breakdown import (
    CAPTURE_MODES,
    PHASES,
    Breakdown,
    TruncatedTraceError,
    breakdown,
    capture,
    lapi_breakdowns,
    pipes_breakdowns,
    summarize,
)
from repro.obs.chrometrace import to_chrome_trace, write_chrome_trace
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.rma import rma_op_phases, rma_records, rma_summary
from repro.obs.spans import MessageTree, Span, build_span_trees, render_text

__all__ = [
    "Breakdown",
    "CAPTURE_MODES",
    "Counter",
    "Gauge",
    "Histogram",
    "MessageTree",
    "MetricsRegistry",
    "PHASES",
    "Span",
    "TruncatedTraceError",
    "breakdown",
    "build_span_trees",
    "capture",
    "lapi_breakdowns",
    "pipes_breakdowns",
    "render_text",
    "rma_op_phases",
    "rma_records",
    "rma_summary",
    "summarize",
    "to_chrome_trace",
    "write_chrome_trace",
]
