"""Observability: metrics registry, latency breakdowns, message spans."""

from repro.obs.breakdown import (
    PHASES,
    Breakdown,
    TruncatedTraceError,
    lapi_breakdowns,
    pipes_breakdowns,
    summarize,
)
from repro.obs.chrometrace import to_chrome_trace, write_chrome_trace
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import MessageTree, Span, build_span_trees, render_text

__all__ = [
    "Breakdown",
    "Counter",
    "Gauge",
    "Histogram",
    "MessageTree",
    "MetricsRegistry",
    "PHASES",
    "Span",
    "TruncatedTraceError",
    "build_span_trees",
    "lapi_breakdowns",
    "pipes_breakdowns",
    "render_text",
    "summarize",
    "to_chrome_trace",
    "write_chrome_trace",
]
