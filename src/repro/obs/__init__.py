"""Observability: unified metrics registry and latency breakdowns."""

from repro.obs.breakdown import (
    PHASES,
    Breakdown,
    TruncatedTraceError,
    lapi_breakdowns,
    pipes_breakdowns,
    summarize,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "Breakdown",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PHASES",
    "TruncatedTraceError",
    "lapi_breakdowns",
    "pipes_breakdowns",
    "summarize",
]
