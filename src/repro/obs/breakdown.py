"""Latency breakdowns from trace records (the paper's Fig 10 as data).

Section 6.2 of the paper decomposes ping-pong latency into where the
time goes: sender-side overhead, wire/switch time, header-handler
dispatch, data copies, and — for the base LAPI variant — the thread
context switch that runs the completion handler.  This module rebuilds
that decomposition from a :class:`~repro.trace.Tracer` capture, one
:class:`Breakdown` per delivered message.

The seven phases partition the end-to-end interval exactly (telescoping
timestamps), so ``sum(b.phases.values()) == b.end_to_end`` up to float
rounding:

===============  ====================================================
``send_overhead``  send call until the first packet leaves the wire
``wire``           first packet's link + fabric traversal
``interrupt``      receive-side interrupt-hysteresis dwell (the native
                   stack's Fig 13 penalty; identically zero in polling
                   mode and on LAPI, whose ISR has no hysteresis)
``hdr_handler``    arrival in the host FIFO until the header handler
``copy``           header handler until the message is assembled
``thread_switch``  hand-off to the completion-handler thread (base
                   variant only; identically zero when handlers run
                   in the dispatcher's context)
``completion``     completion-handler body until the done mark
===============  ====================================================

Pipes/native messages use the same phase names; their per-packet
processing and reordering copies all land in ``copy`` and the last two
phases are zero (native completion is inline in the dispatcher).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Optional

from repro.trace import TraceRecord, Tracer

__all__ = [
    "Breakdown",
    "CAPTURE_MODES",
    "PHASES",
    "TruncatedTraceError",
    "breakdown",
    "capture",
    "lapi_breakdowns",
    "pipes_breakdowns",
    "summarize",
]

PHASES = (
    "send_overhead",
    "wire",
    "interrupt",
    "hdr_handler",
    "copy",
    "thread_switch",
    "completion",
)


class TruncatedTraceError(RuntimeError):
    """The tracer dropped records; a breakdown would silently lie."""


_warned_truncated = False


def _check_dropped(tracer: Tracer, allow_truncated: bool) -> None:
    global _warned_truncated
    if tracer.dropped == 0:
        return
    if not allow_truncated:
        dominant = ""
        if tracer.dropped_by_layer:
            layer, n = tracer.dropped_by_layer.most_common(1)[0]
            dominant = f"; layer {layer!r} dominated the loss ({n}/{tracer.dropped})"
        raise TruncatedTraceError(
            f"tracer dropped {tracer.dropped} record(s) (capacity "
            f"{tracer.capacity}){dominant}; breakdowns would be incomplete — "
            "raise the capacity or pass allow_truncated=True"
        )
    if not _warned_truncated:
        _warned_truncated = True
        warnings.warn(
            f"computing breakdowns from a truncated trace "
            f"({tracer.dropped} dropped record(s)); results may be partial",
            RuntimeWarning,
            stacklevel=3,
        )


@dataclass
class Breakdown:
    """Where one message's end-to-end time went."""

    src: int
    dst: int
    key: Any  # LAPI msg number or Pipes send id, sender-scoped
    bytes: int
    start: float
    end: float
    phases: dict[str, float]
    #: cluster-unique MPI message id, when the message carried one
    #: (control traffic below MPI has none) — joins against span trees
    mid: Optional[str] = None

    @property
    def end_to_end(self) -> float:
        return self.end - self.start


def _dwells_by_node(tracer: Tracer) -> dict[int, list[TraceRecord]]:
    """Interrupt-hysteresis dwell records (native ISR), grouped by node."""
    out: dict[int, list[TraceRecord]] = {}
    for r in tracer.filter(layer="cpu", event="hysteresis_dwell"):
        out.setdefault(r.node, []).append(r)
    return out


def _dwell_overlap(
    dwells: dict[int, list[TraceRecord]], node: int, t0: float, t1: float
) -> float:
    """CPU time the node spent in hysteresis dwells inside [t0, t1]."""
    total = 0.0
    for r in dwells.get(node, ()):
        lo = max(r.time, t0)
        hi = min(r.time + r.fields.get("us", 0.0), t1)
        if hi > lo:
            total += hi - lo
    return total


def _first_by_key(
    records: list[TraceRecord], key_field: str
) -> dict[tuple, TraceRecord]:
    """Index records by (node, key), keeping the chronologically first."""
    out: dict[tuple, TraceRecord] = {}
    for r in records:
        key = r.fields.get(key_field)
        if key is None:
            continue
        k = (r.node, key)
        if k not in out:
            out[k] = r
    return out


def lapi_breakdowns(
    tracer: Tracer, allow_truncated: bool = False
) -> list[Breakdown]:
    """One :class:`Breakdown` per completed LAPI active message.

    Covers every ``amsend`` whose message reached ``cmpl_done`` on the
    target — MPI data messages and the thin-MPCI control messages alike
    (filter on ``bytes`` or count to isolate the data path).
    """
    _check_dropped(tracer, allow_truncated)
    pkt_tx = _first_by_key(tracer.filter(layer="adapter", event="pkt_tx"), "msg")
    pkt_rx = _first_by_key(tracer.filter(layer="adapter", event="pkt_rx"), "msg")
    hdr = _first_by_key(tracer.filter(layer="lapi", event="hdr_handler"), "msg")
    done_copy = _first_by_key(tracer.filter(layer="lapi", event="msg_complete"), "msg")
    cmpl = _first_by_key(tracer.filter(layer="lapi", event="cmpl_done"), "msg")
    # context switches into the completion-handler thread, per node
    switches: dict[int, list[TraceRecord]] = {}
    for r in tracer.filter(layer="cpu", event="ctx_switch", to="cmpl"):
        switches.setdefault(r.node, []).append(r)
    dwells = _dwells_by_node(tracer)

    out: list[Breakdown] = []
    for send in tracer.filter(layer="lapi", event="amsend"):
        msg = send.fields["msg"]
        dst = send.fields["tgt"]
        t_tx = pkt_tx.get((send.node, msg))
        t_rx = pkt_rx.get((dst, msg))
        t_hdr = hdr.get((dst, msg))
        t_asm = done_copy.get((dst, msg))
        t_done = cmpl.get((dst, msg))
        if None in (t_tx, t_rx, t_hdr, t_asm, t_done):
            continue  # still in flight (or truncated away)
        # the switch into the completion thread, if one was charged while
        # this message sat between assembly and its done mark (zero on
        # the enhanced variant and whenever the thread was already hot)
        switch_us = 0.0
        for r in switches.get(dst, ()):
            if t_asm.time <= r.time <= t_done.time:
                switch_us = min(r.fields["cost_us"], t_done.time - t_asm.time)
                break
        # LAPI's own ISR has no hysteresis, but a LAPI message can still
        # be delayed by a dwell when both stacks share the node (rare) —
        # carve the dwell out of the dispatch-delay window
        hdr_us = t_hdr.time - t_rx.time
        intr_us = min(_dwell_overlap(dwells, dst, t_rx.time, t_hdr.time), hdr_us)
        out.append(
            Breakdown(
                src=send.node,
                dst=dst,
                key=msg,
                bytes=send.fields.get("bytes", 0),
                start=send.time,
                end=t_done.time,
                phases={
                    "send_overhead": t_tx.time - send.time,
                    "wire": t_rx.time - t_tx.time,
                    "interrupt": intr_us,
                    "hdr_handler": hdr_us - intr_us,
                    "copy": t_asm.time - t_hdr.time,
                    "thread_switch": switch_us,
                    "completion": t_done.time - t_asm.time - switch_us,
                },
                mid=send.fields.get("mid"),
            )
        )
    return out


def pipes_breakdowns(
    tracer: Tracer, allow_truncated: bool = False
) -> list[Breakdown]:
    """One :class:`Breakdown` per completed native-stack data frame.

    Frames are matched to their MPCI completion through the send id the
    frame metadata carries, so only eager/rdata frames (the ones that
    complete a message) produce entries; bare control frames do not.
    """
    _check_dropped(tracer, allow_truncated)
    pkt_tx = _first_by_key(tracer.filter(layer="adapter", event="pkt_tx"), "fid")
    pkt_rx = _first_by_key(tracer.filter(layer="adapter", event="pkt_rx"), "fid")
    complete = _first_by_key(tracer.filter(layer="mpci", event="msg_complete"), "sid")
    dwells = _dwells_by_node(tracer)

    out: list[Breakdown] = []
    for send in tracer.filter(layer="pipes", event="frame_send"):
        if send.fields.get("t") not in ("eager", "rdata"):
            continue
        fid = send.fields["fid"]
        sid = send.fields["sid"]
        dst = send.fields["dst"]
        t_tx = pkt_tx.get((send.node, fid))
        t_rx = pkt_rx.get((dst, fid))
        t_done = complete.get((dst, sid))
        if None in (t_tx, t_rx, t_done):
            continue
        # In interrupt mode the receive-side delivery window includes the
        # ISR's hysteresis dwells (Fig 13); report them as their own
        # phase instead of folding them into ``copy``.
        copy_us = t_done.time - t_rx.time
        intr_us = min(_dwell_overlap(dwells, dst, t_rx.time, t_done.time), copy_us)
        out.append(
            Breakdown(
                src=send.node,
                dst=dst,
                key=sid,
                bytes=send.fields.get("bytes", 0),
                start=send.time,
                end=t_done.time,
                phases={
                    "send_overhead": t_tx.time - send.time,
                    "wire": t_rx.time - t_tx.time,
                    "interrupt": intr_us,
                    "hdr_handler": 0.0,
                    "copy": copy_us - intr_us,
                    "thread_switch": 0.0,
                    "completion": 0.0,
                },
                mid=send.fields.get("mid"),
            )
        )
    return out


def summarize(breakdowns: list[Breakdown]) -> dict:
    """Mean per-phase and end-to-end times, JSON-able.

    Returns ``{"count", "bytes", "end_to_end_us", "phases_us"}`` with
    means over the given breakdowns (zeros when the list is empty).
    """
    n = len(breakdowns)
    if n == 0:
        return {
            "count": 0,
            "bytes": 0,
            "end_to_end_us": 0.0,
            "phases_us": {p: 0.0 for p in PHASES},
        }
    return {
        "count": n,
        "bytes": max(b.bytes for b in breakdowns),
        "end_to_end_us": sum(b.end_to_end for b in breakdowns) / n,
        "phases_us": {
            p: sum(b.phases[p] for b in breakdowns) / n for p in PHASES
        },
    }


# --------------------------------------------------------------- capture
#: receive-progress modes :func:`capture` can drive
CAPTURE_MODES = ("polling", "interrupt")


def capture(
    stack: str,
    msg_size: int,
    mode: str = "polling",
    reps: int = 4,
    params=None,
    seed: int = 0,
    fault_plan=None,
):
    """Run a traced 2-node ping-pong; returns the finished cluster.

    The single capture entry point shared by the Fig 10/13 benches and
    the fault campaigns.  ``mode`` selects receive progress:

    ``"polling"``
        blocking send/recv ping-pong; progress made inside MPI calls.
    ``"interrupt"``
        the responder pre-posts its receives and busy-checks the
        receive buffers' *contents* without entering MPI (the paper's
        Fig 13 methodology), so delivery progress is interrupt-driven
        and the hysteresis dwell shows up in the capture.

    The cluster's ``tracer`` holds the full capture — feed it to
    :func:`lapi_breakdowns` / :func:`pipes_breakdowns` for Fig 10
    phases or :func:`repro.obs.build_span_trees` for per-message causal
    trees.  ``fault_plan`` injects a :class:`repro.faults.FaultPlan`,
    whose events appear as ``fault``-layer instants in the capture.
    """
    from repro.cluster import SPCluster
    from repro.machine import MachineParams

    if mode not in CAPTURE_MODES:
        raise ValueError(f"unknown mode {mode!r}; choose from {CAPTURE_MODES}")
    if msg_size < 1:
        raise ValueError("capture needs a positive message size")
    if stack == "raw-lapi":
        raise ValueError("capture drives the MPI stacks")
    cluster = SPCluster(
        2, stack=stack,
        params=params if params is not None else MachineParams(),
        seed=seed, trace=True, interrupt_mode=(mode == "interrupt"),
        fault_plan=fault_plan,
    )

    if mode == "interrupt":
        import numpy as np

        def program(comm, rank, size):
            if rank == 1:
                bufs = [np.zeros(msg_size, dtype=np.uint8) for _ in range(reps)]
                reqs = []
                for i in range(reps):
                    r = yield from comm.irecv(bufs[i], source=0)
                    reqs.append(r)
                yield from comm.barrier()
                for i in range(reps):
                    marker = (i % 255) + 1
                    # spin on memory contents — NOT on MPI calls
                    while bufs[i][-1] != marker:
                        yield from comm.backend.cpu.execute(
                            "user", comm.backend.params.poll_check_us
                        )
                    yield from comm.send(bytes([marker]) * msg_size, dest=0)
                return None
            buf = bytearray(msg_size)
            yield from comm.barrier()
            for i in range(reps):
                marker = (i % 255) + 1
                yield from comm.send(bytes([marker]) * msg_size, dest=1)
                yield from comm.recv(buf, source=1)
            return None
    else:
        payload = bytes(msg_size)

        def program(comm, rank, size):
            buf = bytearray(msg_size)
            yield from comm.barrier()
            for _ in range(reps):
                if rank == 0:
                    yield from comm.send(payload, dest=1)
                    yield from comm.recv(buf, source=1)
                else:
                    yield from comm.recv(buf, source=0)
                    yield from comm.send(payload, dest=0)
            return None

    cluster.run(program)
    return cluster


def breakdown(
    stack: str,
    msg_size: int,
    mode: str = "polling",
    reps: int = 4,
    params=None,
    seed: int = 0,
    allow_truncated: bool = False,
    fault_plan=None,
):
    """Per-phase latency decomposition of a ping-pong (paper Fig 10).

    Runs :func:`capture` and attributes each data message's end-to-end
    time to the seven :data:`PHASES`.  Returns ``(summary, breakdowns)``
    where ``summary`` is the JSON-able output of :func:`summarize` over
    the data messages only (control traffic — barrier, rendezvous
    handshake — is excluded by size).  Most meaningful at eager sizes,
    where one message is one frame.  With ``mode="interrupt"`` the
    hysteresis dwell lands in the ``interrupt`` phase.
    """
    cluster = capture(stack, msg_size, mode=mode, reps=reps, params=params,
                      seed=seed, fault_plan=fault_plan)
    if stack == "native":
        downs = pipes_breakdowns(cluster.tracer, allow_truncated=allow_truncated)
    else:
        downs = lapi_breakdowns(cluster.tracer, allow_truncated=allow_truncated)
    data = [b for b in downs if b.bytes == msg_size]
    return summarize(data), data
