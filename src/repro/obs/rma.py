"""RMA observability: op phases and epoch summaries from trace records.

The RMA engines emit ``layer="rma"`` records at every call site (one per
data-movement op, ``fence_enter``/``fence_exit`` per epoch, lock/unlock
per passive epoch).  On the LAPI stacks each op also carries the
cluster-unique message id it threads into the transport, so the
origin-side *issue* record can be joined with the target-side LAPI
``cmpl_done`` record — the moment the op's bytes (and its applied-counter
bump) landed.  That join is the RMA analogue of the two-sided Fig-10
breakdown: issue→apply latency per op, without a request object to hang
timestamps on.
"""

from __future__ import annotations

from collections import Counter as _TallyCounter
from typing import Any, Optional

__all__ = ["rma_records", "rma_op_phases", "rma_summary"]

#: rma-layer events that represent a data-movement call at the origin
OP_EVENTS = ("put", "get", "accumulate", "get_accumulate", "rmw",
             "rput", "rget")


def rma_records(tracer) -> list:
    """All ``layer == "rma"`` records, in time order."""
    recs = [r for r in tracer.records if r.layer == "rma"]
    recs.sort(key=lambda r: r.time)
    return recs


def rma_op_phases(tracer) -> list[dict[str, Any]]:
    """Per-op issue→apply timing, joined on the message id.

    Returns one dict per LAPI-stack data-movement op whose apply-side
    record is present: ``{op, origin, target, win, bytes, issue_us,
    apply_us, latency_us}``.  Ops without a mid (native emulation, local
    ops) and ops whose completion record was dropped are omitted —
    callers needing totals should use :func:`rma_summary`.
    """
    applies: dict[str, float] = {}
    for r in tracer.records:
        if r.layer == "lapi" and r.event == "cmpl_done":
            mid = r.fields.get("mid")
            # first completion wins: multi-leg ops (get, get_accumulate)
            # reuse the mid on the reply; the request leg's apply is the
            # one that touched the window
            if mid is not None and mid not in applies:
                applies[mid] = r.time
    out: list[dict[str, Any]] = []
    for r in rma_records(tracer):
        if r.event not in OP_EVENTS:
            continue
        mid = r.fields.get("mid")
        if mid is None or mid not in applies:
            continue
        apply_us = applies[mid]
        out.append({
            "op": r.event,
            "origin": r.node,
            "target": r.fields.get("tgt"),
            "win": r.fields.get("win"),
            "bytes": r.fields.get("bytes", 0),
            "issue_us": r.time,
            "apply_us": apply_us,
            "latency_us": apply_us - r.time,
        })
    return out


def rma_summary(tracer) -> dict[str, Any]:
    """Aggregate view: op tallies, per-node fence epochs and durations.

    ``fences`` maps node -> list of ``(epoch, duration_us)`` pairs, built
    by pairing each ``fence_enter`` with its ``fence_exit`` on the same
    node and window.  ``ops`` tallies origin-side data-movement events.
    """
    ops: _TallyCounter = _TallyCounter()
    open_fences: dict[tuple, float] = {}
    fences: dict[int, list[tuple[int, float]]] = {}
    locks = 0
    for r in rma_records(tracer):
        if r.event in OP_EVENTS:
            ops[r.event] += 1
        elif r.event == "fence_enter":
            open_fences[(r.node, r.fields.get("win"), r.fields.get("epoch"))] = r.time
        elif r.event == "fence_exit":
            key = (r.node, r.fields.get("win"), r.fields.get("epoch"))
            start = open_fences.pop(key, None)
            if start is not None:
                fences.setdefault(r.node, []).append(
                    (r.fields.get("epoch"), r.time - start))
        elif r.event == "lock":
            locks += 1
    return {
        "ops": dict(ops),
        "fences": fences,
        "locks": locks,
        "unpaired_fences": len(open_fences),
    }
