"""Typed, deterministic metrics: counters, gauges, log2 histogram timers.

The registry is the single source of truth for every quantitative claim
the simulation makes about itself.  Three metric types:

- :class:`Counter` — monotone (but settable) integer event count.
- :class:`Gauge` — instantaneous level with a high-water mark (e.g.
  early-arrival buffer occupancy, heap depth).
- :class:`Histogram` — fixed log2 buckets over non-negative samples
  (simulated-time durations in microseconds).  Bucket ``i`` (``i >= 1``)
  holds samples in ``[2**(i-1), 2**i)``; bucket 0 holds ``x < 1``.

Everything here is **simulation-deterministic**: no wall clock, no
randomness, no ordering dependence beyond the sim's own event order.
Two identical runs therefore produce byte-identical snapshots —
``tests/sim/test_determinism.py`` enforces this.

Names are dot-separated, lower-case: the bare legacy ``NodeStats``
counters keep their historical names (``copies``, ``polls``, ...);
layer-specific metrics are namespaced (``lapi.amsend``,
``mpi.proto.eager.standard``, ``sim.events_popped``, ...).
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: default bucket count — 2**31 us ≈ 36 simulated minutes, far beyond any run
DEFAULT_BUCKETS = 32


class Counter:
    """A named integer event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = value

    def incr(self, by: int = 1) -> None:
        self.value += by

    def set(self, value: int) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A named level with a high-water mark.

    ``set``/``add`` update the current value; ``high_water`` remembers
    the maximum ever seen (occupancy peaks are what the paper's buffer
    arguments hinge on).
    """

    __slots__ = ("name", "value", "high_water")

    def __init__(self, name: str, value: float = 0):
        self.name = name
        self.value = value
        self.high_water = value

    def set(self, value) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def add(self, by) -> None:
        self.set(self.value + by)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value} hw={self.high_water}>"


class Histogram:
    """Fixed log2-bucket histogram for non-negative samples.

    Bucket boundaries are powers of two, so bucketing is exact float
    arithmetic (``math.frexp``) — no wall-clock or platform dependence.
    """

    __slots__ = ("name", "nbuckets", "buckets", "count", "total")

    def __init__(self, name: str, nbuckets: int = DEFAULT_BUCKETS):
        if nbuckets < 2:
            raise ValueError("histogram needs at least 2 buckets")
        self.name = name
        self.nbuckets = nbuckets
        self.buckets = [0] * nbuckets
        self.count = 0
        self.total = 0.0

    @staticmethod
    def bucket_index(x: float, nbuckets: int = DEFAULT_BUCKETS) -> int:
        """Index of the bucket holding ``x`` (clamped to the last)."""
        if x < 1.0:
            return 0
        _m, e = math.frexp(x)  # x == m * 2**e with 0.5 <= m < 1
        return min(e, nbuckets - 1)

    def observe(self, x: float) -> None:
        if x < 0:
            raise ValueError(f"{self.name}: negative sample {x}")
        self.buckets[self.bucket_index(x, self.nbuckets)] += 1
        self.count += 1
        self.total += x

    def upper_bounds(self) -> list[float]:
        """Exclusive upper bound of each bucket (last is +inf)."""
        return [float(1 << i) for i in range(self.nbuckets - 1)] + [math.inf]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count} sum={self.total:.2f}>"


class MetricsRegistry:
    """A flat, get-or-create namespace of typed metrics.

    One registry per node (owned by ``NodeStats``) plus one cluster-level
    registry (sim kernel + fabric) — see ``SPCluster.metrics_snapshot``.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -------------------------------------------------------- factories
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            self._check_free(name)
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            self._check_free(name)
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, nbuckets: int = DEFAULT_BUCKETS) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            self._check_free(name)
            h = self._histograms[name] = Histogram(name, nbuckets)
        return h

    def _check_free(self, name: str) -> None:
        if name in self._counters or name in self._gauges or name in self._histograms:
            raise ValueError(f"metric {name!r} already registered with another type")

    # --------------------------------------------------------- querying
    def counter_value(self, name: str) -> int:
        """Value of a counter, 0 if it was never touched."""
        c = self._counters.get(name)
        return 0 if c is None else c.value

    def snapshot(self) -> dict:
        """JSON-able, key-sorted view of every metric."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {
                n: {"value": g.value, "high_water": g.high_water}
                for n, g in sorted(self._gauges.items())
            },
            "histograms": {
                n: {"count": h.count, "sum": h.total, "buckets": list(h.buckets)}
                for n, h in sorted(self._histograms.items())
            },
        }

    # ---------------------------------------------------------- merging
    @classmethod
    def merged(cls, registries: Iterable["MetricsRegistry"]) -> "MetricsRegistry":
        """Element-wise aggregation: counters/histograms sum, gauges take
        the sum of values and the max of high-water marks."""
        out = cls()
        for reg in registries:
            for n, c in reg._counters.items():
                out.counter(n).incr(c.value)
            for n, g in reg._gauges.items():
                merged = out.gauge(n)
                merged.value += g.value
                merged.high_water = max(merged.high_water, g.high_water)
            for n, h in reg._histograms.items():
                m = out.histogram(n, h.nbuckets)
                if m.nbuckets != h.nbuckets:
                    raise ValueError(f"histogram {n!r}: bucket count mismatch")
                for i, b in enumerate(h.buckets):
                    m.buckets[i] += b
                m.count += h.count
                m.total += h.total
        return out
