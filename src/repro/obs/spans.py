"""Causal, cross-node span trees for individual MPI messages.

The trace layer (``repro.trace``) captures flat per-node event records;
the breakdown layer (``repro.obs.breakdown``) averages them into the
paper's Fig 10 phases.  This module reconstructs the *causal story of a
single message*: every MPI send mints a cluster-unique message id
(``<task>:<sid>``, see ``Backend.mint_mid``) that rides every packet
header and trace record the message generates — on the origin, the
wire, and the target.  From one :class:`~repro.trace.Tracer` capture,
:func:`build_span_trees` groups records by that id and rebuilds, per
message, a tree of :class:`Span` s:

* the **root** spans the whole MPI-level exchange (eager data, or the
  rendezvous rts → rts_ack/cts → rdata → bfree conversation);
* one **leg** per LAPI active message / native MPCI frame;
* **leaf** spans under each leg mirror the Fig 10 phase partition
  exactly (``send_overhead``/``wire``/``interrupt``/``hdr_handler``/
  ``copy``/``thread_switch``/``completion``), so the sum of a tree's
  leaf durations equals the breakdown end-to-end total for the same
  message — the two views are provably consistent;
* zero-duration **instants** pin auxiliary records (matching outcomes,
  per-packet tx/rx beyond the first, completion hand-offs) onto the
  leg whose interval contains them.

Each span carries a logical *actor track* (``user``, ``dispatcher``,
``cmpl``, or ``wire``) so exporters can lay one timeline row per actor
per node — see ``repro.obs.chrometrace`` for the Perfetto/Chrome
exporter and :func:`render_text` for a plain-text timeline.

Every record carrying the message id is consumed: records that fit no
leg structurally are attached to the root and reported in
``MessageTree.orphans`` so tests can assert complete coverage.
Reconstruction is pure and deterministic — the same capture always
yields byte-identical renderings.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.breakdown import _check_dropped, _dwell_overlap, _dwells_by_node
from repro.trace import TraceRecord, Tracer

__all__ = ["MessageTree", "Span", "build_span_trees", "render_text"]

#: logical actor tracks a span can live on
TRACKS = ("user", "dispatcher", "cmpl", "wire")

#: leg kinds that move message payload (vs pure control traffic)
_DATA_LEGS = ("eager", "rdata")


class Span:
    """One node (interval or instant) of a message's causal tree."""

    __slots__ = ("name", "node", "track", "start", "end", "children", "args")

    def __init__(self, name: str, node: Optional[int], track: str,
                 start: float, end: float,
                 args: Optional[dict[str, Any]] = None):
        self.name = name
        self.node = node  # None for fabric/wire spans
        self.track = track
        self.start = start
        self.end = end
        self.children: list["Span"] = []
        self.args = args or {}

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def is_instant(self) -> bool:
        return self.end == self.start

    def add(self, child: "Span") -> "Span":
        self.children.append(child)
        return child

    def leaves(self) -> list["Span"]:
        """Descendants with no children, depth-first."""
        if not self.children:
            return [self]
        out: list[Span] = []
        for c in self.children:
            out.extend(c.leaves())
        return out

    def walk(self, depth: int = 0):
        yield self, depth
        for c in self.children:
            yield from c.walk(depth + 1)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span({self.name!r}, n{self.node}, {self.track}, "
                f"{self.start:.2f}..{self.end:.2f}, "
                f"{len(self.children)} children)")


class MessageTree:
    """The reconstructed span tree for one message id."""

    __slots__ = ("mid", "root", "legs", "records", "orphans")

    def __init__(self, mid: str, root: Span):
        self.mid = mid
        self.root = root
        #: top-level leg spans in chronological order
        self.legs: list[Span] = []
        #: every trace record carrying this mid, in capture order
        self.records: list[TraceRecord] = []
        #: records that fit no leg structurally (attached to the root)
        self.orphans: list[TraceRecord] = []

    @property
    def leaf_total(self) -> float:
        """Sum of leaf span durations (== breakdown end-to-end total)."""
        return sum(s.duration for s in self.root.leaves())

    @property
    def complete(self) -> bool:
        return not any(leg.args.get("partial") for leg in self.legs)


# ---------------------------------------------------------------- helpers
def _actor_of(thread: Optional[str]) -> str:
    """Map a CPU thread name onto the logical actor track."""
    if thread is None:
        return "dispatcher"
    if thread == "cmpl":
        return "cmpl"
    if thread.startswith("irq"):
        return "dispatcher"
    return "user"


def _take(pool: list[TraceRecord], used: dict[int, bool], node: Optional[int],
          events: Optional[tuple[str, ...]], **field_eq: Any) -> list[TraceRecord]:
    """Claim every unused record matching node, event set + field equality.

    The event filter matters: per-node counters (LAPI msg numbers, pipe
    frame ids) can coincide across directions of the same message, so a
    leg may only claim the events that belong to its side of the wire.
    """
    out = []
    for r in pool:
        if used[id(r)]:
            continue
        if node is not None and r.node != node:
            continue
        if events is not None and r.event not in events:
            continue
        if any(r.fields.get(k) != v for k, v in field_eq.items()):
            continue
        used[id(r)] = True
        out.append(r)
    return out


def _instant(leg: Span, r: TraceRecord, track: Optional[str] = None) -> None:
    leg.add(Span(r.event, r.node, track or _actor_of(r.fields.get("thr")),
                 r.time, r.time, args=dict(r.fields)))


def _phase_leaves(
    leg: Span,
    *,
    src: int,
    dst: int,
    t_send: float,
    send_thr: Optional[str],
    t_tx: Optional[float],
    t_rx: Optional[float],
    t_hdr: Optional[float],
    t_asm: Optional[float],
    t_done: Optional[float],
    switch_us: float,
    intr_us: float,
    cmpl_track: str,
) -> None:
    """Emit the telescoping Fig 10 phase leaves under ``leg``.

    ``None`` timestamps truncate the chain (partial legs of in-flight
    messages); emitted leaves always telescope so their durations sum to
    the covered interval exactly.
    """
    leg.add(Span("send_overhead", src, _actor_of(send_thr), t_send,
                 t_tx if t_tx is not None else t_send))
    if t_tx is None:
        return
    leg.add(Span("wire", None, "wire", t_tx, t_rx if t_rx is not None else t_tx))
    if t_rx is None:
        return
    if t_hdr is not None:
        leg.add(Span("interrupt", dst, "dispatcher", t_rx, t_rx + intr_us))
        leg.add(Span("hdr_handler", dst, "dispatcher", t_rx + intr_us, t_hdr))
        if t_asm is None:
            return
        leg.add(Span("copy", dst, "dispatcher", t_hdr, t_asm))
    else:
        # native frames have no header-handler mark: the whole
        # delivery window is interrupt dwell + per-packet copies
        if t_asm is None:
            return
        leg.add(Span("interrupt", dst, "dispatcher", t_rx, t_rx + intr_us))
        leg.add(Span("copy", dst, "dispatcher", t_rx + intr_us, t_asm))
    if t_done is None or t_done == t_asm:
        return
    leg.add(Span("thread_switch", dst, cmpl_track, t_asm, t_asm + switch_us))
    leg.add(Span("completion", dst, cmpl_track, t_asm + switch_us, t_done))


def _first(records: list[TraceRecord]) -> Optional[TraceRecord]:
    return records[0] if records else None


# ----------------------------------------------------------- leg builders
def _build_lapi_leg(
    send: TraceRecord,
    recs: list[TraceRecord],
    used: dict[int, bool],
    switches: dict[int, list[TraceRecord]],
    dwells: dict[int, list[TraceRecord]],
) -> Span:
    """One leg per LAPI active message (keyed by origin msg number)."""
    src, msg = send.node, send.fields["msg"]
    dst = send.fields["tgt"]
    name = send.fields.get("hh", "lapi")
    if name.startswith("mpi_"):
        name = name[len("mpi_"):]

    pkt_tx = _take(recs, used, src, ("pkt_tx",), msg=msg)
    rx_events = ("pkt_rx", "hdr_handler", "msg_complete", "cmpl_done",
                 "cmpl_inline", "cmpl_queued_to_thread", "cmpl_thread_run")
    dst_recs = _take(recs, used, dst, rx_events, msg=msg)
    pkt_rx = [r for r in dst_recs if r.event == "pkt_rx"]
    hdr = _first([r for r in dst_recs if r.event == "hdr_handler"])
    asm = _first([r for r in dst_recs if r.event == "msg_complete"])
    done = _first([r for r in dst_recs if r.event == "cmpl_done"])
    queued = _first([r for r in dst_recs if r.event == "cmpl_queued_to_thread"])
    rest = [r for r in dst_recs
            if r.event not in ("pkt_rx", "hdr_handler", "msg_complete",
                               "cmpl_done", "cmpl_queued_to_thread")]

    t_tx = pkt_tx[0].time if pkt_tx else None
    t_rx = pkt_rx[0].time if pkt_rx else None
    t_hdr = hdr.time if hdr else None
    t_asm = asm.time if asm else None
    t_done = done.time if done else None

    switch_us = 0.0
    if t_asm is not None and t_done is not None:
        for r in switches.get(dst, ()):
            if t_asm <= r.time <= t_done:
                switch_us = min(r.fields["cost_us"], t_done - t_asm)
                break
    intr_us = 0.0
    if t_rx is not None and t_hdr is not None:
        intr_us = min(_dwell_overlap(dwells, dst, t_rx, t_hdr), t_hdr - t_rx)

    end = t_done if t_done is not None else max(
        [send.time] + [t for t in (t_tx, t_rx, t_hdr, t_asm) if t is not None]
    )
    leg = Span(name, src, _actor_of(send.fields.get("thr")), send.time, end,
               args={"mid": send.fields.get("mid"), "msg": msg, "src": src,
                     "dst": dst, "bytes": send.fields.get("bytes", 0),
                     "kind": "lapi"})
    if t_done is None:
        leg.args["partial"] = True
    _phase_leaves(
        leg, src=src, dst=dst, t_send=send.time,
        send_thr=send.fields.get("thr"),
        t_tx=t_tx, t_rx=t_rx, t_hdr=t_hdr, t_asm=t_asm, t_done=t_done,
        switch_us=switch_us, intr_us=intr_us,
        cmpl_track="cmpl" if queued is not None else "dispatcher",
    )
    # per-packet instants beyond the first, and completion hand-off marks
    for r in pkt_tx[1:]:
        _instant(leg, r, "user")
    for r in pkt_rx[1:]:
        _instant(leg, r, "dispatcher")
    if queued is not None:
        _instant(leg, queued)
    for r in rest:
        _instant(leg, r)
    return leg


def _build_pipes_leg(
    send: TraceRecord,
    recs: list[TraceRecord],
    used: dict[int, bool],
    dwells: dict[int, list[TraceRecord]],
) -> Span:
    """One leg per native MPCI frame (keyed by frame id)."""
    src, fid = send.node, send.fields["fid"]
    dst = send.fields["dst"]
    name = send.fields.get("t", "frame")

    pkt_tx = _take(recs, used, src, ("pkt_tx",), fid=fid)
    pkt_rx = _take(recs, used, dst, ("pkt_rx",), fid=fid)

    t_tx = pkt_tx[0].time if pkt_tx else None
    t_rx = pkt_rx[0].time if pkt_rx else None
    t_asm = None
    if name in _DATA_LEGS:
        sid = send.fields.get("sid")
        asm = _first(
            _take(recs, used, dst, ("msg_complete",), sid=sid)
            if sid is not None else []
        )
        t_asm = asm.time if asm else None

    intr_us = 0.0
    if t_rx is not None and t_asm is not None:
        intr_us = min(_dwell_overlap(dwells, dst, t_rx, t_asm), t_asm - t_rx)

    end = max([send.time]
              + [t for t in (t_tx, t_rx, t_asm) if t is not None])
    leg = Span(name, src, _actor_of(send.fields.get("thr")), send.time, end,
               args={"mid": send.fields.get("mid"), "fid": fid, "src": src,
                     "dst": dst, "bytes": send.fields.get("bytes", 0),
                     "kind": "pipes"})
    if name in _DATA_LEGS and t_asm is None:
        leg.args["partial"] = True
    elif name not in _DATA_LEGS and t_rx is None:
        leg.args["partial"] = True
    _phase_leaves(
        leg, src=src, dst=dst, t_send=send.time,
        send_thr=send.fields.get("thr"),
        t_tx=t_tx, t_rx=t_rx, t_hdr=None, t_asm=t_asm, t_done=t_asm,
        switch_us=0.0, intr_us=intr_us, cmpl_track="dispatcher",
    )
    for r in pkt_tx[1:]:
        _instant(leg, r, "user")
    for r in pkt_rx[1:]:
        _instant(leg, r, "dispatcher")
    return leg


# ------------------------------------------------------------ tree build
def _build_tree(
    mid: str,
    recs: list[TraceRecord],
    switches: dict[int, list[TraceRecord]],
    dwells: dict[int, list[TraceRecord]],
) -> MessageTree:
    used: dict[int, bool] = {id(r): False for r in recs}

    legs: list[Span] = []
    for r in recs:
        if r.layer == "lapi" and r.event == "amsend":
            used[id(r)] = True
            legs.append(_build_lapi_leg(r, recs, used, switches, dwells))
        elif r.layer == "pipes" and r.event == "frame_send":
            used[id(r)] = True
            legs.append(_build_pipes_leg(r, recs, used, dwells))
    legs.sort(key=lambda s: (s.start, s.args.get("msg", s.args.get("fid", 0))))

    start = min([s.start for s in legs] + [r.time for r in recs]) if recs else 0.0
    end = max([s.end for s in legs] + [r.time for r in recs]) if recs else 0.0
    root = Span(f"msg {mid}", legs[0].node if legs else None, "user",
                start, end, args={"mid": mid})
    tree = MessageTree(mid, root)
    tree.records = list(recs)
    tree.legs = legs
    for leg in legs:
        root.add(leg)

    # attach leftover records to the leg whose interval contains them;
    # true orphans hang off the root and are reported
    for r in recs:
        if used[id(r)]:
            continue
        home = None
        for leg in legs:
            nodes = (leg.args.get("src"), leg.args.get("dst"))
            if r.node in nodes and leg.start <= r.time <= leg.end:
                home = leg
                break
        used[id(r)] = True
        if home is not None:
            _instant(home, r)
        else:
            _instant(root, r)
            tree.orphans.append(r)
    return tree


def build_span_trees(
    tracer: Tracer, allow_truncated: bool = False
) -> dict[str, MessageTree]:
    """Reconstruct one :class:`MessageTree` per message id in the capture.

    Deterministic: trees are keyed and ordered by message id.  Raises
    :class:`~repro.obs.breakdown.TruncatedTraceError` when the tracer
    dropped records (unless ``allow_truncated``), since a truncated
    capture cannot promise complete trees.
    """
    _check_dropped(tracer, allow_truncated)
    by_mid: dict[str, list[TraceRecord]] = {}
    for r in tracer.records:
        mid = r.fields.get("mid")
        if mid is not None:
            by_mid.setdefault(mid, []).append(r)
    switches: dict[int, list[TraceRecord]] = {}
    for r in tracer.filter(layer="cpu", event="ctx_switch", to="cmpl"):
        switches.setdefault(r.node, []).append(r)
    dwells = _dwells_by_node(tracer)

    def _mid_key(m: str):
        task, _, sid = m.partition(":")
        try:
            return (int(task), int(sid))
        except ValueError:  # foreign mid formats sort lexically at the end
            return (1 << 30, m)

    return {
        mid: _build_tree(mid, by_mid[mid], switches, dwells)
        for mid in sorted(by_mid, key=_mid_key)
    }


# ---------------------------------------------------------------- render
def render_text(trees: dict[str, MessageTree]) -> str:
    """Plain-text timeline/flamegraph dump of the reconstructed trees.

    Deterministic: the same capture always renders byte-identically.
    """
    lines: list[str] = []
    for mid, tree in trees.items():
        root = tree.root
        lines.append(
            f"msg {mid}  [{root.start:10.2f} .. {root.end:10.2f}us]  "
            f"span={root.duration:.2f}us  legs={len(tree.legs)}"
            + ("" if tree.complete else "  (partial)")
        )
        for span, depth in root.walk():
            if span is root:
                continue
            pad = "  " * depth
            where = f"n{span.node}" if span.node is not None else "--"
            if span.is_instant:
                lines.append(
                    f"{pad}· {span.name} @ {span.start:.2f}us "
                    f"[{where}/{span.track}]"
                )
            else:
                lines.append(
                    f"{pad}{span.name:<14s} [{where}/{span.track:<10s}] "
                    f"{span.start:10.2f} .. {span.end:10.2f}  "
                    f"({span.duration:.2f}us)"
                )
        if tree.orphans:
            lines.append(f"  ! {len(tree.orphans)} orphan record(s)")
    return "\n".join(lines) + "\n"
