"""Perfetto/Chrome ``trace_event`` export of message span trees.

Converts the output of :func:`repro.obs.spans.build_span_trees` into the
Trace Event JSON format understood by ``ui.perfetto.dev`` and
``chrome://tracing``:

* one *process* per simulated node (pid ``node+1``) plus pid 0 for the
  switch fabric, named via ``M`` metadata events;
* one *thread* row per logical actor (user task, dispatcher,
  completion-handler thread) per node;
* ``X`` complete events for duration spans, ``i`` instants for
  zero-duration marks, and ``s``/``f`` flow events stitching each leg's
  origin to its target so the cross-node causality renders as arrows.

Timestamps are emitted in microseconds (the simulation's native unit).
The writer is deterministic — same trees, byte-identical file — so
trace files can be diffed and checked into baselines.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.spans import MessageTree, Span

__all__ = ["to_chrome_trace", "write_chrome_trace"]

#: fabric pseudo-process and the per-node actor row layout
_FABRIC_PID = 0
_TID = {"user": 1, "dispatcher": 2, "cmpl": 3, "wire": 1}
_TRACK_LABEL = {
    "user": "user task",
    "dispatcher": "dispatcher",
    "cmpl": "completion thread",
    "wire": "wire",
}


def _pid(span: Span) -> int:
    if span.track == "wire" or span.node is None:
        return _FABRIC_PID
    return span.node + 1


def _jsonable(args: dict[str, Any]) -> dict[str, Any]:
    return {k: v for k, v in args.items()
            if isinstance(v, (str, int, float, bool)) and v is not None}


def to_chrome_trace(trees: dict[str, MessageTree]) -> dict[str, Any]:
    """Build the ``{"traceEvents": [...]}`` object for the given trees."""
    events: list[dict[str, Any]] = []
    pids: set[int] = set()
    rows: set[tuple[int, int, str]] = set()
    flow_id = 0

    for mid, tree in trees.items():
        for leg in tree.legs:
            cat = f"leg:{leg.name}"
            for span, _depth in leg.walk():
                pid = _pid(span)
                tid = _TID.get(span.track, 1)
                pids.add(pid)
                if pid != _FABRIC_PID:
                    rows.add((pid, tid, _TRACK_LABEL.get(span.track, span.track)))
                ev: dict[str, Any] = {
                    "name": span.name,
                    "cat": cat,
                    "ts": span.start,
                    "pid": pid,
                    "tid": tid,
                    "args": _jsonable(dict(span.args, mid=mid)),
                }
                if span.is_instant:
                    ev.update(ph="i", s="t")
                else:
                    ev.update(ph="X", dur=span.duration)
                events.append(ev)
            # flow arrow: origin send → target delivery of this leg
            leaves = leg.leaves()
            sends = [s for s in leaves if s.name == "send_overhead"]
            lands = [s for s in leaves
                     if s.name in ("hdr_handler", "copy") and not s.is_instant]
            if sends and lands:
                flow_id += 1
                fid = f"{mid}/{flow_id}"
                events.append({
                    "name": leg.name, "cat": "flow", "ph": "s", "id": fid,
                    "ts": sends[0].end, "pid": _pid(sends[0]),
                    "tid": _TID.get(sends[0].track, 1),
                })
                events.append({
                    "name": leg.name, "cat": "flow", "ph": "f", "bp": "e",
                    "id": fid, "ts": lands[0].start, "pid": _pid(lands[0]),
                    "tid": _TID.get(lands[0].track, 1),
                })

    meta: list[dict[str, Any]] = []
    for pid in sorted(pids):
        name = "fabric" if pid == _FABRIC_PID else f"node {pid - 1}"
        meta.append({"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                     "args": {"name": name}})
        meta.append({"name": "process_sort_index", "ph": "M", "pid": pid,
                     "tid": 0, "args": {"sort_index": pid}})
    for pid, tid, label in sorted(rows):
        meta.append({"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                     "args": {"name": label}})
    if _FABRIC_PID in pids:
        meta.append({"name": "thread_name", "ph": "M", "pid": _FABRIC_PID,
                     "tid": _TID["wire"], "args": {"name": "wire"}})

    events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"], e["ph"], e["name"]))
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(trees: dict[str, MessageTree], path) -> None:
    """Write the trees to ``path`` as deterministic trace-event JSON."""
    obj = to_chrome_trace(trees)
    with open(path, "w") as fh:
        json.dump(obj, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
