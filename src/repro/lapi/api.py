"""The LAPI library: one instance per task.

Threading model (paper §3/§5): header handlers run in the context that
drives the dispatcher (the polling thread, or the interrupt context);
completion handlers run on a **separate thread** — entering it costs a
context switch, which §5 identifies as the dominant overhead of the Base
MPI-LAPI.  With ``enhanced=True`` (the paper's §5.3 LAPI extension),
completion handlers are executed in the dispatcher's own context.

Header handlers MUST NOT call LAPI functions (enforced: doing so raises
:class:`LapiError`); completion handlers may.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator, Optional

from repro.hal import Hal, fragment
from repro.lapi.buffers import ByteTarget, NullTarget
from repro.lapi.counters import Counter
from repro.machine.cpu import Cpu
from repro.machine.params import MachineParams
from repro.machine.stats import NodeStats
from repro.sim import AnyOf, Environment, Event, Store
from repro.transport import ReceiverLedger, SenderWindow

__all__ = ["Lapi", "LapiError"]

_DATA = "lapi"
_ACK = "lapi_ack"

#: Rmw operations (LAPI_Rmw)
RMW_OPS = ("FETCH_AND_ADD", "FETCH_AND_OR", "SWAP", "COMPARE_AND_SWAP")


class LapiError(RuntimeError):
    """Misuse of the LAPI interface."""


class _FlowTx:
    __slots__ = ("window", "waiters", "last_progress", "rto_alive")

    def __init__(self, window_pkts: int):
        self.window = SenderWindow(window_pkts)
        self.waiters: list[Event] = []
        self.last_progress = 0.0
        self.rto_alive = False


class _FlowRx:
    __slots__ = ("ledger", "since_ack", "ack_timer_alive")

    def __init__(self):
        self.ledger = ReceiverLedger()
        self.since_ack = 0
        self.ack_timer_alive = False


class _Assembly:
    """Reassembly state for one incoming LAPI message."""

    __slots__ = (
        "src",
        "msg_no",
        "mid",
        "mlen",
        "received",
        "target",
        "stash",
        "cmpl_fn",
        "cmpl_data",
        "cmpl_inline_always",
        "tgt_cntr_id",
        "want_cmpl",
        "header_seen",
        "done",
    )

    def __init__(self, src: int, msg_no: int):
        self.src = src
        self.msg_no = msg_no
        self.mid: Optional[str] = None
        self.mlen = -1
        self.received = 0
        self.target = None
        #: chunks that raced ahead of the header packet: (offset, payload)
        #: where payload may be a read-only view of the sender's snapshot
        self.stash: list[tuple[int, bytes]] = []
        self.cmpl_fn: Optional[Callable[..., Generator]] = None
        self.cmpl_data: Any = None
        self.cmpl_inline_always = False
        self.tgt_cntr_id: Optional[int] = None
        self.want_cmpl = False
        self.header_seen = False
        self.done = False


class _SendDesc:
    """One Amsend queued at the origin's transmit engine."""

    __slots__ = (
        "dst",
        "hdr_hdl",
        "uhdr",
        "udata",
        "msg_no",
        "mid",
        "tgt_cntr_id",
        "org_cntr",
        "want_cmpl",
    )

    def __init__(self, dst, hdr_hdl, uhdr, udata, msg_no, mid, tgt_cntr_id, org_cntr, want_cmpl):
        self.dst = dst
        self.hdr_hdl = hdr_hdl
        self.uhdr = uhdr
        self.udata = udata
        self.msg_no = msg_no
        self.mid = mid
        self.tgt_cntr_id = tgt_cntr_id
        self.org_cntr = org_cntr
        self.want_cmpl = want_cmpl


class Lapi:
    """One task's LAPI endpoint.

    Header handlers are registered by name with :meth:`register_handler`;
    an ``LAPI_Amsend`` names the handler to run at the target (the real
    library passes a function pointer).

    A handler has signature ``fn(lapi, src, uhdr, mlen) -> (target,
    cmpl_fn, cmpl_data)`` where ``target`` is a :class:`ByteTarget` /
    :class:`NullTarget` / ``None`` and ``cmpl_fn(lapi, thread, data)`` is
    a generator run at message completion.
    """

    def __init__(
        self,
        env: Environment,
        cpu: Cpu,
        hal: Hal,
        params: MachineParams,
        stats: NodeStats,
        task_id: int,
        num_tasks: int,
        enhanced: bool = False,
    ):
        self.env = env
        self.cpu = cpu
        self.hal = hal
        self.params = params
        self.stats = stats
        self.task_id = task_id
        self.num_tasks = num_tasks
        self.enhanced = enhanced
        #: fault hook (:class:`repro.faults.FaultPoint`) for dispatcher
        #: stalls; installed by the cluster, ``None`` otherwise
        self.faults = None

        self._handlers: dict[str, Callable] = {}
        self._inline_always: set[str] = set()
        self._counters: dict[int, Counter] = {}
        self._cntr_ids = itertools.count(1)
        self._addresses: dict[str, Any] = {}

        self._flow_tx: dict[int, _FlowTx] = {}
        self._flow_rx: dict[int, _FlowRx] = {}
        self._assemblies: dict[tuple[int, int], _Assembly] = {}
        self._msg_nos = itertools.count()
        self._txq = Store(env, name=f"lapi{task_id}.txq")
        self._tx_outstanding = 0  # descriptors queued but not fully windowed
        self._quiesce_waiters: list[Event] = []

        self._cmplq = Store(env, name=f"lapi{task_id}.cmplq")
        self._in_hdr_handler = False
        #: extra dispatcher CPU time requested by a header handler (header
        #: handlers are synchronous, so they cannot charge time themselves;
        #: e.g. MPI matching-queue searches add cost this way)
        self._pending_charge_us = 0.0
        #: origin (tgt, msg_no) -> completion counter awaiting the echo
        self._pending_cmpl: dict[tuple[int, int], Counter] = {}

        # one-sided support state
        self._pending_get: dict[int, tuple[memoryview, Optional[Counter]]] = {}
        self._pending_rmw: dict[int, dict] = {}
        self._rmw_ids = itertools.count()
        self._get_ids = itertools.count()
        self._gfence_seen: dict[int, set[int]] = {}
        self._gfence_epoch = 0

        # observability: per-op counters and the in-flight-packet gauge
        # live in the node's metrics registry (shared via NodeStats)
        self.metrics = stats.registry
        self._m_amsend = self.metrics.counter("lapi.amsend")
        self._m_put = self.metrics.counter("lapi.put")
        self._m_get = self.metrics.counter("lapi.get")
        self._m_rmw = self.metrics.counter("lapi.rmw")
        self._m_dispatch = self.metrics.counter("lapi.dispatch_pkts")
        self._g_inflight = self.metrics.gauge("lapi.pkts_in_flight")

        self._register_internal_handlers()
        env.process(self._tx_engine(), name=f"lapi{task_id}.tx")
        env.process(self._cmpl_thread(), name=f"lapi{task_id}.cmpl")

    # =================================================== registration
    def register_handler(
        self, name: str, fn: Callable, inline_always: bool = False
    ) -> None:
        """Register a header handler under ``name``.

        ``inline_always`` marks library-internal handlers whose completion
        runs in dispatcher context regardless of the enhanced flag (the
        real library's internal ops never pay the thread switch).
        """
        if name in self._handlers:
            raise LapiError(f"handler {name!r} already registered")
        self._handlers[name] = fn
        if inline_always:
            self._inline_always.add(name)

    def create_counter(self, name: str = "cntr", initial: int = 0) -> tuple[int, Counter]:
        """Allocate a counter addressable from remote tasks by id."""
        cid = next(self._cntr_ids)
        cntr = Counter(self.env, name=f"t{self.task_id}.{name}", initial=initial)
        self._counters[cid] = cntr
        return cid, cntr

    def counter_by_id(self, cid: int) -> Counter:
        return self._counters[cid]

    def address_init(self, name: str, obj: Any) -> None:
        """LAPI_Address_init: publish a local object under ``name``.

        Remote Put/Get/Rmw refer to it by name (the real call exchanges
        raw addresses; names are this model's addresses).
        """
        self._addresses[name] = obj

    def address_fini(self, name: str) -> None:
        """Retire a published address (window free); unknown names are a
        no-op so shutdown paths stay idempotent."""
        self._addresses.pop(name, None)

    def resolve_address(self, name: str) -> Any:
        try:
            return self._addresses[name]
        except KeyError:
            raise LapiError(f"task {self.task_id}: unknown address {name!r}") from None

    # =================================================== environment
    def qenv(self, what: str) -> Any:
        """LAPI_Qenv."""
        table = {
            "TASK_ID": self.task_id,
            "NUM_TASKS": self.num_tasks,
            "MAX_UHDR_SZ": 960,
            "MAX_DATA_SZ": 1 << 30,
            "INTERRUPT_SET": self.hal.adapter.interrupt_mode,
            "ENHANCED": self.enhanced,
        }
        try:
            return table[what]
        except KeyError:
            raise LapiError(f"unknown Qenv key {what!r}") from None

    def senv(self, what: str, value: Any) -> None:
        """LAPI_Senv: currently INTERRUPT_SET (the paper toggles it)."""
        if what == "INTERRUPT_SET":
            if value:
                self.hal.adapter.set_interrupt_handler(lambda _a: self._isr())
            self.hal.adapter.set_interrupt_mode(bool(value))
        else:
            raise LapiError(f"unknown Senv key {what!r}")

    # ==================================================== Amsend core
    def amsend(
        self,
        thread: str,
        tgt: int,
        hdr_hdl: str,
        uhdr: dict[str, Any],
        udata: bytes = b"",
        tgt_cntr_id: Optional[int] = None,
        org_cntr: Optional[Counter] = None,
        cmpl_cntr: Optional[Counter] = None,
        mid: Optional[str] = None,
    ) -> Generator:
        """LAPI_Amsend: active-message send (non-blocking).

        Returns once the message is handed to the transmit engine; use
        the counters to learn about buffer reuse / completion.  ``mid``
        is an optional caller-assigned message id carried on every
        packet and trace record of this message (MPI-LAPI threads its
        cluster-unique message id through here so captures on both
        nodes correlate — see ``repro.obs.spans``).
        """
        self._check_not_in_header_handler("LAPI_Amsend")
        if tgt == self.task_id:
            raise LapiError("LAPI does not loop back to self")
        yield from self.cpu.execute(thread, self.params.lapi_call_us)
        msg_no = next(self._msg_nos)
        self._m_amsend.incr()
        self.stats.trace("lapi", "amsend", tgt=tgt, hh=hdr_hdl, msg=msg_no,
                         bytes=len(udata), mid=mid, thr=thread)
        want_cmpl = cmpl_cntr is not None
        if want_cmpl:
            # origin-side registration so the _cmpl echo can find it
            self._pending_cmpl[(tgt, msg_no)] = cmpl_cntr
        self._tx_outstanding += 1
        # Immutable payloads (bytes, read-only views) are queued as-is —
        # zero-copy; anything mutable is snapshotted so retransmits stay
        # byte-stable even if the caller reuses the buffer.
        if not (isinstance(udata, bytes)
                or (isinstance(udata, memoryview) and udata.readonly)):
            udata = bytes(udata)
        self._txq.put(
            _SendDesc(tgt, hdr_hdl, uhdr, udata, msg_no, mid, tgt_cntr_id, org_cntr, want_cmpl)
        )

    def put(
        self,
        thread: str,
        tgt: int,
        tgt_name: str,
        tgt_off: int,
        data: bytes,
        tgt_cntr_id: Optional[int] = None,
        org_cntr: Optional[Counter] = None,
        cmpl_cntr: Optional[Counter] = None,
        mid: Optional[str] = None,
    ) -> Generator:
        """LAPI_Put: one-sided write into a published remote buffer."""
        self._m_put.incr()
        yield from self.amsend(
            thread,
            tgt,
            "_lapi_put",
            {"name": tgt_name, "off": tgt_off},
            data,
            tgt_cntr_id=tgt_cntr_id,
            org_cntr=org_cntr,
            cmpl_cntr=cmpl_cntr,
            mid=mid,
        )

    def get(
        self,
        thread: str,
        tgt: int,
        tgt_name: str,
        tgt_off: int,
        nbytes: int,
        local_buf,
        org_cntr: Optional[Counter] = None,
        tgt_cntr_id: Optional[int] = None,
        mid: Optional[str] = None,
    ) -> Generator:
        """LAPI_Get: one-sided read; ``org_cntr`` fires when data lands.

        ``tgt_cntr_id`` (if given) increments at the target once the
        request has been served — i.e. the reply data has been captured,
        so the target may safely modify the buffer afterwards.
        """
        self._m_get.incr()
        gid = next(self._get_ids)
        self._pending_get[gid] = (memoryview(local_buf), org_cntr)
        yield from self.amsend(
            thread,
            tgt,
            "_lapi_get_req",
            {"name": tgt_name, "off": tgt_off, "n": nbytes, "gid": gid,
             "origin": self.task_id},
            tgt_cntr_id=tgt_cntr_id,
            mid=mid,
        )

    def rmw(
        self,
        thread: str,
        tgt: int,
        tgt_name: str,
        op: str,
        in_value: int,
        prev_cntr: Optional[Counter] = None,
        compare_value: Optional[int] = None,
        tgt_off: Optional[int] = None,
        tgt_cntr_id: Optional[int] = None,
    ) -> Generator:
        """LAPI_Rmw: remote atomic; result arrives via :meth:`rmw_result`.

        ``prev_cntr`` fires when the previous value is available.  The
        target word is ``<published object>.value`` by default; with
        ``tgt_off`` it is the 64-bit little-endian word at that byte
        offset of the published buffer (accessed via the object's
        ``read_word``/``write_word``).  Atomicity holds in both cases:
        the read-modify-write runs synchronously inside the target's
        header handler, and the transport's duplicate suppression makes
        it exactly-once under packet loss and retransmission.
        """
        if op not in RMW_OPS:
            raise LapiError(f"unknown Rmw op {op!r}")
        if tgt == self.task_id:
            raise LapiError("LAPI does not loop back to self")
        self._m_rmw.incr()
        rid = next(self._rmw_ids)
        self._pending_rmw[rid] = {"done": False, "prev": None, "cntr": prev_cntr}
        yield from self.amsend(
            thread,
            tgt,
            "_lapi_rmw_req",
            {
                "name": tgt_name,
                "op": op,
                "val": in_value,
                "cmp": compare_value,
                "rid": rid,
                "origin": self.task_id,
                "toff": tgt_off,
            },
            tgt_cntr_id=tgt_cntr_id,
        )
        return rid

    def rmw_result(self, rid: int) -> tuple[bool, Optional[int]]:
        """Poll an Rmw: ``(done, prev)``.

        Once ``done`` is True the pending entry is retired — the result
        may be read exactly once (polling again with the same id after
        completion raises).  This keeps ``_pending_rmw`` from growing
        without bound over a long run.
        """
        st = self._pending_rmw.get(rid)
        if st is None:
            raise LapiError(f"unknown rmw id {rid}")
        if st["done"]:
            del self._pending_rmw[rid]
        return st["done"], st["prev"]

    # =================================================== counter waits
    def getcntr(self, cntr: Counter) -> int:
        """LAPI_Getcntr."""
        return cntr.value

    def setcntr(self, cntr: Counter, value: int) -> None:
        """LAPI_Setcntr."""
        cntr.set(value)

    def waitcntr(self, thread: str, cntr: Counter, val: int = 1) -> Generator:
        """LAPI_Waitcntr: poll until ``cntr >= val``, then subtract ``val``.

        Polling drives the dispatcher, so progress happens here — this is
        how polling-mode LAPI (and MPI on top of it) advances.
        """
        self._check_not_in_header_handler("LAPI_Waitcntr")
        yield from self.cpu.execute(thread, self.params.lapi_param_check_us)
        while cntr.value < val:
            if self.hal.rx_pending:
                yield from self.dispatch(thread)
                continue
            self.stats.polls += 1
            yield from self.cpu.execute(thread, self.params.poll_check_us)
            if cntr.value >= val:
                break
            if self.hal.rx_pending:
                continue
            yield AnyOf(self.env, [self.hal.wait_rx(), cntr.changed()])
        cntr.sub(val)

    def fence(self, thread: str) -> Generator:
        """LAPI_Fence: wait until all messages this task initiated have
        been delivered (transport-acknowledged) at their targets."""
        self._check_not_in_header_handler("LAPI_Fence")
        while not self._quiesced():
            yield from self.dispatch(thread)
            if self._quiesced():
                break
            ev = self.env.event()
            self._quiesce_waiters.append(ev)
            yield AnyOf(self.env, [self.hal.wait_rx(), ev])

    def gfence(self, thread: str) -> Generator:
        """LAPI_Gfence: global fence — local fence + dissemination barrier."""
        yield from self.fence(thread)
        epoch = self._gfence_epoch
        self._gfence_epoch += 1
        for t in range(self.num_tasks):
            if t != self.task_id:
                yield from self.amsend(
                    thread, t, "_lapi_gfence", {"epoch": epoch, "origin": self.task_id}
                )
        seen = self._gfence_seen.setdefault(epoch, set())
        while len(seen) < self.num_tasks - 1:
            yield from self.dispatch(thread)
            if len(seen) >= self.num_tasks - 1:
                break
            yield self.hal.wait_rx()
        del self._gfence_seen[epoch]

    def _quiesced(self) -> bool:
        return self._tx_outstanding == 0 and all(
            f.window.in_flight == 0 for f in self._flow_tx.values()
        )

    # ===================================================== TX engine
    def _flow_for_tx(self, dst: int) -> _FlowTx:
        flow = self._flow_tx.get(dst)
        if flow is None:
            flow = self._flow_tx[dst] = _FlowTx(self.params.lapi_window_pkts)
        return flow

    def _flow_for_rx(self, src: int) -> _FlowRx:
        flow = self._flow_rx.get(src)
        if flow is None:
            flow = self._flow_rx[src] = _FlowRx()
        return flow

    def _tx_engine(self) -> Generator:
        p = self.params
        while True:
            desc: _SendDesc = yield self._txq.get()
            flow = self._flow_for_tx(desc.dst)
            udata = desc.udata
            chunks = fragment(len(udata), p.packet_payload)
            last_idx = len(chunks) - 1
            # Zero-copy packetization: multi-packet messages ride read-only
            # views of the immutable snapshot; a single-packet message is
            # the snapshot itself.  The views stay valid for retransmits
            # and for receive-side stashing because the snapshot never
            # mutates.
            view = memoryview(udata) if last_idx > 0 else None
            for idx, (off, ln) in enumerate(chunks):
                while not flow.window.can_send:
                    # Drive the dispatcher while stalled: the window opens
                    # on acks that may be sitting in our own adapter FIFO.
                    yield from self.dispatch("user")
                    if flow.window.can_send:
                        break
                    ev = self.env.event()
                    flow.waiters.append(ev)
                    yield AnyOf(self.env, [ev, self.hal.wait_rx()])
                header: dict[str, Any] = {
                    "kind": _DATA,
                    "seq": None,
                    "msg": desc.msg_no,
                    "mid": desc.mid,
                    "off": off,
                    "mlen": len(udata),
                }
                if idx == 0:
                    header["first"] = True
                    header["hh"] = desc.hdr_hdl
                    header["uhdr"] = desc.uhdr
                    header["tgt_cntr"] = desc.tgt_cntr_id
                    header["want_cmpl"] = desc.want_cmpl
                payload = udata if view is None else view[off : off + ln]
                seq = flow.window.send((header, payload))
                self._g_inflight.add(1)
                header["seq"] = seq
                yield from self.cpu.execute("user", p.lapi_tx_pkt_us)
                dma_ev = None
                if idx == last_idx and desc.org_cntr is not None:
                    dma_ev = self.env.event()
                    org = desc.org_cntr
                    dma_ev._add_callback(lambda _e, c=org: c.incr())
                yield from self.hal.send("user", desc.dst, header, payload, on_dma_done=dma_ev)
                flow.last_progress = self.env.now
                self._ensure_rto(desc.dst, flow)
            self._tx_outstanding -= 1

    def _ensure_rto(self, dst: int, flow: _FlowTx) -> None:
        if flow.rto_alive:
            return
        flow.rto_alive = True
        self.env.process(self._rto_loop(dst, flow), name=f"lapi{self.task_id}.rto->{dst}")

    def _rto_loop(self, dst: int, flow: _FlowTx) -> Generator:
        p = self.params
        rto = p.lapi_rto_us
        try:
            while flow.window.in_flight:
                yield self.env.timeout(rto)
                if not flow.window.in_flight:
                    break
                yield from self.dispatch("user")
                if not flow.window.in_flight:
                    break
                if self.env.now - flow.last_progress < rto:
                    continue
                oldest = flow.window.oldest_unacked()
                if oldest is None:
                    break
                _seq, (header, payload) = oldest
                self.stats.retransmissions += 1
                self.stats.trace("lapi", "retransmit", dst=dst, seq=_seq)
                yield from self.cpu.execute("user", p.lapi_tx_pkt_us)
                yield from self.hal.send("user", dst, header, payload)
                flow.last_progress = self.env.now
                rto = min(rto * 2, p.lapi_rto_us * 16)
        finally:
            flow.rto_alive = False

    # ===================================================== dispatcher
    def dispatch(self, thread: str) -> Generator:
        """Drain the adapter, running header/completion machinery.

        Safe to call concurrently from several contexts: ``poll()`` pops
        each packet exactly once, and no per-packet state is shared
        across a yield point.  Returns the number of packets processed.
        """
        if self.faults is not None:
            stall = self.faults.stall_us(self.env.now)
            if stall > 0.0:
                yield from self.cpu.execute(thread, stall)
        processed = 0
        while True:
            pkt = self.hal.poll()
            if pkt is None:
                return processed
            processed += 1
            self._m_dispatch.incr()
            yield from self.hal.charge_recv(thread)
            kind = pkt.header.get("kind")
            if kind == _ACK:
                self._handle_ack(pkt.src, pkt.header["cum"])
            elif kind == _DATA:
                yield from self._handle_data(thread, pkt.src, pkt.header, pkt.payload)
            else:
                raise LapiError(f"LAPI got foreign packet kind {kind!r}")

    def _isr(self) -> Generator:
        """Interrupt service routine: plain drain, **no hysteresis** —
        the paper credits LAPI's good interrupt-mode latency to this."""
        yield from self.dispatch(f"irq{self.task_id}")

    def _handle_ack(self, src: int, cum: int) -> None:
        flow = self._flow_for_tx(src)
        freed = flow.window.on_ack(cum)
        if freed:
            self._g_inflight.add(-freed)
            flow.last_progress = self.env.now
            waiters, flow.waiters = flow.waiters, []
            for ev in waiters:
                if not ev.triggered:
                    ev.succeed()
        if self._quiesced():
            waiters, self._quiesce_waiters = self._quiesce_waiters, []
            for ev in waiters:
                if not ev.triggered:
                    ev.succeed()

    def _handle_data(
        self, thread: str, src: int, header: dict[str, Any], payload: bytes
    ) -> Generator:
        p = self.params
        flow = self._flow_for_rx(src)
        yield from self.cpu.execute(thread, p.lapi_dispatch_us)
        if flow.ledger.accept(header["seq"]) == "dup":
            yield from self._send_ack(thread, src, flow)
            return
        flow.since_ack += 1

        key = (src, header["msg"])
        asm = self._assemblies.get(key)
        if asm is None:
            asm = self._assemblies[key] = _Assembly(src, header["msg"])

        if header.get("first"):
            asm.header_seen = True
            asm.mlen = header["mlen"]
            asm.mid = header.get("mid")
            asm.tgt_cntr_id = header.get("tgt_cntr")
            asm.want_cmpl = bool(header.get("want_cmpl"))
            try:
                handler = self._handlers[header["hh"]]
            except KeyError:
                raise LapiError(
                    f"task {self.task_id}: message names unregistered header "
                    f"handler {header['hh']!r}"
                ) from None
            self.stats.hdr_handlers_run += 1
            self.metrics.counter("lapi.hdr." + header["hh"]).incr()
            yield from self.cpu.execute(thread, p.lapi_hdr_hdl_us)
            self._in_hdr_handler = True
            try:
                target, cmpl_fn, cmpl_data = handler(self, src, header["uhdr"], asm.mlen)
            finally:
                self._in_hdr_handler = False
            if self._pending_charge_us > 0.0:
                extra, self._pending_charge_us = self._pending_charge_us, 0.0
                yield from self.cpu.execute(thread, extra)
            asm.target = target if target is not None else NullTarget()
            asm.cmpl_fn = cmpl_fn
            asm.cmpl_data = cmpl_data
            asm.cmpl_inline_always = header["hh"] in self._inline_always
            self.stats.trace("lapi", "hdr_handler", hh=header["hh"], src=src,
                             msg=header["msg"], mlen=asm.mlen, mid=asm.mid,
                             thr=thread)
            # flush chunks that raced ahead of the header packet
            for off, data in asm.stash:
                yield from self._assemble(thread, asm, off, data)
            asm.stash.clear()

        if asm.target is None:
            # header not seen yet: hold the chunk (still in HAL buffers)
            asm.stash.append((header["off"], payload))
        else:
            yield from self._assemble(thread, asm, header["off"], payload)

        if asm.header_seen and asm.received >= asm.mlen and not asm.done:
            asm.done = True
            del self._assemblies[key]
            yield from self._complete(thread, asm)

        if flow.since_ack >= p.lapi_ack_every:
            yield from self._send_ack(thread, src, flow)
        elif flow.since_ack > 0 and not flow.ack_timer_alive:
            flow.ack_timer_alive = True
            self.env.process(self._delayed_ack(src, flow), name=f"lapi{self.task_id}.dack")

    def _assemble(self, thread: str, asm: _Assembly, off: int, data: bytes) -> Generator:
        """Move one chunk HAL buffer -> target (the single MPI-LAPI copy)."""
        if data:
            asm.target.write(off, data)
            yield from self.cpu.memcpy(thread, len(data))
            asm.received += len(data)

    def _complete(self, thread: str, asm: _Assembly) -> Generator:
        """Message fully assembled: run completion machinery."""
        self.stats.trace("lapi", "msg_complete", src=asm.src, msg=asm.msg_no,
                         bytes=asm.mlen, mid=asm.mid, thr=thread)
        if asm.cmpl_fn is not None:
            if self.enhanced or asm.cmpl_inline_always:
                self.stats.cmpl_handlers_inline += 1
                self.stats.trace("lapi", "cmpl_inline", msg=asm.msg_no,
                                 mid=asm.mid, thr=thread)
                yield from self.cpu.execute(thread, self.params.lapi_inline_cmpl_us)
                yield from asm.cmpl_fn(self, thread, asm.cmpl_data)
                yield from self._post_complete(thread, asm)
            else:
                self.stats.cmpl_handlers_threaded += 1
                self.stats.trace("lapi", "cmpl_queued_to_thread", msg=asm.msg_no,
                                 mid=asm.mid, thr=thread)
                self._cmplq.put(asm)
        else:
            yield from self._post_complete(thread, asm)

    def _cmpl_thread(self) -> Generator:
        """The separate completion-handler thread of stock LAPI."""
        thread = "cmpl"
        while True:
            asm: _Assembly = yield self._cmplq.get()
            # the context switch is charged by the CPU when this thread
            # name differs from the previous one
            self.stats.trace("lapi", "cmpl_thread_run", msg=asm.msg_no,
                             mid=asm.mid, thr=thread)
            yield from self.cpu.execute(thread, self.params.lapi_inline_cmpl_us)
            yield from asm.cmpl_fn(self, thread, asm.cmpl_data)
            yield from self._post_complete(thread, asm)

    def _post_complete(self, thread: str, asm: _Assembly) -> Generator:
        """Counter updates after handler execution (paper §3 ordering)."""
        self.stats.trace("lapi", "cmpl_done", src=asm.src, msg=asm.msg_no,
                         mid=asm.mid, thr=thread)
        if asm.tgt_cntr_id is not None:
            cntr = self._counters.get(asm.tgt_cntr_id)
            if cntr is None:
                raise LapiError(
                    f"task {self.task_id}: unknown target counter id {asm.tgt_cntr_id}"
                )
            cntr.incr()
        if asm.want_cmpl:
            yield from self.amsend(
                thread,
                asm.src,
                "_lapi_cmpl",
                {"msg": asm.msg_no, "origin": self.task_id},
            )

    def _send_ack(self, thread: str, src: int, flow: _FlowRx) -> Generator:
        flow.since_ack = 0
        self.stats.acks_sent += 1
        yield from self.hal.send(thread, src, {"kind": _ACK, "cum": flow.ledger.cum_ack}, b"")

    def _delayed_ack(self, src: int, flow: _FlowRx) -> Generator:
        try:
            yield self.env.timeout(self.params.lapi_ack_delay_us)
            if flow.since_ack > 0:
                yield from self._send_ack("user", src, flow)
        finally:
            flow.ack_timer_alive = False

    def add_dispatch_charge(self, extra_us: float) -> None:
        """Request extra dispatcher CPU time on behalf of a (synchronous)
        header handler; applied right after the handler returns."""
        self._pending_charge_us += extra_us

    # ============================================== internal handlers
    def _check_not_in_header_handler(self, fn: str) -> None:
        if self._in_hdr_handler:
            raise LapiError(f"{fn} may not be called from a header handler (deadlock)")

    def _register_internal_handlers(self) -> None:
        self.register_handler("_lapi_put", self._hh_put, inline_always=True)
        self.register_handler("_lapi_get_req", self._hh_get_req, inline_always=True)
        self.register_handler("_lapi_get_rep", self._hh_get_rep, inline_always=True)
        self.register_handler("_lapi_rmw_req", self._hh_rmw_req, inline_always=True)
        self.register_handler("_lapi_rmw_rep", self._hh_rmw_rep, inline_always=True)
        self.register_handler("_lapi_cmpl", self._hh_cmpl, inline_always=True)
        self.register_handler("_lapi_gfence", self._hh_gfence, inline_always=True)
        self.register_handler("_lapi_null", self._hh_null, inline_always=True)

    def _hh_null(self, lapi, src, uhdr, mlen):
        return NullTarget(), None, None

    def _hh_put(self, lapi, src, uhdr, mlen):
        buf = self.resolve_address(uhdr["name"])
        if hasattr(buf, "rma_epoch_dirty"):
            # ByteTarget writes through a memoryview, bypassing the
            # window buffer's __setitem__ snapshot invalidation
            buf.rma_epoch_dirty()
        return ByteTarget(buf, base=uhdr["off"]), None, None

    def _hh_get_req(self, lapi, src, uhdr, mlen):
        def reply(lapi_, thread, data):
            obj = self.resolve_address(data["name"])
            chunk = None
            if hasattr(obj, "rma_exposure_view"):
                # RMA window immutable for the current exposure epoch: the
                # reply rides a read-only view of the epoch snapshot (taken
                # once per epoch, amortised across every get of the epoch)
                # straight through the zero-copy amsend path.
                chunk = obj.rma_exposure_view(data["off"], data["n"])
                if chunk is not None:
                    self.metrics.counter("lapi.get_epoch_view").incr()
            if chunk is None:
                # the documented copy of the plain lapi.get path: the
                # published buffer may mutate before the reply's packets
                # go out, so a view cannot be sent directly — but the view
                # slice itself is free
                buf = memoryview(obj)
                chunk = bytes(buf[data["off"] : data["off"] + data["n"]])
                self.metrics.counter("lapi.get_reply_copy").incr()
            yield from lapi_.amsend(
                thread, data["origin"], "_lapi_get_rep", {"gid": data["gid"]}, chunk
            )

        return NullTarget(), reply, dict(uhdr)

    def _hh_get_rep(self, lapi, src, uhdr, mlen):
        view, cntr = self._pending_get.pop(uhdr["gid"])

        def done(lapi_, thread, data):
            if cntr is not None:
                cntr.incr()
            yield self.env.timeout(0)

        return ByteTarget(view), done, None

    def _hh_rmw_req(self, lapi, src, uhdr, mlen):
        # The whole read-modify-write runs synchronously inside this
        # header handler: no other handler (and no local LAPI call) can
        # interleave, which is what makes concurrent Rmw from several
        # origins to one word atomic.
        var = self.resolve_address(uhdr["name"])
        toff = uhdr.get("toff")
        if toff is not None:
            old = var.read_word(toff)
        else:
            old = var.value
        op = uhdr["op"]
        new = old
        if op == "FETCH_AND_ADD":
            new = old + uhdr["val"]
        elif op == "FETCH_AND_OR":
            new = old | uhdr["val"]
        elif op == "SWAP":
            new = uhdr["val"]
        elif op == "COMPARE_AND_SWAP":
            if old == uhdr["cmp"]:
                new = uhdr["val"]
        if toff is not None:
            var.write_word(toff, new)
        else:
            var.value = new

        def reply(lapi_, thread, data):
            yield from lapi_.amsend(
                thread,
                data["origin"],
                "_lapi_rmw_rep",
                {"rid": data["rid"], "prev": data["prev"]},
            )

        return NullTarget(), reply, {"origin": uhdr["origin"], "rid": uhdr["rid"], "prev": old}

    def _hh_rmw_rep(self, lapi, src, uhdr, mlen):
        st = self._pending_rmw[uhdr["rid"]]
        st["done"] = True
        st["prev"] = uhdr["prev"]
        if st["cntr"] is not None:
            st["cntr"].incr()
        return NullTarget(), None, None

    def _hh_cmpl(self, lapi, src, uhdr, mlen):
        cntr = self._pending_cmpl.pop((src, uhdr["msg"]), None)
        if cntr is not None:
            cntr.incr()
        return NullTarget(), None, None

    def _hh_gfence(self, lapi, src, uhdr, mlen):
        self._gfence_seen.setdefault(uhdr["epoch"], set()).add(uhdr["origin"])
        return NullTarget(), None, None
