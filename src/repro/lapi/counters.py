"""LAPI counters: the library's completion-signalling primitive."""

from __future__ import annotations

from repro.sim import Environment, Event

__all__ = ["Counter"]


class Counter:
    """An integer event counter (LAPI's org/tgt/cmpl counter object).

    ``LAPI_Waitcntr`` semantics live in :meth:`repro.lapi.api.Lapi.waitcntr`
    (wait until ``value >= val`` then subtract ``val``); the counter
    itself just supports increment/set/read plus change notification.
    """

    __slots__ = ("env", "name", "_value", "_waiters", "_subscribers")

    def __init__(self, env: Environment, name: str = "cntr", initial: int = 0):
        self.env = env
        self.name = name
        self._value = initial
        self._waiters: list[Event] = []
        self._subscribers: list = []

    @property
    def value(self) -> int:
        return self._value

    def incr(self, by: int = 1) -> None:
        self._value += by
        self._notify()

    def set(self, value: int) -> None:
        self._value = value
        self._notify()

    def sub(self, by: int) -> None:
        if by > self._value:
            raise ValueError(f"{self.name}: cannot subtract {by} from {self._value}")
        self._value -= by
        self._notify()

    def changed(self) -> Event:
        """One-shot event fired at the counter's next state change."""
        ev = self.env.event()
        self._waiters.append(ev)
        return ev

    def subscribe(self, fn) -> None:
        """Register a persistent synchronous callback on every change."""
        self._subscribers.append(fn)

    def _notify(self) -> None:
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            if not ev.triggered:
                ev.succeed(self._value)
        for fn in self._subscribers:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self._value}>"
