"""LAPI — the Low-level Application Programming Interface.

A faithful model of IBM's one-sided, reliable, active-message transport
for the SP switch (Shah et al., IPPS 1998), including the pieces this
paper's MPI port depends on:

* ``LAPI_Amsend`` with **header handlers** (run on first-packet arrival,
  must return the assembly buffer, must not call LAPI) and **completion
  handlers** (run after the last byte lands — on a separate thread in
  stock LAPI, in dispatcher context in the paper's *Enhanced* LAPI),
* the three completion counters (origin, target, completion),
* ``LAPI_Put``/``LAPI_Get``/``LAPI_Rmw`` one-sided operations,
* ``LAPI_Waitcntr`` with polling progress, fences, and environment
  query/set including interrupt-mode control,
* reliable delivery (windows, cumulative acks, retransmission) that
  tolerates — and does not reorder — the fabric's out-of-order packets:
  payload is assembled by offset directly into the target buffer.
"""

from repro.lapi.api import Lapi, LapiError
from repro.lapi.counters import Counter

__all__ = ["Counter", "Lapi", "LapiError"]
