"""Target-buffer abstractions returned by header handlers.

A header handler must hand LAPI a place to assemble the message.  The
paper's point is that this can be the *user's* receive buffer (zero
intermediate copy) or an early-arrival buffer — either way LAPI writes
packets at their offset, tolerating out-of-order arrival.
"""

from __future__ import annotations

__all__ = ["ByteTarget", "NullTarget"]


class ByteTarget:
    """Assemble into a writable bytes-like object at a base offset.

    ``write`` accepts any bytes-like chunk — including the read-only
    ``memoryview`` slices the zero-copy transmit path produces — and
    moves it buffer-to-buffer into the target.
    """

    __slots__ = ("buf", "base")

    def __init__(self, buf, base: int = 0):
        self.buf = memoryview(buf)
        if self.buf.readonly:
            raise ValueError("target buffer must be writable")
        self.base = base

    def write(self, off: int, data) -> None:
        if not data:
            return
        start = self.base + off
        self.buf[start : start + len(data)] = data


class NullTarget:
    """Discard payload (header-only/control messages)."""

    __slots__ = ()

    def write(self, off: int, data: bytes) -> None:
        pass
