"""Alternative collective algorithms (extension study).

The MPI layer decomposes collectives into point-to-point messages
(paper §2); *which* decomposition matters because the two stacks price
messages differently (native favours tiny messages, MPI-LAPI mid/large
ones).  This module provides drop-in alternatives to the defaults in
:mod:`repro.mpi.collectives`:

- ``allreduce``: ``reduce+bcast`` (default) vs **recursive doubling**
  (log p rounds of pairwise exchanges, each carrying the full vector)
  vs **ring** (2(p−1) rounds of 1/p-sized chunks — bandwidth-optimal).
- ``bcast``: **binomial** (default) vs **scatter+allgather**
  (van de Geijn), better for large payloads.
- ``allgather``: **ring** (default) vs **recursive doubling**
  (p a power of two; fewer rounds, bigger messages).

Select per communicator::

    comm.coll_algorithms["allreduce"] = "recursive_doubling"
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.mpi.collectives import _op, _recv, _send, _sendrecv
from repro.mpi.collectives import allgather as _allgather_ring
from repro.mpi.collectives import bcast as _bcast_binomial
from repro.mpi.collectives import reduce as _reduce_binomial

__all__ = [
    "ALLGATHER_ALGORITHMS",
    "ALLREDUCE_ALGORITHMS",
    "BCAST_ALGORITHMS",
    "allgather_recursive_doubling",
    "allreduce_recursive_doubling",
    "allreduce_reduce_bcast",
    "allreduce_ring",
    "bcast_scatter_allgather",
]


def _is_pow2(n: int) -> bool:
    return n & (n - 1) == 0


# ------------------------------------------------------------ allreduce


def allreduce_reduce_bcast(comm, sendbuf, recvbuf, op: str = "sum") -> Generator:
    """The default composition: binomial reduce to 0 then broadcast."""
    out = np.asarray(recvbuf)
    yield from _reduce_binomial(comm, sendbuf, out if comm.rank == 0 else None,
                                op, root=0)
    if comm.rank != 0:
        np.copyto(out, np.asarray(sendbuf))
    yield from _bcast_binomial(comm, out, root=0)


def allreduce_recursive_doubling(comm, sendbuf, recvbuf, op: str = "sum") -> Generator:
    """log2(p) pairwise exchange rounds; requires a power-of-two size."""
    size = comm.size
    if not _is_pow2(size):
        raise ValueError("recursive doubling needs a power-of-two communicator")
    ufunc = _op(op)
    acc = np.asarray(sendbuf).copy()
    tmp = np.empty_like(acc)
    mask = 1
    while mask < size:
        partner = comm.rank ^ mask
        yield from _sendrecv(comm, acc, partner, tmp, partner, tag=9500 + mask)
        acc = ufunc(acc, tmp)
        mask <<= 1
    np.copyto(np.asarray(recvbuf), acc)


def allreduce_ring(comm, sendbuf, recvbuf, op: str = "sum") -> Generator:
    """Bandwidth-optimal ring: reduce-scatter pass then allgather pass.

    The vector is split into p chunks; each of the 2(p−1) steps moves
    one chunk to the right neighbour.
    """
    size = comm.size
    ufunc = _op(op)
    arr = np.asarray(sendbuf).astype(np.asarray(recvbuf).dtype, copy=True)
    out = np.asarray(recvbuf)
    if size == 1:
        np.copyto(out, arr)
        return
    flat = arr.reshape(-1)
    n = flat.shape[0]
    bounds = [n * i // size for i in range(size + 1)]

    def chunk(i):
        i %= size
        return flat[bounds[i] : bounds[i + 1]]

    right = (comm.rank + 1) % size
    left = (comm.rank - 1) % size
    # reduce-scatter: after p-1 steps, chunk (rank+1) holds the full sum
    for step in range(size - 1):
        send_idx = comm.rank - step
        recv_idx = comm.rank - step - 1
        inbox = np.empty_like(chunk(recv_idx))
        yield from _sendrecv(comm, chunk(send_idx).copy(), right, inbox, left,
                             tag=9600 + step)
        np.copyto(chunk(recv_idx), ufunc(chunk(recv_idx), inbox))
    # allgather: circulate the finished chunks
    for step in range(size - 1):
        send_idx = comm.rank - step + 1
        recv_idx = comm.rank - step
        inbox = np.empty_like(chunk(recv_idx))
        yield from _sendrecv(comm, chunk(send_idx).copy(), right, inbox, left,
                             tag=9700 + step)
        np.copyto(chunk(recv_idx), inbox)
    np.copyto(out.reshape(-1), flat)


# ---------------------------------------------------------------- bcast


def bcast_scatter_allgather(comm, buf, root: int = 0) -> Generator:
    """van de Geijn broadcast: scatter chunks from the root, then ring-
    allgather them — two bandwidth-efficient phases for large payloads."""
    size = comm.size
    if size == 1:
        return
    arr = np.asarray(buf).reshape(-1)
    view = arr.view(np.uint8)
    n = view.shape[0]
    bounds = [n * i // size for i in range(size + 1)]

    # scatter phase (linear from root; chunk i -> rank i)
    for r in range(size):
        if r == root:
            continue
        lo, hi = bounds[r], bounds[r + 1]
        if comm.rank == root:
            yield from _send(comm, view[lo:hi].copy(), r, tag=9800 + r)
        elif comm.rank == r:
            inbox = np.empty(hi - lo, dtype=np.uint8)
            yield from _recv(comm, inbox, root, tag=9800 + r)
            view[lo:hi] = inbox

    # ring allgather of the chunks
    right = (comm.rank + 1) % size
    left = (comm.rank - 1) % size
    for step in range(size - 1):
        send_idx = (comm.rank - step) % size
        recv_idx = (comm.rank - step - 1) % size
        slo, shi = bounds[send_idx], bounds[send_idx + 1]
        rlo, rhi = bounds[recv_idx], bounds[recv_idx + 1]
        inbox = np.empty(rhi - rlo, dtype=np.uint8)
        yield from _sendrecv(comm, view[slo:shi].copy(), right, inbox, left,
                             tag=9900 + step)
        view[rlo:rhi] = inbox


# ------------------------------------------------------------ allgather


def allgather_recursive_doubling(comm, sendbuf, recvbuf) -> Generator:
    """log2(p) rounds, doubling the exchanged block each time."""
    size = comm.size
    if not _is_pow2(size):
        raise ValueError("recursive doubling needs a power-of-two communicator")
    out = np.asarray(recvbuf)
    np.copyto(out[comm.rank], np.asarray(sendbuf))
    mask = 1
    while mask < size:
        partner = comm.rank ^ mask
        base_mine = comm.rank & ~(mask - 1)
        base_theirs = partner & ~(mask - 1)
        block = out[base_mine : base_mine + mask].copy()
        inbox = np.empty_like(block)
        yield from _sendrecv(comm, block, partner, inbox, partner, tag=9950 + mask)
        out[base_theirs : base_theirs + mask] = inbox.reshape(
            out[base_theirs : base_theirs + mask].shape
        )
        mask <<= 1


ALLREDUCE_ALGORITHMS = {
    "reduce_bcast": allreduce_reduce_bcast,
    "recursive_doubling": allreduce_recursive_doubling,
    "ring": allreduce_ring,
}

BCAST_ALGORITHMS = {
    "binomial": _bcast_binomial,
    "scatter_allgather": bcast_scatter_allgather,
}

ALLGATHER_ALGORITHMS = {
    "ring": _allgather_ring,
    "recursive_doubling": allgather_recursive_doubling,
}
