"""Cartesian process topologies (MPI_Cart_* family).

Grid-structured codes (the NAS BT/SP/MG family) address neighbours by
grid coordinates; this module provides the classic helpers over any
:class:`~repro.mpi.api.Communicator`:

- :func:`dims_create` — factor a process count into a balanced grid
  (MPI_Dims_create),
- :class:`CartComm` — a communicator wrapper with ``coords``,
  ``cart_rank``, ``cart_shift`` and neighbour ``sendrecv``.

Construction is deterministic (row-major rank order), so no
communication is needed — matching how MPI_Cart_create with
``reorder=false`` behaves.
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence

import numpy as np

__all__ = ["CartComm", "dims_create"]


def dims_create(nnodes: int, ndims: int) -> list[int]:
    """Factor ``nnodes`` into ``ndims`` balanced dimensions (descending)."""
    if nnodes < 1 or ndims < 1:
        raise ValueError("nnodes and ndims must be positive")
    dims = [1] * ndims
    remaining = nnodes
    # repeatedly peel the smallest prime factor onto the smallest dim
    factors = []
    n = remaining
    f = 2
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    for f in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= f
    return sorted(dims, reverse=True)


class CartComm:
    """A Cartesian view over a communicator.

    ``periods[d]`` selects wraparound in dimension ``d``; shifts off a
    non-periodic edge return ``None`` partners (like MPI_PROC_NULL).
    """

    def __init__(self, comm, dims: Sequence[int],
                 periods: Optional[Sequence[bool]] = None):
        self.comm = comm
        self.dims = list(dims)
        if int(np.prod(self.dims)) != comm.size:
            raise ValueError(
                f"grid {self.dims} needs {int(np.prod(self.dims))} ranks, "
                f"communicator has {comm.size}"
            )
        self.periods = list(periods) if periods is not None else [False] * len(dims)
        if len(self.periods) != len(self.dims):
            raise ValueError("periods must match dims")
        self.ndims = len(self.dims)

    # ------------------------------------------------------------ maths
    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    @property
    def coords(self) -> tuple[int, ...]:
        return self.rank_to_coords(self.comm.rank)

    def rank_to_coords(self, rank: int) -> tuple[int, ...]:
        """Row-major rank -> coordinates."""
        if not (0 <= rank < self.size):
            raise ValueError(f"rank {rank} out of range")
        coords = []
        for d in reversed(self.dims):
            coords.append(rank % d)
            rank //= d
        return tuple(reversed(coords))

    def cart_rank(self, coords: Sequence[int]) -> int:
        """Coordinates -> rank, honouring periodicity."""
        if len(coords) != self.ndims:
            raise ValueError("coordinate count mismatch")
        rank = 0
        for d, (c, dim, per) in enumerate(zip(coords, self.dims, self.periods)):
            if not (0 <= c < dim):
                if not per:
                    raise ValueError(f"coordinate {c} outside non-periodic dim {d}")
                c %= dim
            rank = rank * dim + c
        return rank

    def cart_shift(self, dimension: int, displacement: int = 1):
        """MPI_Cart_shift: (source, dest) ranks, ``None`` past an edge."""
        if not (0 <= dimension < self.ndims):
            raise ValueError("bad dimension")
        me = list(self.coords)

        def neighbour(disp):
            c = list(me)
            c[dimension] += disp
            if not (0 <= c[dimension] < self.dims[dimension]):
                if not self.periods[dimension]:
                    return None
                c[dimension] %= self.dims[dimension]
            return self.cart_rank(c)

        return neighbour(-displacement), neighbour(+displacement)

    # ----------------------------------------------------- communication
    def neighbour_sendrecv(self, dimension: int, displacement: int,
                           sendbuf, recvbuf, tag: int = 0) -> Generator:
        """Shift data along a dimension: send toward ``+displacement``,
        receive from the opposite side.  Edges without partners skip the
        corresponding half (MPI_PROC_NULL semantics)."""
        source, dest = self.cart_shift(dimension, displacement)
        if source is not None and dest is not None:
            yield from self.comm.sendrecv(sendbuf, dest, recvbuf, source,
                                          tag, tag)
        elif dest is not None:
            yield from self.comm.send(sendbuf, dest, tag)
        elif source is not None:
            yield from self.comm.recv(recvbuf, source, tag)

    def sub(self, keep: Sequence[bool]) -> Generator:
        """MPI_Cart_sub: split into lower-dimensional grids (collective)."""
        if len(keep) != self.ndims:
            raise ValueError("keep must match dims")
        me = self.coords
        color = 0
        for d in range(self.ndims):
            if not keep[d]:
                color = color * self.dims[d] + me[d]
        key = 0
        for d in range(self.ndims):
            if keep[d]:
                key = key * self.dims[d] + me[d]
        sub_comm = yield from self.comm.split_collective(color, key)
        sub_dims = [self.dims[d] for d in range(self.ndims) if keep[d]]
        sub_periods = [self.periods[d] for d in range(self.ndims) if keep[d]]
        return CartComm(sub_comm, sub_dims, sub_periods)
