"""MPI communication modes and their internal-protocol translation.

This is the paper's Table 2:

    =============  =========================================
    MPI mode       internal protocol
    =============  =========================================
    Standard       eager if size <= eager limit, else rendezvous
    Ready          eager
    Synchronous    rendezvous
    Buffered       eager if size <= eager limit, else rendezvous
    =============  =========================================
"""

from __future__ import annotations

__all__ = [
    "BUFFERED",
    "EAGER",
    "READY",
    "RENDEZVOUS",
    "STANDARD",
    "SYNCHRONOUS",
    "select_protocol",
    "MODES",
]

STANDARD = "standard"
SYNCHRONOUS = "synchronous"
READY = "ready"
BUFFERED = "buffered"
MODES = (STANDARD, SYNCHRONOUS, READY, BUFFERED)

EAGER = "eager"
RENDEZVOUS = "rendezvous"


def select_protocol(mode: str, size: int, eager_limit: int) -> str:
    """Translate an MPI communication mode to the internal protocol."""
    if mode == STANDARD or mode == BUFFERED:
        return EAGER if size <= eager_limit else RENDEZVOUS
    if mode == READY:
        return EAGER
    if mode == SYNCHRONOUS:
        return RENDEZVOUS
    raise ValueError(f"unknown MPI communication mode {mode!r}")
