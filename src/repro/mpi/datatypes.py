"""Buffer handling: anything bytes-like or a NumPy array works.

The paper's MPI-LAPI left derived datatypes as future work ("We plan to
implement MPI data types"); this reproduction supports contiguous
buffers in the core API and implements the future-work derived types
(vector/indexed) in :mod:`repro.mpi.derived`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["as_bytes", "as_writable", "nbytes_of"]


def as_bytes(obj: Any) -> bytes:
    """Snapshot a send buffer as immutable bytes."""
    if isinstance(obj, bytes):
        return obj
    if isinstance(obj, (bytearray, memoryview)):
        return bytes(obj)
    if isinstance(obj, np.ndarray):
        if not obj.flags.c_contiguous:
            obj = np.ascontiguousarray(obj)
        return obj.tobytes()
    if isinstance(obj, (int, float, complex, np.generic)):
        return np.asarray(obj).tobytes()
    raise TypeError(f"cannot use {type(obj).__name__} as a message buffer")


def as_writable(obj: Any) -> memoryview:
    """View a receive buffer as a writable flat byte view."""
    if isinstance(obj, np.ndarray):
        if not obj.flags.c_contiguous:
            raise ValueError("receive arrays must be C-contiguous")
        view = memoryview(obj).cast("B")
    elif isinstance(obj, (bytearray, memoryview)):
        view = memoryview(obj).cast("B")
    else:
        raise TypeError(f"cannot receive into {type(obj).__name__}")
    if view.readonly:
        raise ValueError("receive buffer is read-only")
    return view


def nbytes_of(obj: Any) -> int:
    """Byte length of a buffer-like object."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(memoryview(obj).cast("B"))
    raise TypeError(f"cannot size {type(obj).__name__}")
