"""Request and Status objects for nonblocking operations."""

from __future__ import annotations

from typing import Callable, Generator, Optional

from repro.sim import Environment, Event

__all__ = ["Request", "Status"]


class Status:
    """Receive status: who sent it, which tag, how many bytes."""

    __slots__ = ("source", "tag", "count")

    def __init__(self, source: int = -1, tag: int = -1, count: int = 0):
        self.source = source
        self.tag = tag
        self.count = count

    def get_count(self, itemsize: int = 1) -> int:
        """Number of received elements of the given item size."""
        if itemsize <= 0:
            raise ValueError("itemsize must be positive")
        return self.count // itemsize

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Status(source={self.source}, tag={self.tag}, count={self.count})"


class Request:
    """Handle for a nonblocking send or receive.

    Lifecycle: *pending* → (*needs-finalize*) → *done*.  The optional
    finalize step is how deferred work (e.g. the early-arrival-buffer →
    user-buffer copy) is charged to the thread that calls WAIT/TEST,
    matching where the real MPCI performs it.
    """

    __slots__ = ("env", "kind", "done", "status", "cancelled", "_waiters",
                 "_finalizer", "ctx", "user_ctx")

    def __init__(self, env: Environment, kind: str):
        self.env = env
        self.kind = kind  # "send" | "recv"
        self.done = False
        self.cancelled = False
        self.status = Status()
        self._waiters: list[Event] = []
        self._finalizer: Optional[Callable[[str], Generator]] = None
        #: backend-private state (e.g. the receive buffer view)
        self.ctx = None
        #: API-layer state (e.g. a pending derived-datatype unpack)
        self.user_ctx = None

    @classmethod
    def on_counter(cls, env: Environment, kind: str, cntr,
                   threshold: int = 1) -> "Request":
        """Request completed by a :class:`~repro.lapi.counters.Counter`
        reaching ``threshold`` — how RMA request-ops (MPI_Rput/Rget) ride
        LAPI completion counters without a matching engine."""
        req = cls(env, kind)

        def _check(c):
            if not req.done and c.value >= threshold:
                req.complete(count=0)

        cntr.subscribe(_check)
        _check(cntr)
        return req

    # ------------------------------------------------------------------
    def complete(self, source: int = -1, tag: int = -1, count: int = 0) -> None:
        """Mark fully complete and wake waiters."""
        if self.done:
            raise RuntimeError("request completed twice")
        self.done = True
        self.status.source = source
        self.status.tag = tag
        self.status.count = count
        self._notify()

    def set_finalizer(self, fn: Callable[[str], Generator]) -> None:
        """Install deferred completion work; wakes waiters so a blocked
        WAIT runs it."""
        self._finalizer = fn
        self._notify()

    @property
    def needs_finalize(self) -> bool:
        return self._finalizer is not None and not self.done

    def run_finalizer(self, thread: str) -> Generator:
        """Execute and clear the deferred work (must end by completing
        the request)."""
        fn, self._finalizer = self._finalizer, None
        yield from fn(thread)
        if not self.done:
            raise RuntimeError("finalizer did not complete the request")

    # ------------------------------------------------------------------
    def changed(self) -> Event:
        """One-shot event fired at the next state change."""
        ev = self.env.event()
        if self.done or self.needs_finalize:
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def _notify(self) -> None:
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            if not ev.triggered:
                ev.succeed()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else ("finalize" if self.needs_finalize else "pending")
        return f"<Request {self.kind} {state}>"
