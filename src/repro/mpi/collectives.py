"""Collective operations, decomposed into point-to-point messages.

The paper's §2: "the MPI layer ... breaks down all collective
communication calls into a series of point-to-point message passing
calls in MPCI".  These are the classic algorithms of that era: binomial
trees for bcast/reduce, dissemination barrier, ring allgather, pairwise
alltoall, linear gather/scatter/scan.

All collective traffic runs in the communicator's dedicated collective
context, so it can never match user receives.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

import numpy as np

from repro.mpi.datatypes import as_bytes, as_writable
from repro.mpi.protocol import STANDARD

__all__ = [
    "allgather",
    "allreduce",
    "alltoall",
    "alltoallv",
    "barrier",
    "bcast",
    "gather",
    "gatherv",
    "reduce",
    "reduce_scatter",
    "scan",
    "scatter",
    "scatterv",
    "split",
    "REDUCE_OPS",
]

REDUCE_OPS = {
    "sum": np.add,
    "prod": np.multiply,
    "max": np.maximum,
    "min": np.minimum,
    "band": np.bitwise_and,
    "bor": np.bitwise_or,
    "bxor": np.bitwise_xor,
    "land": np.logical_and,
    "lor": np.logical_or,
}


def _op(name: str):
    try:
        return REDUCE_OPS[name]
    except KeyError:
        raise ValueError(
            f"unknown reduction op {name!r}; choose from {sorted(REDUCE_OPS)}"
        ) from None


# ------------------------------------------------------------ primitives


def _send(comm, buf: Any, dest: int, tag: int) -> Generator:
    """Blocking standard-mode send in the collective context."""
    data = as_bytes(buf)
    req = yield from comm.backend.isend(
        "user", data, comm._task_of(dest), comm.rank, tag, comm.coll_context,
        STANDARD, blocking=True,
    )
    yield from comm.backend.wait("user", req)


def _recv(comm, buf: Any, source: int, tag: int) -> Generator:
    """Blocking receive in the collective context."""
    view = as_writable(buf)
    req = yield from comm.backend.irecv("user", view, source, tag, comm.coll_context)
    return (yield from comm.backend.wait("user", req))


def _sendrecv(comm, sendbuf: Any, dest: int, recvbuf: Any, source: int,
              tag: int) -> Generator:
    view = as_writable(recvbuf)
    rreq = yield from comm.backend.irecv("user", view, source, tag, comm.coll_context)
    data = as_bytes(sendbuf)
    sreq = yield from comm.backend.isend(
        "user", data, comm._task_of(dest), comm.rank, tag, comm.coll_context,
        STANDARD, blocking=False,
    )
    yield from comm.backend.wait("user", sreq)
    yield from comm.backend.wait("user", rreq)


# ------------------------------------------------------------ collectives


def barrier(comm) -> Generator:
    """Dissemination barrier: ceil(log2(p)) rounds."""
    size = comm.size
    if size == 1:
        return
    token = np.zeros(1, dtype=np.uint8)
    sink = np.zeros(1, dtype=np.uint8)
    k = 0
    dist = 1
    while dist < size:
        dst = (comm.rank + dist) % size
        src = (comm.rank - dist) % size
        yield from _sendrecv(comm, token, dst, sink, src, tag=1000 + k)
        dist <<= 1
        k += 1


def bcast(comm, buf: Any, root: int = 0) -> Generator:
    """Binomial-tree broadcast; every rank passes the same-sized buffer."""
    size = comm.size
    if size == 1:
        return
    vrank = (comm.rank - root) % size
    mask = 1
    while mask < size:
        if vrank < mask:
            partner = vrank + mask
            if partner < size:
                yield from _send(comm, buf, (partner + root) % size, tag=2000 + mask)
        elif vrank < 2 * mask:
            partner = vrank - mask
            yield from _recv(comm, buf, (partner + root) % size, tag=2000 + mask)
        mask <<= 1


def reduce(comm, sendbuf: Any, recvbuf: Optional[Any], op: str = "sum",
           root: int = 0) -> Generator:
    """Binomial-tree reduction (commutative ops)."""
    ufunc = _op(op)
    size = comm.size
    arr = np.asarray(sendbuf)
    acc = arr.copy()
    if size == 1:
        if recvbuf is not None:
            np.copyto(np.asarray(recvbuf), acc)
        return
    vrank = (comm.rank - root) % size
    tmp = np.empty_like(acc)
    mask = 1
    while mask < size:
        if vrank & mask:
            dst = ((vrank - mask) + root) % size
            yield from _send(comm, acc, dst, tag=3000 + mask)
            break
        partner = vrank + mask
        if partner < size:
            src = (partner + root) % size
            yield from _recv(comm, tmp, src, tag=3000 + mask)
            acc = ufunc(acc, tmp)
        mask <<= 1
    if comm.rank == root and recvbuf is not None:
        np.copyto(np.asarray(recvbuf), acc)


def allreduce(comm, sendbuf: Any, recvbuf: Any, op: str = "sum") -> Generator:
    """Reduce-to-0 then broadcast (the MPCI-era composition)."""
    out = np.asarray(recvbuf)
    yield from reduce(comm, sendbuf, out if comm.rank == 0 else None, op, root=0)
    if comm.rank != 0:
        np.copyto(out, np.asarray(sendbuf))  # shape/dtype priming
    yield from bcast(comm, out, root=0)


def gather(comm, sendbuf: Any, recvbuf: Optional[Any], root: int = 0) -> Generator:
    """Linear gather: recvbuf's leading dimension indexes ranks."""
    size = comm.size
    arr = np.asarray(sendbuf)
    if comm.rank == root:
        out = np.asarray(recvbuf)
        if out.shape[0] != size:
            raise ValueError("gather recvbuf leading dimension must equal comm size")
        np.copyto(out[root], arr)
        for r in range(size):
            if r != root:
                yield from _recv(comm, out[r], r, tag=4000 + r)
    else:
        yield from _send(comm, arr, root, tag=4000 + comm.rank)


def scatter(comm, sendbuf: Optional[Any], recvbuf: Any, root: int = 0) -> Generator:
    """Linear scatter: sendbuf's leading dimension indexes ranks."""
    size = comm.size
    out = np.asarray(recvbuf)
    if comm.rank == root:
        src = np.asarray(sendbuf)
        if src.shape[0] != size:
            raise ValueError("scatter sendbuf leading dimension must equal comm size")
        np.copyto(out, src[root])
        for r in range(size):
            if r != root:
                yield from _send(comm, src[r], r, tag=5000 + r)
    else:
        yield from _recv(comm, out, root, tag=5000 + comm.rank)


def allgather(comm, sendbuf: Any, recvbuf: Any) -> Generator:
    """Ring allgather: p-1 steps, each forwarding the previous block."""
    size = comm.size
    arr = np.asarray(sendbuf)
    out = np.asarray(recvbuf)
    if out.shape[0] != size:
        raise ValueError("allgather recvbuf leading dimension must equal comm size")
    np.copyto(out[comm.rank], arr)
    right = (comm.rank + 1) % size
    left = (comm.rank - 1) % size
    for step in range(size - 1):
        send_idx = (comm.rank - step) % size
        recv_idx = (comm.rank - step - 1) % size
        yield from _sendrecv(comm, out[send_idx], right, out[recv_idx], left,
                             tag=6000 + step)


def alltoall(comm, sendbuf: Any, recvbuf: Any) -> Generator:
    """Pairwise-exchange alltoall: leading dimension indexes peers."""
    size = comm.size
    src_arr = np.asarray(sendbuf)
    out = np.asarray(recvbuf)
    if src_arr.shape[0] != size or out.shape[0] != size:
        raise ValueError("alltoall buffers' leading dimension must equal comm size")
    np.copyto(out[comm.rank], src_arr[comm.rank])
    for step in range(1, size):
        dst = (comm.rank + step) % size
        src = (comm.rank - step) % size
        yield from _sendrecv(comm, src_arr[dst], dst, out[src], src, tag=7000 + step)


def alltoallv(comm, sendbuf: Any, sendcounts: Sequence[int], recvbuf: Any,
              recvcounts: Sequence[int]) -> Generator:
    """Byte-count alltoallv over flat byte buffers."""
    size = comm.size
    if len(sendcounts) != size or len(recvcounts) != size:
        raise ValueError("count arrays must have one entry per rank")
    sview = memoryview(as_bytes(sendbuf))
    rview = as_writable(recvbuf)
    sdisp = np.concatenate([[0], np.cumsum(sendcounts)]).astype(int)
    rdisp = np.concatenate([[0], np.cumsum(recvcounts)]).astype(int)
    if sdisp[-1] > len(sview) or rdisp[-1] > len(rview):
        raise ValueError("counts exceed buffer sizes")
    # local block
    rview[rdisp[comm.rank] : rdisp[comm.rank + 1]] = sview[
        sdisp[comm.rank] : sdisp[comm.rank + 1]
    ]
    for step in range(1, size):
        dst = (comm.rank + step) % size
        src = (comm.rank - step) % size
        send_chunk = bytes(sview[sdisp[dst] : sdisp[dst + 1]])
        recv_chunk = bytearray(recvcounts[src])
        yield from _sendrecv(comm, send_chunk, dst, recv_chunk, src, tag=8000 + step)
        rview[rdisp[src] : rdisp[src + 1]] = recv_chunk


def gatherv(comm, sendbuf: Any, recvbuf: Optional[Any],
            recvcounts: Optional[Sequence[int]], root: int = 0) -> Generator:
    """MPI_Gatherv over flat byte buffers: rank r contributes
    ``recvcounts[r]`` bytes, concatenated in rank order at the root."""
    size = comm.size
    data = as_bytes(sendbuf)
    if comm.rank == root:
        if recvcounts is None or len(recvcounts) != size:
            raise ValueError("root needs one recvcount per rank")
        out = as_writable(recvbuf)
        disp = np.concatenate([[0], np.cumsum(recvcounts)]).astype(int)
        if disp[-1] > len(out):
            raise ValueError("recvcounts exceed recvbuf")
        if len(data) != recvcounts[root]:
            raise ValueError("root's own contribution has the wrong size")
        out[disp[root] : disp[root + 1]] = data
        for r in range(size):
            if r == root:
                continue
            chunk = bytearray(recvcounts[r])
            yield from _recv(comm, chunk, r, tag=8500 + r)
            out[disp[r] : disp[r + 1]] = chunk
    else:
        yield from _send(comm, data, root, tag=8500 + comm.rank)


def scatterv(comm, sendbuf: Optional[Any], sendcounts: Optional[Sequence[int]],
             recvbuf: Any, root: int = 0) -> Generator:
    """MPI_Scatterv over flat byte buffers."""
    size = comm.size
    out = as_writable(recvbuf)
    if comm.rank == root:
        if sendcounts is None or len(sendcounts) != size:
            raise ValueError("root needs one sendcount per rank")
        src = memoryview(as_bytes(sendbuf))
        disp = np.concatenate([[0], np.cumsum(sendcounts)]).astype(int)
        if disp[-1] > len(src):
            raise ValueError("sendcounts exceed sendbuf")
        out[: sendcounts[root]] = src[disp[root] : disp[root + 1]]
        for r in range(size):
            if r == root:
                continue
            yield from _send(comm, bytes(src[disp[r] : disp[r + 1]]), r,
                             tag=8600 + r)
    else:
        chunk = bytearray(len(out))
        status = yield from _recv(comm, chunk, root, tag=8600 + comm.rank)
        out[: status.count] = chunk[: status.count]


def reduce_scatter(comm, sendbuf: Any, recvbuf: Any, op: str = "sum") -> Generator:
    """MPI_Reduce_scatter_block: reduce then scatter equal blocks.

    ``sendbuf`` has leading dimension ``size``; rank r receives the
    reduction of everyone's block r in ``recvbuf``.
    """
    size = comm.size
    src = np.asarray(sendbuf)
    out = np.asarray(recvbuf)
    if src.shape[0] != size:
        raise ValueError("reduce_scatter sendbuf leading dim must equal size")
    total = np.empty_like(src)
    yield from reduce(comm, src, total if comm.rank == 0 else None, op, root=0)
    yield from scatter(comm, total if comm.rank == 0 else None, out, root=0)


def scan(comm, sendbuf: Any, recvbuf: Any, op: str = "sum") -> Generator:
    """Inclusive prefix reduction, linear pipeline."""
    ufunc = _op(op)
    arr = np.asarray(sendbuf)
    out = np.asarray(recvbuf)
    np.copyto(out, arr)
    if comm.rank > 0:
        tmp = np.empty_like(out)
        yield from _recv(comm, tmp, comm.rank - 1, tag=9000)
        np.copyto(out, ufunc(tmp, arr))
    if comm.rank < comm.size - 1:
        yield from _send(comm, out, comm.rank + 1, tag=9000)


def split(comm, color: int, key: int = 0) -> Generator:
    """MPI_Comm_split: allgather (color, key), then build subgroups."""
    from repro.mpi.api import Communicator  # local import to avoid cycle

    size = comm.size
    mine = np.array([color, key, comm.rank], dtype=np.int64)
    table = np.zeros((size, 3), dtype=np.int64)
    yield from allgather(comm, mine, table)
    comm._derived += 1
    if color < 0:  # MPI_UNDEFINED convention
        return None
    members = [
        (int(k), int(r)) for c, k, r in table.tolist() if c == color
    ]
    members.sort()
    ranks = [r for _k, r in members]
    group = [comm.group[r] for r in ranks]
    new_rank = ranks.index(comm.rank)
    ctx = comm.context + ("split", comm._derived, color)
    return Communicator(comm.backend, group, new_rank, ctx)
