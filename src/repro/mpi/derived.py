"""Derived datatypes — the paper's stated future work, implemented.

The paper closes with "We plan to implement MPI data types which have
not been implemented yet"; this module provides the classic derived-
type constructors over the reproduction's byte-oriented transport:

- :class:`Contiguous`  — ``count`` copies of a base type
- :class:`Vector`      — ``count`` blocks of ``blocklength`` items with a
  stride (MPI_Type_vector)
- :class:`Indexed`     — explicit (blocklength, displacement) lists
  (MPI_Type_indexed)

A derived type describes which bytes of a (possibly non-contiguous)
buffer participate in a message.  Sending packs them into a contiguous
wire image (charged as a host copy — exactly what a real datatype
engine pays on this hardware); receiving unpacks the same way.  Types
compose: the base of any constructor may itself be a derived type.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["BYTE", "Contiguous", "Datatype", "Indexed", "Primitive", "Vector"]


class Datatype:
    """Base class: a datatype is a list of (offset, length) byte ranges
    relative to the start of one element, plus an *extent* (the stride
    to the next element when ``count > 1`` is used in a call)."""

    def ranges(self) -> list[tuple[int, int]]:
        raise NotImplementedError

    @property
    def extent(self) -> int:
        raise NotImplementedError

    @property
    def size(self) -> int:
        """Bytes of actual data in one element."""
        return sum(ln for _off, ln in self.ranges())

    # ------------------------------------------------------------------
    def _flat_ranges(self, count: int) -> list[tuple[int, int]]:
        """Coalesced (offset, length) ranges for ``count`` elements."""
        out: list[tuple[int, int]] = []
        base = self.ranges()
        for k in range(count):
            shift = k * self.extent
            for off, ln in base:
                o = off + shift
                if out and out[-1][0] + out[-1][1] == o:
                    out[-1] = (out[-1][0], out[-1][1] + ln)
                else:
                    out.append((o, ln))
        return out

    def pack(self, buf, count: int = 1) -> bytes:
        """Gather the typed bytes of ``count`` elements into wire form."""
        view = _as_view(buf, writable=False)
        parts = []
        for off, ln in self._flat_ranges(count):
            if off + ln > len(view):
                raise ValueError(
                    f"datatype reads past the buffer ({off + ln} > {len(view)})"
                )
            parts.append(bytes(view[off : off + ln]))
        return b"".join(parts)

    def unpack(self, data: bytes, buf, count: int = 1) -> None:
        """Scatter a wire image back into a typed buffer."""
        view = _as_view(buf, writable=True)
        pos = 0
        for off, ln in self._flat_ranges(count):
            if off + ln > len(view):
                raise ValueError(
                    f"datatype writes past the buffer ({off + ln} > {len(view)})"
                )
            view[off : off + ln] = data[pos : pos + ln]
            pos += ln
        if pos != len(data):
            raise ValueError(
                f"wire data ({len(data)}B) does not match type map ({pos}B)"
            )


def _as_view(buf, writable: bool) -> memoryview:
    if isinstance(buf, np.ndarray):
        view = memoryview(buf).cast("B")
    else:
        view = memoryview(buf).cast("B")
    if writable and view.readonly:
        raise ValueError("buffer is read-only")
    return view


class Primitive(Datatype):
    """A contiguous run of ``itemsize`` bytes (MPI's base types)."""

    def __init__(self, itemsize: int, name: str = "byte"):
        if itemsize < 1:
            raise ValueError("itemsize must be >= 1")
        self.itemsize = itemsize
        self.name = name

    def ranges(self) -> list[tuple[int, int]]:
        return [(0, self.itemsize)]

    @property
    def extent(self) -> int:
        return self.itemsize

    def __repr__(self) -> str:  # pragma: no cover
        return f"Primitive({self.name}, {self.itemsize})"


BYTE = Primitive(1, "byte")
DOUBLE = Primitive(8, "double")
INT = Primitive(4, "int")


class Contiguous(Datatype):
    """``count`` back-to-back elements of ``base``."""

    def __init__(self, count: int, base: Datatype = BYTE):
        if count < 1:
            raise ValueError("count must be >= 1")
        self.count = count
        self.base = base

    def ranges(self) -> list[tuple[int, int]]:
        return self.base._flat_ranges(self.count)

    @property
    def extent(self) -> int:
        return self.count * self.base.extent


class Vector(Datatype):
    """``count`` blocks of ``blocklength`` base elements, strided.

    ``stride`` is in base-element units (MPI_Type_vector semantics).
    """

    def __init__(self, count: int, blocklength: int, stride: int,
                 base: Datatype = BYTE):
        if count < 1 or blocklength < 1:
            raise ValueError("count and blocklength must be >= 1")
        if stride < blocklength:
            raise ValueError("overlapping vector (stride < blocklength)")
        self.count = count
        self.blocklength = blocklength
        self.stride = stride
        self.base = base

    def ranges(self) -> list[tuple[int, int]]:
        out = []
        e = self.base.extent
        for b in range(self.count):
            start = b * self.stride * e
            for off, ln in self.base._flat_ranges(self.blocklength):
                out.append((start + off, ln))
        return out

    @property
    def extent(self) -> int:
        e = self.base.extent
        return ((self.count - 1) * self.stride + self.blocklength) * e


class Indexed(Datatype):
    """Explicit blocks: (blocklengths[i], displacements[i]) in base units."""

    def __init__(self, blocklengths: Sequence[int], displacements: Sequence[int],
                 base: Datatype = BYTE):
        if len(blocklengths) != len(displacements):
            raise ValueError("blocklengths and displacements differ in length")
        if not blocklengths:
            raise ValueError("need at least one block")
        if any(b < 1 for b in blocklengths):
            raise ValueError("blocklengths must be >= 1")
        self.blocklengths = list(blocklengths)
        self.displacements = list(displacements)
        self.base = base

    def ranges(self) -> list[tuple[int, int]]:
        out = []
        e = self.base.extent
        for bl, disp in zip(self.blocklengths, self.displacements):
            start = disp * e
            for off, ln in self.base._flat_ranges(bl):
                out.append((start + off, ln))
        return sorted(out)

    @property
    def extent(self) -> int:
        e = self.base.extent
        return max(
            (d + b) * e for b, d in zip(self.blocklengths, self.displacements)
        )
