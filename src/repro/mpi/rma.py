"""MPI-3 one-sided (RMA) over the paper's transports.

The paper layers *two-sided* MPI on LAPI's one-sided primitives; this
module closes the loop and layers MPI-3 one-sided on them directly, the
mapping Gerstenberger et al. showed beats two-sided emulation when the
transport is natively one-sided:

==========================  =============================  =========================
MPI-3 call                  LAPI stacks                    native (Pipes) stack
==========================  =============================  =========================
``win_create``              ``LAPI_Address_init`` + cid    window server process
                            exchange (allgather)
``put``                     ``LAPI_Put``                   request/ack over send/recv
``get``                     ``LAPI_Get``                   request/data-reply
``accumulate``              Amsend + in-dispatcher apply   request/ack, server apply
``get_accumulate``          Amsend + apply, data reply     request/data-reply
``fetch_and_op`` / ``cas``  ``LAPI_Rmw``                   request/word-reply
``win_fence``               cumulative markers + target    waitall acks + barrier
                            *applied* counters
``post/start/complete/      counter-based tokens +         zero-byte token messages
wait``                      cumulative complete counts
``lock/unlock``             lock ledger serviced in        lock ledger in the window
                            dispatcher context             server
==========================  =============================  =========================

Sync-mode correctness rests on one invariant: every remote data-movement
op increments exactly one per-origin *applied* counter at the target
(``tgt_cntr_id`` for LAPI; the explicit ack for native), so an epoch can
close by comparing a cumulative issued count against a cumulative
applied count — order-independent, hence safe under the fabric's
out-of-order multi-route delivery.

Passive target progress: all target-side work (applies, the lock
ledger) runs in dispatcher/completion context (``inline_always``
handlers) or in the window server process, so both polling *and*
interrupt modes make progress without the target calling MPI.
"""

from __future__ import annotations

import itertools
import json
import struct
from bisect import bisect_right
from collections import deque
from typing import Any, Generator, Optional, Sequence

import numpy as np

from repro.lapi.buffers import ByteTarget, NullTarget
from repro.lapi.counters import Counter
from repro.mpci import ANY_SOURCE
from repro.mpi.datatypes import as_bytes, as_writable
from repro.mpi.request import Request
from repro.sim import AnyOf

__all__ = [
    "LapiRmaEngine",
    "NativeRmaEngine",
    "RmaError",
    "Window",
    "WindowBuffer",
    "win_create",
]


class RmaError(RuntimeError):
    """Invalid use of the one-sided interface."""


_WORD_MASK = (1 << 64) - 1


class WindowBuffer(bytearray):
    """Window memory with an epoch-amortised read snapshot.

    ``rma_exposure_view`` hands the LAPI get-reply path a *read-only
    view* of a lazily-taken snapshot instead of a per-get copy; any
    write (direct slice assignment, an incoming put/accumulate via
    ``rma_epoch_dirty``) invalidates it, so during a read-only exposure
    epoch the snapshot is taken exactly once and every get of the epoch
    rides it zero-copy.  Writers that bypass ``__setitem__`` (the
    assembly paths write through ``memoryview``) must call
    ``rma_epoch_dirty`` first — the RMA engines and ``_hh_put`` do.
    """

    __slots__ = ("_snap",)

    def __init__(self, *args):
        super().__init__(*args)
        self._snap: Optional[bytes] = None

    def __setitem__(self, key, value):
        self._snap = None
        super().__setitem__(key, value)

    def rma_epoch_dirty(self) -> None:
        """Invalidate the epoch snapshot (a write is about to land)."""
        self._snap = None

    def rma_exposure_view(self, off: int, n: int) -> memoryview:
        """Read-only view over the current epoch snapshot."""
        if self._snap is None:
            self._snap = bytes(self)
        return memoryview(self._snap)[off : off + n]

    # 64-bit little-endian words for LAPI_Rmw at a byte offset
    def read_word(self, off: int) -> int:
        return int.from_bytes(bytes(self[off : off + 8]), "little", signed=True)

    def write_word(self, off: int, value: int) -> None:
        self[off : off + 8] = (value & _WORD_MASK).to_bytes(8, "little")


class _StridedTarget:
    """Scatter a packed wire image into non-contiguous window ranges.

    Chunks may arrive out of order (multi-route fabric), so ``write``
    locates the range containing each wire offset by bisection.
    """

    __slots__ = ("view", "ranges", "starts")

    def __init__(self, view: memoryview, base: int,
                 ranges: Sequence[Sequence[int]]):
        self.view = view
        self.ranges = [(base + int(off), int(ln)) for off, ln in ranges]
        starts = [0]
        for _off, ln in self.ranges:
            starts.append(starts[-1] + ln)
        self.starts = starts  # wire offset where each range begins

    def write(self, off: int, data) -> None:
        if not data:
            return
        i = bisect_right(self.starts, off) - 1
        pos, n = 0, len(data)
        while pos < n:
            roff, rln = self.ranges[i]
            skip = off + pos - self.starts[i]
            take = min(rln - skip, n - pos)
            self.view[roff + skip : roff + skip + take] = data[pos : pos + take]
            pos += take
            i += 1


class _LockLedger:
    """Shared/exclusive lock state at a window target.

    FIFO-fair: once anything queues, later requests queue behind it
    (no shared-reader starvation of a waiting writer).  ``release``
    returns the queue entries that become grantable — the caller routes
    the grants (message to a remote origin, direct wake locally).
    """

    __slots__ = ("holders", "queue")

    def __init__(self):
        self.holders: dict[str, bool] = {}  # lid -> exclusive?
        self.queue: deque = deque()  # (lid, exclusive, origin_ref)

    def try_acquire(self, lid: str, exclusive: bool) -> bool:
        if self.queue:
            return False
        if exclusive:
            ok = not self.holders
        else:
            ok = not any(self.holders.values())
        if ok:
            self.holders[lid] = exclusive
        return ok

    def enqueue(self, lid: str, exclusive: bool, origin_ref) -> None:
        self.queue.append((lid, exclusive, origin_ref))

    def release(self, lid: str) -> list:
        del self.holders[lid]
        granted = []
        while self.queue:
            lid2, excl2, ref2 = self.queue[0]
            if excl2:
                if self.holders:
                    break
                self.holders[lid2] = True
                granted.append(self.queue.popleft())
                break
            if any(self.holders.values()):
                break
            self.holders[lid2] = False
            granted.append(self.queue.popleft())
        return granted

    @property
    def empty(self) -> bool:
        return not self.holders and not self.queue


#: numpy ufuncs for the element-wise accumulate ops
_ACC_UFUNCS = {
    "sum": np.add,
    "prod": np.multiply,
    "min": np.minimum,
    "max": np.maximum,
    "band": np.bitwise_and,
    "bor": np.bitwise_or,
    "bxor": np.bitwise_xor,
}

ACC_OPS = ("sum", "prod", "min", "max", "band", "bor", "bxor", "replace",
           "no_op")

#: fetch_and_op -> LAPI_Rmw op (scalar ops ride the rmw fast path)
_RMW_OF = {"sum": "FETCH_AND_ADD", "bor": "FETCH_AND_OR", "replace": "SWAP",
           "no_op": "FETCH_AND_ADD"}


def _apply_acc(mem: WindowBuffer, off: int, data, op: str, dtype: str) -> None:
    """Element-wise accumulate into window memory (runs synchronously in
    dispatcher/server context — that synchrony is the atomicity)."""
    if op == "no_op":
        return
    mem.rma_epoch_dirty()
    view = memoryview(mem)[off : off + len(data)]
    if op == "replace":
        view[:] = data
        return
    try:
        ufunc = _ACC_UFUNCS[op]
    except KeyError:
        raise RmaError(f"unknown accumulate op {op!r}") from None
    dst = np.frombuffer(view, dtype=dtype)
    src = np.frombuffer(data if isinstance(data, (bytes, bytearray)) else bytes(data),
                        dtype=dtype)
    ufunc(dst, src, out=dst)


def _acc_dtype(buf, dtype: Optional[str]) -> str:
    if dtype is not None:
        return dtype
    if isinstance(buf, np.ndarray):
        return buf.dtype.str
    return "|u1"


class Window(object):
    """An MPI-3 window: registered memory plus epoch state.

    Created collectively by :func:`win_create`; all methods are
    generators (``yield from win.put(...)``) except the plain accessors.
    The heavy lifting is delegated to the backend's RMA engine — thin
    and zero-copy on the LAPI stacks, emulated over two-sided send/recv
    on the native stack.
    """

    def __init__(self, engine, comm, mem: WindowBuffer, name: str):
        self._engine = engine
        self.comm = comm
        self.mem = mem
        self.name = name
        # ---- issue/apply accounting (cumulative, never reset) -------
        #: ops issued to each target rank that bump its applied counter
        self.sent_to = [0] * comm.size
        #: replies (get/sget/gacc data) owed to this origin
        self.replies_due = 0
        self.reply_cntr: Optional[Counter] = None
        #: per-origin applied counters at *this* target (LAPI engine)
        self.applied_from: dict[int, Counter] = {}
        #: counter id of my row in each target's applied table
        self.applied_cid_at: dict[int, int] = {}
        # ---- fence ---------------------------------------------------
        self.fence_epoch = 0
        self.fence_marks: dict[int, dict[int, int]] = {}
        #: small contiguous puts queued until the closing sync (LAPI
        #: engine): the last one carries the fence marker piggybacked,
        #: saving the standalone marker packet on the critical path
        self.deferred: dict[int, list] = {}
        # ---- post/start/complete/wait -------------------------------
        self.post_tokens: dict[int, int] = {}
        self.complete_cums: dict[int, deque] = {}
        self.exposure_origins: set[int] = set()
        self.access_targets: set[int] = set()
        # ---- passive target -----------------------------------------
        self.ledger = _LockLedger()
        self.passive: dict[int, str] = {}  # locked target rank -> lid
        self.pt_cntr: dict[int, Counter] = {}
        self.pt_due: dict[int, int] = {}
        self._granted: set[str] = set()
        self._unlock_acked: set[str] = set()
        # ---- sync plumbing ------------------------------------------
        self._wake_evs: list = []
        self._freed = False

    # ------------------------------------------------------------ misc
    @property
    def size(self) -> int:
        return len(self.mem)

    def task_of(self, rank: int) -> int:
        return self.comm.group[rank]

    def sync_event(self):
        """One-shot event fired at the next RMA state change."""
        ev = self.comm.env.event()
        self._wake_evs.append(ev)
        return ev

    def _wake(self) -> None:
        evs, self._wake_evs = self._wake_evs, []
        for ev in evs:
            if not ev.triggered:
                ev.succeed()

    def _check_live(self) -> None:
        if self._freed:
            raise RmaError(f"window {self.name} has been freed")

    # --------------------------------------------------- data movement
    def put(self, buf, target_rank: int, target_disp: int = 0,
            datatype=None, count: int = 1) -> Generator:
        """MPI_Put (optionally strided via a derived ``datatype``)."""
        self._check_live()
        yield from self._engine.put(self, buf, target_rank, target_disp,
                                    datatype, count)

    def get(self, buf, target_rank: int, target_disp: int = 0,
            datatype=None, count: int = 1) -> Generator:
        """MPI_Get (optionally strided via a derived ``datatype``)."""
        self._check_live()
        yield from self._engine.get(self, buf, target_rank, target_disp,
                                    datatype, count)

    def accumulate(self, buf, target_rank: int, target_disp: int = 0,
                   op: str = "sum", dtype: Optional[str] = None) -> Generator:
        """MPI_Accumulate (element-wise, atomic per message)."""
        self._check_live()
        yield from self._engine.accumulate(self, buf, target_rank,
                                           target_disp, op, dtype)

    def get_accumulate(self, buf, result, target_rank: int,
                       target_disp: int = 0, op: str = "sum",
                       dtype: Optional[str] = None) -> Generator:
        """MPI_Get_accumulate: fetch old contents, then apply."""
        self._check_live()
        yield from self._engine.get_accumulate(self, buf, result, target_rank,
                                               target_disp, op, dtype)

    def fetch_and_op(self, value: int, target_rank: int, target_disp: int = 0,
                     op: str = "sum") -> Generator:
        """MPI_Fetch_and_op on one 64-bit word; returns the old value.
        Blocking (the scalar rmw round-trip *is* the completion)."""
        self._check_live()
        return (yield from self._engine.fetch_and_op(
            self, value, target_rank, target_disp, op))

    def compare_and_swap(self, value: int, compare: int, target_rank: int,
                         target_disp: int = 0) -> Generator:
        """MPI_Compare_and_swap on one 64-bit word; returns the old value."""
        self._check_live()
        return (yield from self._engine.compare_and_swap(
            self, value, compare, target_rank, target_disp))

    def rput(self, buf, target_rank: int, target_disp: int = 0) -> Generator:
        """MPI_Rput: returns a :class:`Request` that completes when the
        data has been applied at the target."""
        self._check_live()
        return (yield from self._engine.rput(self, buf, target_rank,
                                             target_disp))

    def rget(self, buf, target_rank: int, target_disp: int = 0) -> Generator:
        """MPI_Rget: returns a :class:`Request` that completes when the
        data has landed in ``buf``."""
        self._check_live()
        return (yield from self._engine.rget(self, buf, target_rank,
                                             target_disp))

    # --------------------------------------------------- synchronization
    def fence(self) -> Generator:
        """MPI_Win_fence: close the epoch on every rank (collective)."""
        self._check_live()
        yield from self._engine.fence(self)

    def post(self, origin_ranks: Sequence[int]) -> Generator:
        """MPI_Win_post: expose the window to ``origin_ranks``."""
        self._check_live()
        yield from self._engine.post(self, list(origin_ranks))

    def start(self, target_ranks: Sequence[int]) -> Generator:
        """MPI_Win_start: open an access epoch to ``target_ranks``."""
        self._check_live()
        yield from self._engine.start(self, list(target_ranks))

    def complete(self) -> Generator:
        """MPI_Win_complete: close the access epoch."""
        self._check_live()
        yield from self._engine.complete(self)

    def wait(self) -> Generator:
        """MPI_Win_wait: close the exposure epoch."""
        self._check_live()
        yield from self._engine.wait(self)

    def lock(self, target_rank: int, exclusive: bool = True) -> Generator:
        """MPI_Win_lock (shared with ``exclusive=False``)."""
        self._check_live()
        yield from self._engine.lock(self, target_rank, exclusive)

    def flush(self, target_rank: int) -> Generator:
        """MPI_Win_flush: complete all ops to the target inside the
        current passive epoch, without releasing the lock."""
        self._check_live()
        yield from self._engine.flush(self, target_rank)

    def unlock(self, target_rank: int) -> Generator:
        """MPI_Win_unlock: flushes, then releases the target's lock."""
        self._check_live()
        yield from self._engine.unlock(self, target_rank)

    def free(self) -> Generator:
        """MPI_Win_free (collective; quiesces like a fence first)."""
        self._check_live()
        yield from self._engine.free(self)
        self._freed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Window {self.name} {len(self.mem)}B rank={self.comm.rank}>"


def win_create(comm, buf) -> Generator:
    """MPI_Win_create (collective over ``comm``).

    ``buf`` may be an int (bytes to allocate — MPI_Win_allocate style),
    a :class:`WindowBuffer`, or any bytes-like object (snapshotted into
    a fresh :class:`WindowBuffer`).  Returns the :class:`Window`.
    """
    if isinstance(buf, int):
        mem = WindowBuffer(buf)
    elif isinstance(buf, WindowBuffer):
        mem = buf
    else:
        mem = WindowBuffer(as_bytes(buf))
    engine = comm.backend.ensure_rma_engine()
    win = yield from engine.win_create(comm, mem)
    return win


def _window_name(comm) -> str:
    seq = getattr(comm, "_rma_seq", 0)
    comm._rma_seq = seq + 1
    return "rma:" + ":".join(map(str, comm.context)) + f":{seq}"


# ======================================================================
#                        LAPI engine (thin mapping)
# ======================================================================
class LapiRmaEngine:
    """RMA over LAPI primitives: one engine per :class:`LapiBackend`.

    Contiguous put/get map straight onto ``LAPI_Put``/``LAPI_Get`` into
    the ``address_init``-registered window (zero-copy at the target);
    strided and accumulate traffic rides ``LAPI_Amsend`` with header
    handlers that resolve the window offset — the paper's §4 trick
    reused for RMA.  Scalar atomics map onto ``LAPI_Rmw``.  All
    target-side work is ``inline_always`` so it runs in dispatcher
    context on every variant: passive-target progress needs no thread
    switch and no target-side MPI call.
    """

    def __init__(self, backend):
        self.backend = backend
        self.lapi = backend.lapi
        self.env = backend.env
        self.cpu = backend.cpu
        self.params = backend.params
        self.stats = backend.stats
        self.metrics = backend.metrics
        self._windows: dict[str, Window] = {}
        self._pending: dict[int, tuple] = {}  # gid -> sget/gacc reply state
        self._gids = itertools.count()
        self._lock_ids = itertools.count()
        self._mids = itertools.count()
        for name, fn in (
            ("rma_sput", self._hh_sput),
            ("rma_sget", self._hh_sget),
            ("rma_sget_rep", self._hh_sget_rep),
            ("rma_acc", self._hh_acc),
            ("rma_gacc", self._hh_gacc),
            ("rma_gacc_rep", self._hh_gacc_rep),
            ("rma_fence", self._hh_fence),
            ("rma_put_f", self._hh_put_f),
            ("rma_post", self._hh_post),
            ("rma_complete", self._hh_complete),
            ("rma_lock", self._hh_lock),
            ("rma_lock_grant", self._hh_lock_grant),
            ("rma_unlock", self._hh_unlock),
            ("rma_unlock_ack", self._hh_unlock_ack),
        ):
            self.lapi.register_handler(name, fn, inline_always=True)

    # -------------------------------------------------------- plumbing
    def _mint(self) -> str:
        """Cluster-unique RMA message id (see ``Backend.mint_mid``)."""
        return f"rma{self.backend.task_id}:{next(self._mids)}"

    def _win(self, name: str) -> Window:
        try:
            return self._windows[name]
        except KeyError:
            raise RmaError(
                f"task {self.backend.task_id}: unknown window {name!r}"
            ) from None

    def _wait(self, thread: str, win: Window, cond) -> Generator:
        """Drive the dispatcher until ``cond()`` holds (LAPI_Waitcntr
        discipline: works in polling mode, and in interrupt mode via
        the window wake events the ISR-run handlers fire)."""
        lapi = self.lapi
        while not cond():
            if lapi.hal.rx_pending:
                yield from lapi.dispatch(thread)
                continue
            self.stats.polls += 1
            yield from self.cpu.execute(thread, self.params.poll_check_us)
            if cond():
                break
            if lapi.hal.rx_pending:
                continue
            yield AnyOf(self.env, [lapi.hal.wait_rx(), win.sync_event()])

    def _flush_deferred(self, win: Window, t: int,
                        hold_last: bool = False):
        """Issue the puts queued for ``t``.  With ``hold_last`` the final
        op is returned un-issued so the caller can piggyback the fence
        marker on it; otherwise everything goes out as plain puts.
        Called before any other op type to the same target, so program
        order within the epoch is preserved."""
        dq = win.deferred.pop(t, None)
        if not dq:
            return None
        tail = dq.pop() if hold_last else None
        for disp, data, mid in dq:
            yield from self.lapi.put(
                "user", win.task_of(t), win.name, disp, data,
                tgt_cntr_id=win.applied_cid_at[t], mid=mid)
        return tail

    def _acct_issue(self, win: Window, t: int) -> Counter:
        """Book one owed reply; returns the counter the reply bumps
        (per-target during a passive epoch, the window's otherwise)."""
        if t in win.passive:
            win.pt_due[t] += 1
            return win.pt_cntr[t]
        win.replies_due += 1
        return win.reply_cntr

    def _passive_cmpl(self, win: Window, t: int) -> Optional[Counter]:
        """Completion-echo counter for store ops during a passive epoch
        (unlock flushes on it); active epochs use applied counters and
        need no per-op echo."""
        if t in win.passive:
            win.pt_due[t] += 1
            return win.pt_cntr[t]
        return None

    # --------------------------------------------------------- win_create
    def win_create(self, comm, mem: WindowBuffer) -> Generator:
        name = _window_name(comm)
        win = Window(self, comm, mem, name)
        self._windows[name] = win
        size = comm.size
        # per-origin applied counters, remotely addressable by id
        cids = [0] * size
        for r in range(size):
            if r == comm.rank:
                continue
            cid, cntr = self.lapi.create_counter(f"rma[{name}][{r}]")
            cntr.subscribe(lambda _c, w=win: w._wake())
            win.applied_from[r] = cntr
            cids[r] = cid
        win.reply_cntr = Counter(self.env, f"rma[{name}].reply")
        win.reply_cntr.subscribe(lambda _c, w=win: w._wake())
        # exchange the applied-counter ids (one allgather of int64 rows)
        row = np.asarray(cids, dtype=np.int64)
        mat = np.zeros((size, size), dtype=np.int64)
        yield from comm.allgather(row, mat)
        for t in range(size):
            if t != comm.rank:
                win.applied_cid_at[t] = int(mat[t, comm.rank])
        self.lapi.address_init(name, mem)
        self.metrics.counter("rma.windows").incr()
        self.stats.trace("rma", "win_create", win=name, bytes=len(mem))
        # nobody may target a window before every rank registered it
        yield from comm.barrier()
        return win

    # ------------------------------------------------------------- put
    def put(self, win: Window, buf, t: int, disp: int, datatype,
            count: int) -> Generator:
        p = self.params
        if datatype is None:
            data = as_bytes(buf)
            defer = (t != win.comm.rank and t not in win.passive
                     and len(data) <= p.rma_agg_limit)
            yield from self.cpu.execute(
                "user", p.rma_queue_us if defer else p.rma_call_us)
        else:
            defer = False
            yield from self.cpu.execute("user", p.rma_call_us)
            data = datatype.pack(buf, count)
            yield from self.cpu.memcpy("user", len(data))
        self.metrics.counter("rma.put").incr()
        mid = self._mint()
        self.stats.trace("rma", "put", win=win.name, tgt=t, bytes=len(data),
                         mid=mid)
        if t == win.comm.rank:
            yield from self._local_put(win, disp, data, datatype, count)
            return
        if defer:
            # deferred issue: queue until the closing sync.  The origin
            # buffer may not be modified until then (MPI-3 semantics),
            # so holding the caller's view stays zero-copy.
            win.sent_to[t] += 1
            win.deferred.setdefault(t, []).append((disp, data, mid))
            self.metrics.counter("rma.put_deferred").incr()
            return
        yield from self._flush_deferred(win, t)
        win.sent_to[t] += 1
        cmpl = self._passive_cmpl(win, t)
        if datatype is None:
            yield from self.lapi.put(
                "user", win.task_of(t), win.name, disp, data,
                tgt_cntr_id=win.applied_cid_at[t], cmpl_cntr=cmpl, mid=mid)
        else:
            yield from self.lapi.amsend(
                "user", win.task_of(t), "rma_sput",
                {"w": win.name, "base": disp,
                 "ranges": datatype._flat_ranges(count)},
                data, tgt_cntr_id=win.applied_cid_at[t], cmpl_cntr=cmpl,
                mid=mid)

    def _local_put(self, win: Window, disp: int, data, datatype,
                   count: int) -> Generator:
        win.mem.rma_epoch_dirty()
        if datatype is None:
            memoryview(win.mem)[disp : disp + len(data)] = data
        else:
            _StridedTarget(memoryview(win.mem), disp,
                           datatype._flat_ranges(count)).write(0, data)
        yield from self.cpu.memcpy("user", len(data))

    # ------------------------------------------------------------- get
    def get(self, win: Window, buf, t: int, disp: int, datatype,
            count: int) -> Generator:
        yield from self.cpu.execute("user", self.params.rma_call_us)
        n = datatype.size * count if datatype is not None else len(as_writable(buf))
        self.metrics.counter("rma.get").incr()
        mid = self._mint()
        self.stats.trace("rma", "get", win=win.name, tgt=t, bytes=n, mid=mid)
        if t == win.comm.rank:
            yield from self._local_get(win, buf, disp, n, datatype, count)
            return
        yield from self._flush_deferred(win, t)
        win.sent_to[t] += 1
        acct = self._acct_issue(win, t)
        if datatype is None:
            yield from self.lapi.get(
                "user", win.task_of(t), win.name, disp, n, as_writable(buf),
                org_cntr=acct, tgt_cntr_id=win.applied_cid_at[t], mid=mid)
        else:
            gid = next(self._gids)
            tmp = bytearray(n)
            self._pending[gid] = ("sget", win, tmp, datatype, buf, count, acct)
            yield from self.lapi.amsend(
                "user", win.task_of(t), "rma_sget",
                {"w": win.name, "base": disp,
                 "ranges": datatype._flat_ranges(count), "n": n, "gid": gid,
                 "origin": self.backend.task_id},
                tgt_cntr_id=win.applied_cid_at[t], mid=mid)

    def _local_get(self, win: Window, buf, disp: int, n: int, datatype,
                   count: int) -> Generator:
        src = memoryview(win.mem)
        if datatype is None:
            as_writable(buf)[:n] = src[disp : disp + n]
        else:
            wire = b"".join(
                bytes(src[disp + off : disp + off + ln])
                for off, ln in datatype._flat_ranges(count))
            datatype.unpack(wire, buf, count)
        yield from self.cpu.memcpy("user", n)

    # ------------------------------------------------------ accumulate
    def accumulate(self, win: Window, buf, t: int, disp: int, op: str,
                   dtype: Optional[str]) -> Generator:
        if op not in ACC_OPS:
            raise RmaError(f"unknown accumulate op {op!r}")
        yield from self.cpu.execute("user", self.params.rma_call_us)
        data = as_bytes(buf)
        dt = _acc_dtype(buf, dtype)
        self.metrics.counter("rma.acc").incr()
        mid = self._mint()
        self.stats.trace("rma", "accumulate", win=win.name, tgt=t, op=op,
                         bytes=len(data), mid=mid)
        if t == win.comm.rank:
            _apply_acc(win.mem, disp, data, op, dt)
            yield from self.cpu.memcpy("user", len(data))
            return
        yield from self._flush_deferred(win, t)
        win.sent_to[t] += 1
        cmpl = self._passive_cmpl(win, t)
        yield from self.lapi.amsend(
            "user", win.task_of(t), "rma_acc",
            {"w": win.name, "off": disp, "op": op, "dt": dt}, data,
            tgt_cntr_id=win.applied_cid_at[t], cmpl_cntr=cmpl, mid=mid)

    def get_accumulate(self, win: Window, buf, result, t: int, disp: int,
                       op: str, dtype: Optional[str]) -> Generator:
        if op not in ACC_OPS:
            raise RmaError(f"unknown accumulate op {op!r}")
        yield from self.cpu.execute("user", self.params.rma_call_us)
        data = as_bytes(buf)
        dt = _acc_dtype(buf, dtype)
        self.metrics.counter("rma.gacc").incr()
        mid = self._mint()
        self.stats.trace("rma", "get_accumulate", win=win.name, tgt=t, op=op,
                         bytes=len(data), mid=mid)
        if t == win.comm.rank:
            old = bytes(memoryview(win.mem)[disp : disp + len(data)])
            _apply_acc(win.mem, disp, data, op, dt)
            as_writable(result)[: len(old)] = old
            yield from self.cpu.memcpy("user", 2 * len(data))
            return
        yield from self._flush_deferred(win, t)
        win.sent_to[t] += 1
        acct = self._acct_issue(win, t)
        gid = next(self._gids)
        self._pending[gid] = ("gacc", win, as_writable(result), acct)
        yield from self.lapi.amsend(
            "user", win.task_of(t), "rma_gacc",
            {"w": win.name, "off": disp, "op": op, "dt": dt, "gid": gid,
             "origin": self.backend.task_id},
            data, tgt_cntr_id=win.applied_cid_at[t], mid=mid)

    # -------------------------------------------------- scalar atomics
    def fetch_and_op(self, win: Window, value: int, t: int, disp: int,
                     op: str) -> Generator:
        try:
            rmw_op = _RMW_OF[op]
        except KeyError:
            raise RmaError(
                f"fetch_and_op supports {sorted(_RMW_OF)}, not {op!r}"
            ) from None
        val = 0 if op == "no_op" else value
        return (yield from self._rmw(win, rmw_op, val, None, t, disp))

    def compare_and_swap(self, win: Window, value: int, compare: int, t: int,
                         disp: int) -> Generator:
        return (yield from self._rmw(win, "COMPARE_AND_SWAP", value, compare,
                                     t, disp))

    def _rmw(self, win: Window, rmw_op: str, value: int,
             compare: Optional[int], t: int, disp: int) -> Generator:
        yield from self.cpu.execute("user", self.params.rma_call_us)
        self.metrics.counter("rma.rmw").incr()
        self.stats.trace("rma", "rmw", win=win.name, tgt=t, op=rmw_op)
        if t == win.comm.rank:
            # local word ops run atomically in the caller's context
            old = win.mem.read_word(disp)
            new = old
            if rmw_op == "FETCH_AND_ADD":
                new = old + value
            elif rmw_op == "FETCH_AND_OR":
                new = old | value
            elif rmw_op == "SWAP":
                new = value
            elif old == compare:
                new = value
            win.mem.write_word(disp, new)
            return old
        yield from self._flush_deferred(win, t)
        win.sent_to[t] += 1
        c = Counter(self.env, "rma.rmw")
        rid = yield from self.lapi.rmw(
            "user", win.task_of(t), win.name, rmw_op, value, prev_cntr=c,
            compare_value=compare, tgt_off=disp,
            tgt_cntr_id=win.applied_cid_at[t])
        yield from self.lapi.waitcntr("user", c, 1)
        _done, prev = self.lapi.rmw_result(rid)
        return prev

    # -------------------------------------------------- request-based
    def rput(self, win: Window, buf, t: int, disp: int) -> Generator:
        yield from self.cpu.execute("user", self.params.rma_call_us)
        data = as_bytes(buf)
        self.metrics.counter("rma.put").incr()
        mid = self._mint()
        self.stats.trace("rma", "rput", win=win.name, tgt=t, bytes=len(data),
                         mid=mid)
        if t == win.comm.rank:
            yield from self._local_put(win, disp, data, None, 1)
            req = Request(self.env, "rma")
            req.complete(count=len(data))
            return req
        yield from self._flush_deferred(win, t)
        win.sent_to[t] += 1
        c = Counter(self.env, "rma.rput")
        req = Request.on_counter(self.env, "rma", c)
        if t in win.passive:
            win.pt_due[t] += 1
            c.subscribe(lambda _c, w=win, tr=t: w.pt_cntr[tr].incr())
        yield from self.lapi.put(
            "user", win.task_of(t), win.name, disp, data,
            tgt_cntr_id=win.applied_cid_at[t], cmpl_cntr=c, mid=mid)
        return req

    def rget(self, win: Window, buf, t: int, disp: int) -> Generator:
        yield from self.cpu.execute("user", self.params.rma_call_us)
        n = len(as_writable(buf))
        self.metrics.counter("rma.get").incr()
        mid = self._mint()
        self.stats.trace("rma", "rget", win=win.name, tgt=t, bytes=n, mid=mid)
        if t == win.comm.rank:
            yield from self._local_get(win, buf, disp, n, None, 1)
            req = Request(self.env, "rma")
            req.complete(count=n)
            return req
        yield from self._flush_deferred(win, t)
        win.sent_to[t] += 1
        c = Counter(self.env, "rma.rget")
        req = Request.on_counter(self.env, "rma", c)
        acct = self._acct_issue(win, t)
        c.subscribe(lambda _c, a=acct: a.incr())
        yield from self.lapi.get(
            "user", win.task_of(t), win.name, disp, n, as_writable(buf),
            org_cntr=c, tgt_cntr_id=win.applied_cid_at[t], mid=mid)
        return req

    # ----------------------------------------------------------- fence
    def fence(self, win: Window) -> Generator:
        """Marker fence: wait for owed replies, tell every peer how many
        of my ops it should have applied (cumulative — order-independent
        under multi-route delivery), then wait for every peer's marker
        *and* the matching applied counts.  One small message per peer
        per fence; no per-op origin echo, and no dependence on the
        delayed transport ack (``lapi_ack_delay_us``)."""
        yield from self.cpu.execute("user", self.params.rma_call_us)
        self.metrics.counter("rma.fence").incr()
        epoch = win.fence_epoch
        self.stats.trace("rma", "fence_enter", win=win.name, epoch=epoch)
        yield from self._wait(
            "user", win, lambda: win.reply_cntr.value >= win.replies_due)
        me = win.comm.rank
        for r in range(win.comm.size):
            if r == me:
                continue
            tail = yield from self._flush_deferred(win, r, hold_last=True)
            if tail is not None:
                # the epoch's last put carries the marker: one packet
                # does data + synchronization
                disp, data, mid = tail
                yield from self.lapi.amsend(
                    "user", win.task_of(r), "rma_put_f",
                    {"w": win.name, "off": disp, "e": epoch,
                     "c": win.sent_to[r], "o": me}, data,
                    tgt_cntr_id=win.applied_cid_at[r], mid=mid)
            else:
                yield from self.lapi.amsend(
                    "user", win.task_of(r), "rma_fence",
                    {"w": win.name, "e": epoch, "c": win.sent_to[r], "o": me})
        yield from self._wait("user", win,
                              lambda: self._fence_ready(win, epoch))
        win.fence_marks.pop(epoch, None)
        win.fence_epoch += 1
        self.stats.trace("rma", "fence_exit", win=win.name, epoch=epoch)

    def _fence_ready(self, win: Window, epoch: int) -> bool:
        marks = win.fence_marks.get(epoch, {})
        for r in range(win.comm.size):
            if r == win.comm.rank:
                continue
            cum = marks.get(r)
            if cum is None:
                return False
            if cum > 0 and win.applied_from[r].value < cum:
                return False
        return True

    # ------------------------------------------- post/start/complete/wait
    def post(self, win: Window, ranks: list[int]) -> Generator:
        yield from self.cpu.execute("user", self.params.rma_call_us)
        self.metrics.counter("rma.post").incr()
        self.stats.trace("rma", "post", win=win.name, origins=len(ranks))
        win.exposure_origins = set(ranks)
        me = win.comm.rank
        for r in ranks:
            if r == me:
                win.post_tokens[me] = win.post_tokens.get(me, 0) + 1
                win._wake()
            else:
                yield from self.lapi.amsend(
                    "user", win.task_of(r), "rma_post",
                    {"w": win.name, "o": me})

    def start(self, win: Window, ranks: list[int]) -> Generator:
        yield from self.cpu.execute("user", self.params.rma_call_us)
        self.stats.trace("rma", "start", win=win.name, targets=len(ranks))
        win.access_targets = set(ranks)
        for r in sorted(ranks):
            yield from self._wait(
                "user", win, lambda r=r: win.post_tokens.get(r, 0) > 0)
            win.post_tokens[r] -= 1

    def complete(self, win: Window) -> Generator:
        yield from self.cpu.execute("user", self.params.rma_call_us)
        yield from self._wait(
            "user", win, lambda: win.reply_cntr.value >= win.replies_due)
        me = win.comm.rank
        self.stats.trace("rma", "complete", win=win.name,
                         targets=len(win.access_targets))
        for t in sorted(win.access_targets):
            if t == me:
                win.complete_cums.setdefault(me, deque()).append(0)
                win._wake()
            else:
                yield from self._flush_deferred(win, t)
                yield from self.lapi.amsend(
                    "user", win.task_of(t), "rma_complete",
                    {"w": win.name, "c": win.sent_to[t], "o": me})
        win.access_targets = set()

    def wait(self, win: Window) -> Generator:
        yield from self.cpu.execute("user", self.params.rma_call_us)
        me = win.comm.rank
        for o in sorted(win.exposure_origins):
            if o == me:
                yield from self._wait(
                    "user", win, lambda: win.complete_cums.get(me))
                win.complete_cums[me].popleft()
                continue
            yield from self._wait(
                "user", win,
                lambda o=o: bool(win.complete_cums.get(o))
                and win.applied_from[o].value >= win.complete_cums[o][0])
            win.complete_cums[o].popleft()
        win.exposure_origins = set()
        self.stats.trace("rma", "wait_done", win=win.name)

    # -------------------------------------------------- passive target
    def lock(self, win: Window, t: int, exclusive: bool) -> Generator:
        yield from self.cpu.execute("user", self.params.rma_call_us)
        if t in win.passive:
            raise RmaError(f"target {t} already locked by this origin")
        self.metrics.counter("rma.lock").incr()
        lid = f"{self.backend.task_id}:{next(self._lock_ids)}"
        self.stats.trace("rma", "lock", win=win.name, tgt=t, lid=lid,
                         excl=exclusive)
        if t == win.comm.rank:
            if not win.ledger.try_acquire(lid, exclusive):
                win.ledger.enqueue(lid, exclusive, ("local",))
                yield from self._wait("user", win,
                                      lambda: lid in win._granted)
                win._granted.discard(lid)
        else:
            yield from self.lapi.amsend(
                "user", win.task_of(t), "rma_lock",
                {"w": win.name, "lid": lid, "x": exclusive,
                 "ot": self.backend.task_id})
            yield from self._wait("user", win, lambda: lid in win._granted)
            win._granted.discard(lid)
        win.passive[t] = lid
        if t not in win.pt_cntr:
            cntr = Counter(self.env, f"rma[{win.name}].pt{t}")
            cntr.subscribe(lambda _c, w=win: w._wake())
            win.pt_cntr[t] = cntr
            win.pt_due[t] = 0

    def flush(self, win: Window, t: int) -> Generator:
        """MPI_Win_flush: all ops to ``t`` in this passive epoch are
        applied at the target and any fetched data has landed."""
        yield from self.cpu.execute("user", self.params.rma_call_us)
        if t not in win.passive:
            raise RmaError(f"flush({t}) outside a passive epoch")
        self.stats.trace("rma", "flush", win=win.name, tgt=t)
        if t in win.pt_cntr:
            yield from self._wait(
                "user", win,
                lambda: win.pt_cntr[t].value >= win.pt_due[t])

    def unlock(self, win: Window, t: int) -> Generator:
        yield from self.cpu.execute("user", self.params.rma_call_us)
        lid = win.passive.get(t)
        if lid is None:
            raise RmaError(f"target {t} is not locked by this origin")
        # flush: every op of this epoch applied/served at the target
        if t in win.pt_cntr:
            yield from self._wait(
                "user", win,
                lambda: win.pt_cntr[t].value >= win.pt_due[t])
        self.stats.trace("rma", "unlock", win=win.name, tgt=t, lid=lid)
        if t == win.comm.rank:
            grants = win.ledger.release(lid)
            yield from self._route_grants("user", win, grants)
        else:
            yield from self.lapi.amsend(
                "user", win.task_of(t), "rma_unlock",
                {"w": win.name, "lid": lid, "ot": self.backend.task_id})
            # the ack round-trip orders this release before any later
            # lock we issue over a different fabric route
            yield from self._wait("user", win,
                                  lambda: lid in win._unlock_acked)
            win._unlock_acked.discard(lid)
        del win.passive[t]

    def _route_grants(self, thread: str, win: Window, grants) -> Generator:
        for lid2, _excl2, ref in grants:
            if ref[0] == "local":
                win._granted.add(lid2)
                win._wake()
            else:
                yield from self.lapi.amsend(
                    thread, ref[1], "rma_lock_grant",
                    {"w": win.name, "lid": lid2})

    # ------------------------------------------------------------ free
    def free(self, win: Window) -> Generator:
        yield from self.fence(win)  # quiesce + synchronize all ranks
        if hasattr(self.lapi, "address_fini"):
            self.lapi.address_fini(win.name)
        del self._windows[win.name]
        self.stats.trace("rma", "win_free", win=win.name)

    # ------------------------------------------------- header handlers
    # All inline_always: target-side work runs in dispatcher context on
    # every stack variant (the library's internal ops never pay the
    # thread switch) — this is what makes passive target progress work
    # in both polling and interrupt modes.
    def _hh_sput(self, lapi, src, uhdr, mlen):
        win = self._win(uhdr["w"])
        win.mem.rma_epoch_dirty()
        return (_StridedTarget(memoryview(win.mem), uhdr["base"],
                               uhdr["ranges"]), None, None)

    def _hh_sget(self, lapi, src, uhdr, mlen):
        def reply(lapi_, thread, d):
            win = self._win(d["w"])
            view = memoryview(win.mem)
            base = d["base"]
            wire = b"".join(
                bytes(view[base + off : base + off + ln])
                for off, ln in d["ranges"])
            yield from lapi_.cpu.memcpy(thread, len(wire))  # gather copy
            yield from lapi_.amsend(thread, d["origin"], "rma_sget_rep",
                                    {"gid": d["gid"]}, wire)

        return NullTarget(), reply, dict(uhdr)

    def _hh_sget_rep(self, lapi, src, uhdr, mlen):
        _kind, _win, tmp, datatype, buf, count, acct = \
            self._pending.pop(uhdr["gid"])

        def done(lapi_, thread, _d):
            datatype.unpack(bytes(tmp), buf, count)  # scatter copy
            yield from lapi_.cpu.memcpy(thread, len(tmp))
            acct.incr()

        return ByteTarget(tmp), done, None

    def _hh_acc(self, lapi, src, uhdr, mlen):
        scratch = bytearray(mlen)

        def apply(lapi_, thread, d):
            win = self._win(d["w"])
            # synchronous before any yield => atomic wrt other handlers
            _apply_acc(win.mem, d["off"], scratch, d["op"], d["dt"])
            yield from lapi_.cpu.memcpy(thread, len(scratch))

        return ByteTarget(scratch), apply, dict(uhdr)

    def _hh_gacc(self, lapi, src, uhdr, mlen):
        scratch = bytearray(mlen)

        def apply(lapi_, thread, d):
            win = self._win(d["w"])
            off = d["off"]
            old = bytes(memoryview(win.mem)[off : off + len(scratch)])
            _apply_acc(win.mem, off, scratch, d["op"], d["dt"])
            yield from lapi_.cpu.memcpy(thread, 2 * len(scratch))
            yield from lapi_.amsend(thread, d["origin"], "rma_gacc_rep",
                                    {"gid": d["gid"]}, old)

        return ByteTarget(scratch), apply, dict(uhdr)

    def _hh_gacc_rep(self, lapi, src, uhdr, mlen):
        _kind, _win, view, acct = self._pending.pop(uhdr["gid"])

        def done(lapi_, thread, _d):
            acct.incr()
            yield from lapi_.cpu.execute(thread, 0.0)

        return ByteTarget(view), done, None

    def _hh_fence(self, lapi, src, uhdr, mlen):
        win = self._win(uhdr["w"])
        win.fence_marks.setdefault(uhdr["e"], {})[uhdr["o"]] = uhdr["c"]
        win._wake()
        return NullTarget(), None, None

    def _hh_put_f(self, lapi, src, uhdr, mlen):
        """A put with the origin's fence marker piggybacked: apply the
        data, then record the marker (the payload must land first)."""
        win = self._win(uhdr["w"])
        win.mem.rma_epoch_dirty()

        def mark(lapi_, thread, d):
            w = self._win(d["w"])
            w.fence_marks.setdefault(d["e"], {})[d["o"]] = d["c"]
            w._wake()
            yield from lapi_.cpu.execute(thread, 0.0)

        return ByteTarget(win.mem, base=uhdr["off"]), mark, dict(uhdr)

    def _hh_post(self, lapi, src, uhdr, mlen):
        win = self._win(uhdr["w"])
        o = uhdr["o"]
        win.post_tokens[o] = win.post_tokens.get(o, 0) + 1
        win._wake()
        return NullTarget(), None, None

    def _hh_complete(self, lapi, src, uhdr, mlen):
        win = self._win(uhdr["w"])
        win.complete_cums.setdefault(uhdr["o"], deque()).append(uhdr["c"])
        win._wake()
        return NullTarget(), None, None

    def _hh_lock(self, lapi, src, uhdr, mlen):
        def acquire(lapi_, thread, d):
            win = self._win(d["w"])
            if win.ledger.try_acquire(d["lid"], d["x"]):
                yield from lapi_.amsend(thread, d["ot"], "rma_lock_grant",
                                        {"w": d["w"], "lid": d["lid"]})
            else:
                win.ledger.enqueue(d["lid"], d["x"], ("remote", d["ot"]))

        return NullTarget(), acquire, dict(uhdr)

    def _hh_lock_grant(self, lapi, src, uhdr, mlen):
        win = self._win(uhdr["w"])
        win._granted.add(uhdr["lid"])
        win._wake()
        return NullTarget(), None, None

    def _hh_unlock(self, lapi, src, uhdr, mlen):
        def release(lapi_, thread, d):
            win = self._win(d["w"])
            grants = win.ledger.release(d["lid"])
            yield from self._route_grants(thread, win, grants)
            yield from lapi_.amsend(thread, d["ot"], "rma_unlock_ack",
                                    {"w": d["w"], "lid": d["lid"]})

        return NullTarget(), release, dict(uhdr)

    def _hh_unlock_ack(self, lapi, src, uhdr, mlen):
        win = self._win(uhdr["w"])
        win._unlock_acked.add(uhdr["lid"])
        win._wake()
        return NullTarget(), None, None


# ======================================================================
#                 native engine (two-sided emulation)
# ======================================================================
_REQ_TAG = 1
_POST_TAG = 2
_COMPLETE_TAG = 3
_REPLY_BASE = 16


def _enc(hdr: dict, payload: bytes = b"") -> bytes:
    j = json.dumps(hdr, separators=(",", ":")).encode()
    return struct.pack("<I", len(j)) + j + payload


def _dec(view) -> tuple[dict, bytes]:
    (n,) = struct.unpack_from("<I", view)
    hdr = json.loads(bytes(view[4 : 4 + n]))
    return hdr, bytes(view[4 + n :])


class NativeRmaEngine:
    """RMA emulated over two-sided send/recv on the Pipes stack.

    The reverse of the paper's layering contrast: where MPI-LAPI builds
    two-sided semantics on a one-sided transport, this builds one-sided
    semantics on a two-sided one — every op becomes a request message to
    a per-window *server* process at the target (the target-side
    progress engine a two-sided emulation cannot avoid), which applies
    it and sends an explicit ack/data reply.  The request/ack round
    trips, the matching costs, and the Pipes staging copies are exactly
    the overheads the thin LAPI mapping dodges — measured by
    ``benchmarks/bench_rma.py``.

    All traffic rides a private communicator (the window's comm context
    extended with ``("rma", seq)``) so it can never match user
    receives.  The server runs on the ``user`` thread: library-internal
    progress, no extra context-switch charges.
    """

    def __init__(self, backend):
        self.backend = backend
        self.env = backend.env
        self.cpu = backend.cpu
        self.params = backend.params
        self.stats = backend.stats
        self.metrics = backend.metrics
        self._windows: dict[str, Window] = {}
        self._rids = itertools.count()
        self._lock_ids = itertools.count()

    # --------------------------------------------------------- win_create
    def win_create(self, comm, mem: WindowBuffer) -> Generator:
        from repro.mpi.api import Communicator

        name = _window_name(comm)
        win = Window(self, comm, mem, name)
        self._windows[name] = win
        seq = name.rsplit(":", 1)[-1]
        win._comm = Communicator(self.backend, comm.group, comm.rank,
                                 comm.context + ("rma", int(seq)))
        win._pending = []
        win._pt_pending = {}
        win._stop = False
        win._stop_evs = []
        win._server = self.env.process(
            self._server_loop(win), name=f"rma{self.backend.task_id}.srv")
        self.metrics.counter("rma.windows").incr()
        self.stats.trace("rma", "win_create", win=name, bytes=len(mem))
        # nobody may target a window before every rank's server is up
        yield from comm.barrier()
        return win

    # -------------------------------------------------------- op plumbing
    def _op(self, win: Window, t: int, hdr: dict, payload: bytes,
            reply_buf, reply_dt=None, reply_count: int = 1) -> Generator:
        """Issue one request: post the reply receive first (so even a
        rendezvous-sized reply can proceed), then send.  Returns the
        reply Request; both requests join the window's pending lists."""
        rid = next(self._rids)
        hdr["rid"] = rid
        rreq = yield from win._comm.irecv(
            reply_buf, source=t, tag=_REPLY_BASE + rid, datatype=reply_dt,
            count=reply_count)
        sreq = yield from win._comm.isend(_enc(hdr, payload), t, _REQ_TAG)
        win._pending.extend((sreq, rreq))
        if t in win.passive:
            win._pt_pending.setdefault(t, []).extend((sreq, rreq))
        return rreq

    def _wait_cond(self, win: Window, cond) -> Generator:
        be = self.backend
        while not cond():
            progressed = yield from be.progress("user")
            if cond():
                break
            if progressed:
                continue
            self.stats.polls += 1
            yield from self.cpu.execute("user", self.params.poll_check_us)
            if cond():
                break
            yield AnyOf(self.env, [be.wait_rx(), win.sync_event()])

    # ------------------------------------------------------ data movement
    def put(self, win: Window, buf, t: int, disp: int, datatype,
            count: int) -> Generator:
        if datatype is None:
            data = as_bytes(buf)
        else:
            data = datatype.pack(buf, count)
            yield from self.cpu.memcpy("user", len(data))
        self.metrics.counter("rma.put").incr()
        self.stats.trace("rma", "put", win=win.name, tgt=t, bytes=len(data))
        if t == win.comm.rank:
            yield from self._local_put(win, disp, data, datatype, count)
            return
        if datatype is None:
            hdr = {"k": "put", "off": disp}
        else:
            hdr = {"k": "sput", "base": disp,
                   "ranges": datatype._flat_ranges(count)}
        yield from self._op(win, t, hdr, data, bytearray(0))

    def _local_put(self, win: Window, disp: int, data, datatype,
                   count: int) -> Generator:
        win.mem.rma_epoch_dirty()
        if datatype is None:
            memoryview(win.mem)[disp : disp + len(data)] = data
        else:
            _StridedTarget(memoryview(win.mem), disp,
                           datatype._flat_ranges(count)).write(0, data)
        yield from self.cpu.memcpy("user", len(data))

    def get(self, win: Window, buf, t: int, disp: int, datatype,
            count: int) -> Generator:
        n = datatype.size * count if datatype is not None else len(as_writable(buf))
        self.metrics.counter("rma.get").incr()
        self.stats.trace("rma", "get", win=win.name, tgt=t, bytes=n)
        if t == win.comm.rank:
            yield from self._local_get(win, buf, disp, n, datatype, count)
            return
        if datatype is None:
            hdr = {"k": "get", "off": disp, "n": n}
            yield from self._op(win, t, hdr, b"", buf)
        else:
            hdr = {"k": "sget", "base": disp,
                   "ranges": datatype._flat_ranges(count), "n": n}
            yield from self._op(win, t, hdr, b"", buf, reply_dt=datatype,
                                reply_count=count)

    def _local_get(self, win: Window, buf, disp: int, n: int, datatype,
                   count: int) -> Generator:
        src = memoryview(win.mem)
        if datatype is None:
            as_writable(buf)[:n] = src[disp : disp + n]
        else:
            wire = b"".join(
                bytes(src[disp + off : disp + off + ln])
                for off, ln in datatype._flat_ranges(count))
            datatype.unpack(wire, buf, count)
        yield from self.cpu.memcpy("user", n)

    def accumulate(self, win: Window, buf, t: int, disp: int, op: str,
                   dtype: Optional[str]) -> Generator:
        if op not in ACC_OPS:
            raise RmaError(f"unknown accumulate op {op!r}")
        data = as_bytes(buf)
        dt = _acc_dtype(buf, dtype)
        self.metrics.counter("rma.acc").incr()
        self.stats.trace("rma", "accumulate", win=win.name, tgt=t, op=op,
                         bytes=len(data))
        if t == win.comm.rank:
            _apply_acc(win.mem, disp, data, op, dt)
            yield from self.cpu.memcpy("user", len(data))
            return
        yield from self._op(win, t, {"k": "acc", "off": disp, "op": op,
                                     "dt": dt}, data, bytearray(0))

    def get_accumulate(self, win: Window, buf, result, t: int, disp: int,
                       op: str, dtype: Optional[str]) -> Generator:
        if op not in ACC_OPS:
            raise RmaError(f"unknown accumulate op {op!r}")
        data = as_bytes(buf)
        dt = _acc_dtype(buf, dtype)
        self.metrics.counter("rma.gacc").incr()
        self.stats.trace("rma", "get_accumulate", win=win.name, tgt=t, op=op,
                         bytes=len(data))
        if t == win.comm.rank:
            old = bytes(memoryview(win.mem)[disp : disp + len(data)])
            _apply_acc(win.mem, disp, data, op, dt)
            as_writable(result)[: len(old)] = old
            yield from self.cpu.memcpy("user", 2 * len(data))
            return
        yield from self._op(win, t, {"k": "gacc", "off": disp, "op": op,
                                     "dt": dt}, data, result)

    def fetch_and_op(self, win: Window, value: int, t: int, disp: int,
                     op: str) -> Generator:
        if op not in _RMW_OF and op != "no_op":
            raise RmaError(
                f"fetch_and_op supports {sorted(_RMW_OF)}, not {op!r}")
        return (yield from self._rmw(win, op, value, None, t, disp))

    def compare_and_swap(self, win: Window, value: int, compare: int, t: int,
                         disp: int) -> Generator:
        return (yield from self._rmw(win, "cas", value, compare, t, disp))

    def _rmw(self, win: Window, op: str, value: int, compare: Optional[int],
             t: int, disp: int) -> Generator:
        self.metrics.counter("rma.rmw").incr()
        self.stats.trace("rma", "rmw", win=win.name, tgt=t, op=op)
        if t == win.comm.rank:
            old = win.mem.read_word(disp)
            win.mem.write_word(disp, _rmw_word(op, old, value, compare))
            return old
        rbuf = bytearray(8)
        rreq = yield from self._op(
            win, t, {"k": "rmw", "op": op, "off": disp, "val": value,
                     "cmp": compare}, b"", rbuf)
        yield from win._comm.wait(rreq)
        return int.from_bytes(rbuf, "little", signed=True)

    def rput(self, win: Window, buf, t: int, disp: int) -> Generator:
        data = as_bytes(buf)
        self.metrics.counter("rma.put").incr()
        self.stats.trace("rma", "rput", win=win.name, tgt=t, bytes=len(data))
        if t == win.comm.rank:
            yield from self._local_put(win, disp, data, None, 1)
            req = Request(self.env, "rma")
            req.complete(count=len(data))
            return req
        rreq = yield from self._op(win, t, {"k": "put", "off": disp}, data,
                                   bytearray(0))
        return rreq

    def rget(self, win: Window, buf, t: int, disp: int) -> Generator:
        n = len(as_writable(buf))
        self.metrics.counter("rma.get").incr()
        self.stats.trace("rma", "rget", win=win.name, tgt=t, bytes=n)
        if t == win.comm.rank:
            yield from self._local_get(win, buf, disp, n, None, 1)
            req = Request(self.env, "rma")
            req.complete(count=n)
            return req
        rreq = yield from self._op(win, t, {"k": "get", "off": disp, "n": n},
                                   b"", buf)
        return rreq

    # ------------------------------------------------------ synchronization
    def fence(self, win: Window) -> Generator:
        self.metrics.counter("rma.fence").incr()
        epoch = win.fence_epoch
        self.stats.trace("rma", "fence_enter", win=win.name, epoch=epoch)
        # every ack in hand => every op of mine is applied at its target;
        # the barrier then makes that true for all ranks at once
        pending, win._pending = win._pending, []
        win._pt_pending.clear()
        yield from win._comm.waitall(pending)
        yield from win._comm.barrier()
        win.fence_epoch += 1
        self.stats.trace("rma", "fence_exit", win=win.name, epoch=epoch)

    def post(self, win: Window, ranks: list[int]) -> Generator:
        self.metrics.counter("rma.post").incr()
        self.stats.trace("rma", "post", win=win.name, origins=len(ranks))
        win.exposure_origins = set(ranks)
        me = win.comm.rank
        for r in ranks:
            if r == me:
                win.post_tokens[me] = win.post_tokens.get(me, 0) + 1
                win._wake()
            else:
                yield from win._comm.send(b"", r, _POST_TAG)

    def start(self, win: Window, ranks: list[int]) -> Generator:
        self.stats.trace("rma", "start", win=win.name, targets=len(ranks))
        win.access_targets = set(ranks)
        me = win.comm.rank
        for r in sorted(ranks):
            if r == me:
                yield from self._wait_cond(
                    win, lambda: win.post_tokens.get(me, 0) > 0)
                win.post_tokens[me] -= 1
            else:
                yield from win._comm.recv(bytearray(0), source=r,
                                          tag=_POST_TAG)

    def complete(self, win: Window) -> Generator:
        pending, win._pending = win._pending, []
        win._pt_pending.clear()
        yield from win._comm.waitall(pending)
        me = win.comm.rank
        self.stats.trace("rma", "complete", win=win.name,
                         targets=len(win.access_targets))
        for t in sorted(win.access_targets):
            if t == me:
                win.complete_cums.setdefault(me, deque()).append(0)
                win._wake()
            else:
                yield from win._comm.send(b"", t, _COMPLETE_TAG)
        win.access_targets = set()

    def wait(self, win: Window) -> Generator:
        me = win.comm.rank
        for o in sorted(win.exposure_origins):
            if o == me:
                yield from self._wait_cond(
                    win, lambda: win.complete_cums.get(me))
                win.complete_cums[me].popleft()
            else:
                yield from win._comm.recv(bytearray(0), source=o,
                                          tag=_COMPLETE_TAG)
        win.exposure_origins = set()
        self.stats.trace("rma", "wait_done", win=win.name)

    def lock(self, win: Window, t: int, exclusive: bool) -> Generator:
        if t in win.passive:
            raise RmaError(f"target {t} already locked by this origin")
        self.metrics.counter("rma.lock").incr()
        lid = f"{self.backend.task_id}:{next(self._lock_ids)}"
        self.stats.trace("rma", "lock", win=win.name, tgt=t, lid=lid,
                         excl=exclusive)
        if t == win.comm.rank:
            if not win.ledger.try_acquire(lid, exclusive):
                win.ledger.enqueue(lid, exclusive, ("local",))
                yield from self._wait_cond(win, lambda: lid in win._granted)
                win._granted.discard(lid)
        else:
            rreq = yield from self._op(
                win, t, {"k": "lock", "lid": lid, "x": exclusive}, b"",
                bytearray(0))
            yield from win._comm.wait(rreq)  # the grant
        win.passive[t] = lid

    def flush(self, win: Window, t: int) -> Generator:
        """MPI_Win_flush: every ack in hand ⇒ every op applied/served."""
        if t not in win.passive:
            raise RmaError(f"flush({t}) outside a passive epoch")
        self.stats.trace("rma", "flush", win=win.name, tgt=t)
        yield from win._comm.waitall(win._pt_pending.pop(t, []))

    def unlock(self, win: Window, t: int) -> Generator:
        lid = win.passive.get(t)
        if lid is None:
            raise RmaError(f"target {t} is not locked by this origin")
        self.stats.trace("rma", "unlock", win=win.name, tgt=t, lid=lid)
        if t == win.comm.rank:
            grants = win.ledger.release(lid)
            yield from self._route_grants(win, grants)
        else:
            # flush: every op of this epoch acked (= applied) at target
            yield from win._comm.waitall(win._pt_pending.pop(t, []))
            rreq = yield from self._op(win, t, {"k": "unlock", "lid": lid},
                                       b"", bytearray(0))
            yield from win._comm.wait(rreq)
        del win.passive[t]

    def _route_grants(self, win: Window, grants) -> Generator:
        for lid2, _excl2, ref in grants:
            if ref[0] == "local":
                win._granted.add(lid2)
                win._wake()
            else:
                yield from win._comm.send(b"", ref[1],
                                          _REPLY_BASE + ref[2])

    def free(self, win: Window) -> Generator:
        yield from self.fence(win)
        win._stop = True
        evs, win._stop_evs = win._stop_evs, []
        for ev in evs:
            if not ev.triggered:
                ev.succeed()
        yield win._server  # join the window server
        del self._windows[win.name]
        self.stats.trace("rma", "win_free", win=win.name)

    # ------------------------------------------------------ window server
    def _server_loop(self, win: Window) -> Generator:
        """The target-side progress engine: serve requests until freed."""
        comm = win._comm
        be = self.backend
        buf = bytearray(len(win.mem) + 8192)
        while True:
            req = yield from comm.irecv(buf, ANY_SOURCE, _REQ_TAG)
            while not (req.done or req.needs_finalize):
                if win._stop:
                    removed = yield from comm.cancel(req)
                    if removed:
                        return
                    break  # matched mid-cancel: serve it out
                progressed = yield from be.progress("user")
                if req.done or req.needs_finalize or progressed:
                    continue
                ev = self.env.event()
                win._stop_evs.append(ev)
                yield AnyOf(self.env, [be.wait_rx(), req.changed(), ev])
            status = yield from comm.wait(req)
            hdr, payload = _dec(memoryview(buf)[: status.count])
            yield from self._serve(win, status.source, hdr, payload)

    def _serve(self, win: Window, src: int, hdr: dict,
               payload: bytes) -> Generator:
        comm = win._comm
        mem = win.mem
        kind = hdr["k"]
        rtag = _REPLY_BASE + hdr["rid"]
        if kind == "put":
            off = hdr["off"]
            mem.rma_epoch_dirty()
            memoryview(mem)[off : off + len(payload)] = payload
            yield from self.cpu.memcpy("user", len(payload))
            yield from comm.send(b"", src, rtag)
        elif kind == "sput":
            mem.rma_epoch_dirty()
            _StridedTarget(memoryview(mem), hdr["base"],
                           hdr["ranges"]).write(0, payload)
            yield from self.cpu.memcpy("user", len(payload))
            yield from comm.send(b"", src, rtag)
        elif kind == "get":
            off, n = hdr["off"], hdr["n"]
            data = bytes(memoryview(mem)[off : off + n])
            yield from self.cpu.memcpy("user", n)
            yield from comm.send(data, src, rtag)
        elif kind == "sget":
            base = hdr["base"]
            view = memoryview(mem)
            wire = b"".join(
                bytes(view[base + off : base + off + ln])
                for off, ln in hdr["ranges"])
            yield from self.cpu.memcpy("user", len(wire))
            yield from comm.send(wire, src, rtag)
        elif kind == "acc":
            _apply_acc(mem, hdr["off"], payload, hdr["op"], hdr["dt"])
            yield from self.cpu.memcpy("user", len(payload))
            yield from comm.send(b"", src, rtag)
        elif kind == "gacc":
            off = hdr["off"]
            old = bytes(memoryview(mem)[off : off + len(payload)])
            _apply_acc(mem, off, payload, hdr["op"], hdr["dt"])
            yield from self.cpu.memcpy("user", 2 * len(payload))
            yield from comm.send(old, src, rtag)
        elif kind == "rmw":
            old = mem.read_word(hdr["off"])
            mem.write_word(hdr["off"],
                           _rmw_word(hdr["op"], old, hdr["val"], hdr["cmp"]))
            yield from comm.send(
                (old & _WORD_MASK).to_bytes(8, "little"), src, rtag)
        elif kind == "lock":
            if win.ledger.try_acquire(hdr["lid"], hdr["x"]):
                yield from comm.send(b"", src, rtag)
            else:
                win.ledger.enqueue(hdr["lid"], hdr["x"],
                                   ("remote", src, hdr["rid"]))
        elif kind == "unlock":
            grants = win.ledger.release(hdr["lid"])
            yield from self._route_grants(win, grants)
            yield from comm.send(b"", src, rtag)
        else:
            raise RmaError(f"window server got unknown request {kind!r}")


def _rmw_word(op: str, old: int, value: int, compare: Optional[int]) -> int:
    if op == "sum":
        return old + value
    if op == "bor":
        return old | value
    if op == "replace":
        return value
    if op == "no_op":
        return old
    if op == "cas":
        return value if old == compare else old
    raise RmaError(f"unknown rmw op {op!r}")
