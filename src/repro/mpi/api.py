"""The user-facing MPI API.

User programs are generators running inside the simulation; every
potentially blocking call is used as ``yield from comm.send(...)``.
Nonblocking calls return :class:`~repro.mpi.request.Request` handles for
``comm.wait`` / ``comm.test`` / ``comm.waitall``.

Communicators carry *two* context ids — one for point-to-point, one for
collectives — so collective traffic can never match user receives, the
same trick real MPI implementations (including IBM's MPCI) use.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional, Sequence

import numpy as np

from repro.mpci import ANY_SOURCE, ANY_TAG
from repro.mpi import collectives as _coll
from repro.mpi.backends.base import Backend
from repro.mpi.datatypes import as_bytes, as_writable
from repro.mpi.protocol import BUFFERED, READY, STANDARD, SYNCHRONOUS
from repro.mpi.request import Request, Status

__all__ = ["Communicator", "MpiError"]


class MpiError(RuntimeError):
    """Invalid use of the MPI interface."""


class Communicator:
    """A group of tasks with isolated communication contexts."""

    def __init__(
        self,
        backend: Backend,
        group: Sequence[int],
        rank: int,
        context: tuple = (0,),
    ):
        self.backend = backend
        self.group = list(group)
        self.rank = rank
        self.context = context  # point-to-point context id
        self.coll_context = context + ("coll",)
        self._derived = 0
        #: per-communicator collective-algorithm overrides, e.g.
        #: ``comm.coll_algorithms["allreduce"] = "ring"`` (see
        #: :mod:`repro.mpi.coll_algorithms`)
        self.coll_algorithms: dict = {}
        if backend.task_id != self.group[rank]:
            raise MpiError("rank/group mismatch for this task")

    # ------------------------------------------------------------ basics
    @property
    def size(self) -> int:
        return len(self.group)

    @property
    def env(self):
        return self.backend.env

    def wtime(self) -> float:
        """MPI_Wtime: simulated seconds since the epoch."""
        return self.backend.env.now * 1e-6

    def _task_of(self, rank: int) -> int:
        if not (0 <= rank < self.size):
            raise MpiError(f"rank {rank} out of range for size {self.size}")
        return self.group[rank]

    def _src_pattern(self, source: int) -> int:
        if source == ANY_SOURCE:
            return ANY_SOURCE
        if not (0 <= source < self.size):
            raise MpiError(f"source rank {source} out of range")
        return source

    # -------------------------------------------------------- pt2pt sends
    def _isend(self, buf: Any, dest: int, tag: int, mode: str,
               blocking: bool, datatype=None, count: int = 1) -> Generator:
        if tag < 0:
            raise MpiError("tags must be non-negative")
        if datatype is not None:
            # derived datatype: pack into wire form (a real gather copy)
            data = datatype.pack(buf, count)
            yield from self.backend.cpu.memcpy("user", len(data))
        else:
            data = as_bytes(buf)
        req = yield from self.backend.isend(
            "user", data, self._task_of(dest), self.rank, tag, self.context,
            mode, blocking=blocking,
        )
        return req

    def isend(self, buf: Any, dest: int, tag: int = 0, datatype=None,
              count: int = 1) -> Generator:
        """MPI_Isend (standard mode); optional derived ``datatype``."""
        return (yield from self._isend(buf, dest, tag, STANDARD, blocking=False,
                                       datatype=datatype, count=count))

    def issend(self, buf: Any, dest: int, tag: int = 0) -> Generator:
        """MPI_Issend."""
        return (yield from self._isend(buf, dest, tag, SYNCHRONOUS, blocking=False))

    def irsend(self, buf: Any, dest: int, tag: int = 0) -> Generator:
        """MPI_Irsend."""
        return (yield from self._isend(buf, dest, tag, READY, blocking=False))

    def ibsend(self, buf: Any, dest: int, tag: int = 0) -> Generator:
        """MPI_Ibsend."""
        return (yield from self._isend(buf, dest, tag, BUFFERED, blocking=False))

    def send(self, buf: Any, dest: int, tag: int = 0, datatype=None,
             count: int = 1) -> Generator:
        """MPI_Send: returns when the user buffer is reusable."""
        req = yield from self._isend(buf, dest, tag, STANDARD, blocking=True,
                                     datatype=datatype, count=count)
        yield from self.backend.wait("user", req)

    def ssend(self, buf: Any, dest: int, tag: int = 0) -> Generator:
        """MPI_Ssend."""
        req = yield from self._isend(buf, dest, tag, SYNCHRONOUS, blocking=True)
        yield from self.backend.wait("user", req)

    def rsend(self, buf: Any, dest: int, tag: int = 0) -> Generator:
        """MPI_Rsend: erroneous (fatal) if the receive is not posted."""
        req = yield from self._isend(buf, dest, tag, READY, blocking=True)
        yield from self.backend.wait("user", req)

    def bsend(self, buf: Any, dest: int, tag: int = 0) -> Generator:
        """MPI_Bsend: completes locally against the attached buffer."""
        req = yield from self._isend(buf, dest, tag, BUFFERED, blocking=True)
        yield from self.backend.wait("user", req)

    def buffer_attach(self, nbytes: int) -> None:
        """MPI_Buffer_attach."""
        self.backend.attach_buffer(nbytes)

    def buffer_detach(self) -> int:
        """MPI_Buffer_detach."""
        return self.backend.detach_buffer()

    # ------------------------------------------------------ pt2pt receives
    def irecv(self, buf: Any, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              datatype=None, count: int = 1) -> Generator:
        """MPI_Irecv; with a derived ``datatype`` the wire image is
        unpacked (scatter copy) when the request is waited/tested."""
        if datatype is not None:
            wire = bytearray(datatype.size * count)
            view = as_writable(wire)
        else:
            view = as_writable(buf)
        req = yield from self.backend.irecv(
            "user", view, self._src_pattern(source), tag, self.context
        )
        if datatype is not None:
            req.user_ctx = ("unpack", datatype, buf, count, wire)
        return req

    def recv(self, buf: Any, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             datatype=None, count: int = 1) -> Generator:
        """MPI_Recv: returns the :class:`Status`."""
        req = yield from self.irecv(buf, source, tag, datatype, count)
        status = yield from self.wait(req)
        return status

    # --------------------------------------------------------- completion
    def _finish(self, req: Request) -> Generator:
        """API-layer completion work (derived-datatype unpack)."""
        if req.done and req.user_ctx is not None:
            kind, datatype, buf, count, wire = req.user_ctx
            req.user_ctx = None
            if kind == "unpack":
                datatype.unpack(bytes(wire[: req.status.count]), buf, count)
                yield from self.backend.cpu.memcpy("user", req.status.count)

    def wait(self, req: Request) -> Generator:
        """MPI_Wait."""
        status = yield from self.backend.wait("user", req)
        yield from self._finish(req)
        return status

    def test(self, req: Request) -> Generator:
        """MPI_Test: one progress pass; True if complete."""
        done = yield from self.backend.test("user", req)
        if done:
            yield from self._finish(req)
        return done

    def waitall(self, reqs: Iterable[Request]) -> Generator:
        """MPI_Waitall."""
        statuses = []
        for r in reqs:
            statuses.append((yield from self.wait(r)))
        return statuses

    def waitany(self, reqs: list[Request]) -> Generator:
        """MPI_Waitany: index + status of the first completed request."""
        if not reqs:
            raise MpiError("waitany needs at least one request")
        while True:
            for i, r in enumerate(reqs):
                if r.done or r.needs_finalize:
                    status = yield from self.wait(r)
                    return i, status
            progressed = yield from self.backend.progress("user")
            if progressed:
                continue
            yield self.env.any_of(
                [self.backend.wait_rx()] + [r.changed() for r in reqs]
            )

    def sendrecv(self, sendbuf: Any, dest: int, recvbuf: Any, source: int,
                 sendtag: int = 0, recvtag: int = ANY_TAG) -> Generator:
        """MPI_Sendrecv (deadlock-free combined operation)."""
        rreq = yield from self.irecv(recvbuf, source, recvtag)
        sreq = yield from self.isend(sendbuf, dest, sendtag)
        yield from self.backend.wait("user", sreq)
        return (yield from self.backend.wait("user", rreq))

    # ---------------------------------------------------------- probing
    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """MPI_Iprobe: progress once, then peek the early-arrival queue."""
        yield from self.backend.progress("user")
        entry, inspected = self.backend.early.peek_match(
            self.context, self._src_pattern(source), tag
        )
        yield from self.backend.cpu.execute(
            "user", self.backend.match_cost(inspected)
        )
        if entry is None:
            return None
        env_, msg = entry
        return Status(source=env_.src, tag=env_.tag, count=msg.size)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """MPI_Probe: block until a matching message is announced."""
        while True:
            status = yield from self.iprobe(source, tag)
            if status is not None:
                return status
            yield self.backend.wait_rx()

    # -------------------------------------------------------- collectives
    def barrier(self) -> Generator:
        """MPI_Barrier."""
        yield from _coll.barrier(self)

    def bcast(self, buf: Any, root: int = 0) -> Generator:
        """MPI_Bcast (in place: every rank passes the same-shaped buffer)."""
        algo = self.coll_algorithms.get("bcast")
        if algo is not None:
            from repro.mpi.coll_algorithms import BCAST_ALGORITHMS

            yield from BCAST_ALGORITHMS[algo](self, buf, root)
        else:
            yield from _coll.bcast(self, buf, root)

    def reduce(self, sendbuf: Any, recvbuf: Optional[Any], op: str = "sum",
               root: int = 0) -> Generator:
        """MPI_Reduce."""
        yield from _coll.reduce(self, sendbuf, recvbuf, op, root)

    def allreduce(self, sendbuf: Any, recvbuf: Any, op: str = "sum") -> Generator:
        """MPI_Allreduce."""
        algo = self.coll_algorithms.get("allreduce")
        if algo is not None:
            from repro.mpi.coll_algorithms import ALLREDUCE_ALGORITHMS

            yield from ALLREDUCE_ALGORITHMS[algo](self, sendbuf, recvbuf, op)
        else:
            yield from _coll.allreduce(self, sendbuf, recvbuf, op)

    def gather(self, sendbuf: Any, recvbuf: Optional[Any], root: int = 0) -> Generator:
        """MPI_Gather."""
        yield from _coll.gather(self, sendbuf, recvbuf, root)

    def allgather(self, sendbuf: Any, recvbuf: Any) -> Generator:
        """MPI_Allgather."""
        algo = self.coll_algorithms.get("allgather")
        if algo is not None:
            from repro.mpi.coll_algorithms import ALLGATHER_ALGORITHMS

            yield from ALLGATHER_ALGORITHMS[algo](self, sendbuf, recvbuf)
        else:
            yield from _coll.allgather(self, sendbuf, recvbuf)

    def scatter(self, sendbuf: Optional[Any], recvbuf: Any, root: int = 0) -> Generator:
        """MPI_Scatter."""
        yield from _coll.scatter(self, sendbuf, recvbuf, root)

    def alltoall(self, sendbuf: Any, recvbuf: Any) -> Generator:
        """MPI_Alltoall."""
        yield from _coll.alltoall(self, sendbuf, recvbuf)

    def alltoallv(self, sendbuf: Any, sendcounts: Sequence[int],
                  recvbuf: Any, recvcounts: Sequence[int]) -> Generator:
        """MPI_Alltoallv (byte-counts variant)."""
        yield from _coll.alltoallv(self, sendbuf, sendcounts, recvbuf, recvcounts)

    def gatherv(self, sendbuf: Any, recvbuf: Optional[Any],
                recvcounts: Optional[Sequence[int]] = None,
                root: int = 0) -> Generator:
        """MPI_Gatherv (byte-counts variant)."""
        yield from _coll.gatherv(self, sendbuf, recvbuf, recvcounts, root)

    def scatterv(self, sendbuf: Optional[Any],
                 sendcounts: Optional[Sequence[int]], recvbuf: Any,
                 root: int = 0) -> Generator:
        """MPI_Scatterv (byte-counts variant)."""
        yield from _coll.scatterv(self, sendbuf, sendcounts, recvbuf, root)

    def reduce_scatter(self, sendbuf: Any, recvbuf: Any,
                       op: str = "sum") -> Generator:
        """MPI_Reduce_scatter_block."""
        yield from _coll.reduce_scatter(self, sendbuf, recvbuf, op)

    def scan(self, sendbuf: Any, recvbuf: Any, op: str = "sum") -> Generator:
        """MPI_Scan (inclusive prefix reduction)."""
        yield from _coll.scan(self, sendbuf, recvbuf, op)

    # ------------------------------------------------- request management
    def cancel(self, req: Request) -> Generator:
        """MPI_Cancel for a pending *receive*: remove it from the posted
        queue.  Succeeds only if the receive has not begun matching."""
        if req.kind != "recv":
            raise MpiError("only receive requests can be cancelled here")
        yield from self.backend.cpu.execute("user", self.backend.params.mpi_call_us)
        if req.done or req.needs_finalize:
            return False
        removed = self.backend.posted.remove(req)
        if removed:
            req.cancelled = True
            req.complete(count=0)
        return removed

    # ------------------------------------------------------- one-sided
    def win_create(self, buf: Any) -> Generator:
        """MPI_Win_create (collective): expose ``buf`` — an int size, a
        ``WindowBuffer``, or any bytes-like — for one-sided access.
        Returns a :class:`repro.mpi.rma.Window`."""
        from repro.mpi import rma

        return (yield from rma.win_create(self, buf))

    def send_init(self, buf: Any, dest: int, tag: int = 0) -> "PersistentRequest":
        """MPI_Send_init: a persistent standard-mode send."""
        return PersistentRequest(self, "send", buf, dest, tag)

    def recv_init(self, buf: Any, source: int = ANY_SOURCE,
                  tag: int = ANY_TAG) -> "PersistentRequest":
        """MPI_Recv_init: a persistent receive."""
        return PersistentRequest(self, "recv", buf, source, tag)

    # ---------------------------------------------------- comm management
    def dup(self) -> "Communicator":
        """MPI_Comm_dup: same group, fresh contexts.

        Deterministic context derivation keeps all ranks consistent as
        long as they perform communicator operations in the same order
        (an MPI requirement anyway).
        """
        self._derived += 1
        ctx = self.context + ("dup", self._derived)
        return Communicator(self.backend, self.group, self.rank, ctx)

    def split(self, color: int, key: int = 0) -> Optional["Communicator"]:
        """MPI_Comm_split (deterministic, no communication needed here
        because group membership is derivable from (color, key, rank)
        which every rank computes identically... only for the local
        callers: each rank must call with its own color/key).

        NOTE: in this simulation split is computed via the collective
        :func:`repro.mpi.collectives.split_exchange`; use
        ``yield from comm.split_collective(color, key)`` in programs.
        """
        raise MpiError("use 'yield from comm.split_collective(color, key)'")

    def split_collective(self, color: int, key: int = 0) -> Generator:
        """MPI_Comm_split as the collective it really is."""
        return (yield from _coll.split(self, color, key))


class PersistentRequest:
    """MPI persistent communication request (MPI_Send_init/Recv_init).

    ``start()`` begins one instance of the operation; ``wait()``
    completes it; the handle is reusable (start/wait repeatedly).  The
    classic use is a fixed communication pattern in an iteration loop —
    the argument processing is paid once.
    """

    def __init__(self, comm: Communicator, kind: str, buf: Any, peer: int,
                 tag: int):
        self.comm = comm
        self.kind = kind
        self.buf = buf
        self.peer = peer
        self.tag = tag
        self._active: Optional[Request] = None

    @property
    def active(self) -> bool:
        return self._active is not None and not self._active.done

    def start(self) -> Generator:
        """MPI_Start."""
        if self.active:
            raise MpiError("persistent request already active")
        if self.kind == "send":
            self._active = yield from self.comm.isend(self.buf, self.peer, self.tag)
        else:
            self._active = yield from self.comm.irecv(self.buf, self.peer, self.tag)

    def wait(self) -> Generator:
        """MPI_Wait on the active instance; re-arms for the next start."""
        if self._active is None:
            raise MpiError("persistent request was never started")
        status = yield from self.comm.wait(self._active)
        self._active = None
        return status
