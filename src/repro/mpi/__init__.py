"""MPI — the semantics layer (paper Fig. 1a/1c top box).

A deliberately MPI-shaped API (four send modes, blocking/nonblocking,
wildcards, communicators, collectives) implemented over two pluggable
transports:

* the **native** backend: thick MPCI over the Pipes byte stream — extra
  staging copies, interrupt hysteresis (the stack the paper competes
  with), and
* the **MPI-LAPI** backend in its three generations — ``base``,
  ``counters``, ``enhanced`` (paper §4–5).

User code runs inside the simulator, so every potentially blocking call
is a generator: ``yield from comm.send(...)``.
"""

from repro.mpci.match import ANY_SOURCE, ANY_TAG
from repro.mpi.api import Communicator, MpiError, PersistentRequest
from repro.mpi.derived import Contiguous, Indexed, Vector
from repro.mpi.topology import CartComm, dims_create
from repro.mpi.protocol import (
    BUFFERED,
    EAGER,
    READY,
    RENDEZVOUS,
    STANDARD,
    SYNCHRONOUS,
    select_protocol,
)
from repro.mpi.request import Request, Status
from repro.mpi.rma import RmaError, Window, WindowBuffer, win_create

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "BUFFERED",
    "CartComm",
    "Communicator",
    "Contiguous",
    "EAGER",
    "Indexed",
    "MpiError",
    "PersistentRequest",
    "READY",
    "RENDEZVOUS",
    "Request",
    "STANDARD",
    "Status",
    "SYNCHRONOUS",
    "Vector",
    "Window",
    "WindowBuffer",
    "RmaError",
    "dims_create",
    "select_protocol",
    "win_create",
]
