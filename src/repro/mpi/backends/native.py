"""The native MPI stack: thick MPCI over the Pipes byte stream (Fig 1a).

Cost structure (paper §2): for the first and last 16 KB of every message
the data is staged through the pipe buffers — a copy user→pipe plus a
copy pipe→HAL on the send side, mirrored on the receive side.  Bytes in
the middle of larger messages stream directly.  In interrupt mode, the
interrupt handler uses the *hysteresis* dwell the paper blames for the
native stack's poor Fig 13 latency: after draining, it spins for a dwell
window hoping to coalesce further packets, growing the window while
traffic continues.
"""

from __future__ import annotations

import itertools
from typing import Any, Generator, Optional

from repro.mpci import Envelope
from repro.mpi.backends.base import Backend, InMsg, MpiFatal, PendingSend
from repro.mpi.protocol import BUFFERED, EAGER, READY
from repro.mpi.request import Request
from repro.pipes import PipeEndpoint
from repro.sim import Event, Store

__all__ = ["NativeBackend"]


class _Frame:
    """Receive-side assembly state for one in-flight MPCI frame."""

    __slots__ = ("msg", "received", "target_view")

    def __init__(self, msg: InMsg, target_view: Optional[memoryview]):
        self.msg = msg
        self.received = 0
        self.target_view = target_view  # None => assemble into msg.ea_buf


class NativeBackend(Backend):
    """MPCI over Pipes."""

    name = "native"

    def __init__(self, env, cpu, params, stats, task_id, num_tasks,
                 pipes: PipeEndpoint):
        super().__init__(env, cpu, params, stats, task_id, num_tasks)
        self.pipes = pipes
        pipes.on_packet = self._on_packet
        self._fids = itertools.count()
        #: open receive frames keyed (src_task, fid)
        self._frames: dict[tuple[int, int], _Frame] = {}
        #: serialises all outgoing frames (matching order == enqueue order)
        self._txq = Store(env, name=f"nat{task_id}.txq")
        self._tx_bytes_queued = 0
        self._tx_waiters: list[Event] = []
        env.process(self._tx_engine(), name=f"nat{task_id}.tx")

        # interrupt-mode state
        self._hysteresis_us = params.hysteresis_initial_us

    # ---------------------------------------------------------- plumbing
    def progress(self, thread: str) -> Generator:
        before = self.pipes.rx_pending
        yield from self.pipes.dispatch(thread)
        return before

    def wait_rx(self) -> Event:
        return self.pipes.wait_rx()

    def set_interrupt_mode(self, enabled: bool) -> None:
        adapter = self.pipes.hal.adapter
        if enabled:
            adapter.set_interrupt_handler(lambda _a: self._isr())
        adapter.set_interrupt_mode(enabled)

    def make_rma_engine(self):
        from repro.mpi.rma import NativeRmaEngine

        return NativeRmaEngine(self)

    def _isr(self) -> Generator:
        """Interrupt handler with the paper's hysteresis dwell."""
        thread = f"irq{self.task_id}"
        p = self.params
        yield from self.pipes.dispatch(thread)
        while True:
            # dwell: spin on the CPU hoping more packets arrive
            self.stats.hysteresis_dwells += 1
            self.stats.trace("cpu", "hysteresis_dwell", us=self._hysteresis_us,
                             thr=thread)
            yield from self.cpu.execute(thread, self._hysteresis_us)
            if self.pipes.rx_pending == 0:
                self._hysteresis_us = p.hysteresis_initial_us
                return
            # traffic kept coming: process it and dwell longer next round
            self._hysteresis_us = min(
                self._hysteresis_us * p.hysteresis_growth, p.hysteresis_max_us
            )
            yield from self.pipes.dispatch(thread)

    # ------------------------------------------------------------- sends
    def isend(self, thread, data: bytes, dst_task: int, src_rank: int, tag: int,
              context: int, mode: str, blocking: bool = False) -> Generator:
        p = self.params
        yield from self.cpu.execute(thread, p.mpi_call_us + p.mpi_lock_us)
        req = Request(self.env, "send")
        size = len(data)
        proto = self.select_protocol(mode, size)
        sid = self.next_sid()
        mid = self.mint_mid(sid)
        mseq = self.next_mseq(dst_task)
        want_bfree = mode == BUFFERED
        if want_bfree:
            self._reserve_attached(size, sid)
            yield from self.cpu.memcpy(thread, size)
        self.stats.msgs_sent += 1

        meta = {
            "ctx": context,
            "srank": src_rank,
            "tag": tag,
            "mseq": mseq,
            "size": size,
            "mode": mode,
            "sid": sid,
            "mid": mid,
            "bfree": want_bfree,
        }

        if proto == EAGER:
            self.stats.eager_sends += 1
            meta["t"] = "eager"
            # MPCI copies the (small) message into the pipe buffer now;
            # the send is complete as far as the user buffer goes.
            yield from self.cpu.memcpy(thread, size)
            yield from self._throttle(size)
            self._txq.put(("frame", dst_task, meta, data, size, size, None))
            req.complete(count=size)
        else:
            self.stats.rendezvous_started += 1
            meta["t"] = "rts"
            ps = PendingSend(data, dst_task, meta, req, blocking)
            self.pending_sends[sid] = ps
            self._txq.put(("frame", dst_task, dict(meta), b"", 0, 0, None))
            if want_bfree:
                req.complete(count=size)
            # data goes out when the CTS arrives (via the tx engine)
        return req

    def _throttle(self, size: int) -> Generator:
        """Model the finite pipe send buffer: too many queued-but-unsent
        bytes block further eager sends."""
        while self._tx_bytes_queued + size > self.params.pipe_buffer_bytes and \
                self._tx_bytes_queued > 0:
            ev = self.env.event()
            self._tx_waiters.append(ev)
            yield self.env.any_of([ev, self.wait_rx()])
            yield from self.progress("user")
        self._tx_bytes_queued += size

    def _tx_engine(self) -> Generator:
        p = self.params
        while True:
            item = yield self._txq.get()
            kind = item[0]
            if kind == "frame":
                _, dst, meta, data, bpre, bsuf, on_out = item
                fid = next(self._fids)
                yield from self.pipes.send_frame(
                    "user", dst, meta, data,
                    buffered_prefix=bpre, buffered_suffix=bsuf,
                    on_payload_out=on_out, fid=fid, mid=meta.get("mid"),
                )
                self._tx_bytes_queued -= len(data) if meta.get("t") == "eager" else 0
                waiters, self._tx_waiters = self._tx_waiters, []
                for ev in waiters:
                    if not ev.triggered:
                        ev.succeed()
            elif kind == "rdata":
                _, ps = item
                yield from self._send_rdata(ps)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown tx item {kind!r}")

    def _send_rdata(self, ps: PendingSend) -> Generator:
        """Second rendezvous phase: stage head/tail 16 KB, stream middle."""
        p = self.params
        size = len(ps.data)
        head = min(p.pipe_copy_window, size)
        tail = min(p.pipe_copy_window, size - head)
        # MPCI copies the staged ranges into the pipe buffer
        yield from self.cpu.memcpy("user", head + tail)
        meta = {"t": "rdata", "sid": ps.uhdr["sid"], "size": size,
                "bfree": ps.uhdr["bfree"], "mid": ps.uhdr.get("mid")}
        out_ev = self.env.event()
        fid = next(self._fids)
        yield from self.pipes.send_frame(
            "user", ps.dst_task, meta, ps.data,
            buffered_prefix=head, buffered_suffix=tail,
            on_payload_out=out_ev, fid=fid, mid=meta.get("mid"),
        )
        req = ps.req
        if not req.done:
            out_ev._add_callback(
                lambda _e: req.complete(count=size) if not req.done else None
            )
        elif not out_ev.triggered:
            out_ev.defuse()  # nobody needs it
        self.pending_sends.pop(ps.uhdr["sid"], None)

    # ----------------------------------------------------------- receives
    def irecv(self, thread, view, src_pattern: int, tag_pattern: int,
              context: int) -> Generator:
        p = self.params
        yield from self.cpu.execute(thread, p.mpi_call_us + p.mpi_lock_us)
        req = Request(self.env, "recv")
        req.ctx = view
        entry, inspected = self.early.match(context, src_pattern, tag_pattern)
        self._track_unexpected()
        yield from self.cpu.execute(thread, self.match_cost(inspected))
        if entry is None:
            # mirror of the dispatcher-side re-check in _match: a message
            # may have entered the early queue while the match cost was
            # charged; the re-check and the post must not be separated
            # by a yield or the pair strands
            entry, _ = self.early.match(context, src_pattern, tag_pattern)
        if entry is None:
            self.posted.post(context, src_pattern, tag_pattern, req)
            self.stats.matches_posted += 1
            return req

        _env, msg = entry
        self._check_fits(msg, view)
        if msg.proto == "rts":
            msg.req = req
            msg.matched = True
            self.bound_recvs[(msg.src_task, msg.sid)] = (req, msg.envelope)
            self._txq.put(("frame", msg.src_task,
                           {"t": "cts", "sid": msg.sid, "mid": msg.mid},
                           b"", 0, 0, None))
        elif msg.assembled:
            yield from self._copy_ea_to_user(thread, msg, req)
        else:
            msg.req = req
        return req

    def _check_fits(self, msg: InMsg, view) -> None:
        if msg.size > len(view):
            raise MpiFatal(
                f"message of {msg.size}B truncates receive buffer of "
                f"{len(view)}B (tag {msg.envelope.tag})"
            )

    def _copy_ea_to_user(self, thread: str, msg: InMsg, req: Request) -> Generator:
        view = req.ctx
        # buffer-to-buffer move; a bare bytearray slice would materialise
        # a temporary copy first
        view[: msg.size] = memoryview(msg.ea_buf)[: msg.size]
        yield from self.cpu.memcpy(thread, msg.size)
        self._free_ea(msg.size)
        req.complete(source=msg.envelope.src, tag=msg.envelope.tag, count=msg.size)
        self.stats.msgs_received += 1

    # ------------------------------------------------ stream delivery
    def _on_packet(self, thread: str, src: int, header: dict[str, Any],
                   payload: bytes) -> Generator:
        """In-order packet delivery from the Pipes layer."""
        meta = header.get("meta")
        if meta is not None:
            yield from self._on_frame_start(thread, src, header, meta, payload)
        else:
            frame = self._frames.get((src, header["fid"]))
            if frame is None:
                raise MpiFatal(f"continuation packet for unknown frame {header['fid']}")
            yield from self._frame_data(thread, frame, header, payload)

    def _on_frame_start(self, thread: str, src: int, header: dict[str, Any],
                        meta: dict[str, Any], payload: bytes) -> Generator:
        t = meta["t"]
        if t in ("eager", "rts"):
            msg = InMsg(
                Envelope(meta["ctx"], meta["srank"], meta["tag"]),
                src, meta["mseq"], meta["size"], t, meta["mode"],
                meta["sid"], meta["bfree"], mid=meta.get("mid"),
            )
            if t == "rts":
                yield from self._match(thread, msg)
                if msg.req is not None and msg.matched:
                    self.bound_recvs[(src, msg.sid)] = (msg.req, msg.envelope)
                    self._txq.put(("frame", src,
                                   {"t": "cts", "sid": msg.sid, "mid": msg.mid},
                                   b"", 0, 0, None))
                return
            yield from self._match(thread, msg)
            if msg.req is None or not msg.matched:
                msg.ea_buf = self._alloc_ea(msg.size)
                frame = _Frame(msg, None)
            else:
                frame = _Frame(msg, msg.req.ctx)
            self._frames[(src, header["fid"])] = frame
            yield from self._frame_data(thread, frame, header, payload)
        elif t == "cts":
            ps = self.pending_sends.get(meta["sid"])
            if ps is not None:
                self._txq.put(("rdata", ps))
        elif t == "rdata":
            bound = self.bound_recvs.pop((src, meta["sid"]), None)
            if bound is None:
                raise MpiFatal(f"rendezvous data for unknown receive (sid {meta['sid']})")
            req, envelope = bound
            msg = InMsg(envelope, src, -1, meta["size"], "rdata", "standard",
                        meta["sid"], meta["bfree"], mid=meta.get("mid"))
            msg.req = req
            msg.matched = True
            frame = _Frame(msg, req.ctx)
            self._frames[(src, header["fid"])] = frame
            yield from self._frame_data(thread, frame, header, payload)
        elif t == "bfree":
            self._release_attached(meta["sid"])
        else:  # pragma: no cover - defensive
            raise MpiFatal(f"unknown frame type {t!r}")

    def _match(self, thread: str, msg: InMsg) -> Generator:
        """Matching runs in dispatcher context (a generator here, so the
        cost is charged directly rather than via the LAPI deferral)."""
        p = self.params
        handle, inspected = self.posted.match(msg.envelope)
        yield from self.cpu.execute(thread, self.match_cost(inspected) + p.mpi_lock_us)
        if handle is None:
            # a receive may have been posted by another process on this
            # node while the match cost was being charged; re-checking
            # here keeps the decision and the early-queue insertion
            # atomic (no yield between them)
            handle, _ = self.posted.match(msg.envelope)
        if handle is not None:
            self.stats.trace("mpci", "matched_posted", proto=msg.proto,
                             tag=msg.envelope.tag, mseq=msg.mseq, mid=msg.mid)
            req: Request = handle
            self._check_fits(msg, req.ctx)
            msg.req = req
            msg.matched = True
        elif msg.mode == READY:
            raise MpiFatal(
                f"ready-mode message (tag {msg.envelope.tag}) arrived with "
                "no matching receive posted"
            )
        else:
            self.stats.trace("mpci", "early_arrival", proto=msg.proto,
                             tag=msg.envelope.tag, mseq=msg.mseq, mid=msg.mid)
            self.early.add(msg.envelope, msg)
            self._track_unexpected()

    def _frame_data(self, thread: str, frame: _Frame, header: dict[str, Any],
                    payload: bytes) -> Generator:
        """Copy one packet's payload to its destination and track progress.

        Every packet pays one copy here: staged ("buffered") packets model
        pipe-buffer→user, streamed ones HAL-buffer→user/EA.
        """
        msg = frame.msg
        if payload:
            off = header["foff"]
            if frame.target_view is not None:
                frame.target_view[off : off + len(payload)] = payload
            else:
                msg.ea_buf[off : off + len(payload)] = payload
            yield from self.cpu.memcpy(thread, len(payload))
            frame.received += len(payload)
        if frame.received >= msg.size:
            self._frames.pop((msg.src_task, header["fid"]), None)
            self._complete_msg(msg)

    def _complete_msg(self, msg: InMsg) -> None:
        """Native completion happens right in the dispatcher — the native
        stack has no separate completion thread (its Fig 13 problem is
        hysteresis, not context switches)."""
        self.stats.trace("mpci", "msg_complete", sid=msg.sid, bytes=msg.size,
                         mid=msg.mid)
        msg.assembled = True
        req = msg.req
        if req is not None:
            if msg.ea_buf is None:
                req.complete(source=msg.envelope.src, tag=msg.envelope.tag,
                             count=msg.size)
                self.stats.msgs_received += 1
            else:
                backend = self

                def finalize(thread: str, msg=msg, req=req) -> Generator:
                    yield from backend._copy_ea_to_user(thread, msg, req)

                req.set_finalizer(finalize)
        if msg.want_bfree:
            self._txq.put(("frame", msg.src_task,
                           {"t": "bfree", "sid": msg.sid, "mid": msg.mid},
                           b"", 0, 0, None))
