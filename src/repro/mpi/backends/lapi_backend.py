"""MPI-LAPI: the paper's new stack (Figs. 3–9) in its three generations.

Variant semantics (paper §4–5):

``base``
    Every message completion — marking a receive complete, acknowledging
    a request-to-send, launching rendezvous data after the ack — runs in
    a LAPI *completion handler* on its separate thread, paying a context
    switch each way.

``counters``
    Eager-protocol data completions are signalled through LAPI *target
    counters* whose addresses were exchanged at initialisation; the
    dispatcher increments them in-context, so no thread switch.  The
    rendezvous control steps still need completion handlers (receiving a
    request-to-send does not mean the data may be sent, §5.2).

``enhanced``
    LAPI is extended to run predefined completion handlers in the
    dispatcher's own context (§5.3); nothing pays the thread switch.
"""

from __future__ import annotations

from collections import deque
from typing import Generator, Optional

from repro.lapi import Lapi
from repro.lapi.buffers import ByteTarget, NullTarget
from repro.lapi.counters import Counter
from repro.mpci import Envelope
from repro.mpi.backends.base import Backend, InMsg, MpiFatal, PendingSend
from repro.mpi.protocol import BUFFERED, EAGER, READY
from repro.mpi.request import Request
from repro.sim import Event, Store

__all__ = ["LapiBackend", "VARIANTS"]

VARIANTS = ("base", "counters", "enhanced")


class _Slot:
    """One completion-counter pool slot (Counters variant)."""

    __slots__ = ("backend", "cid", "cntr", "fifo", "_busy")

    def __init__(self, backend: "LapiBackend", cid: int, cntr: Counter):
        self.backend = backend
        self.cid = cid
        self.cntr = cntr
        self.fifo: deque[InMsg] = deque()
        self._busy = False
        cntr.subscribe(self._on_change)

    def bind(self, msg: InMsg) -> None:
        self.fifo.append(msg)
        self._drain()

    def _on_change(self, _cntr: Counter) -> None:
        self._drain()

    def _drain(self) -> None:
        if self._busy:
            return
        self._busy = True
        try:
            while self.cntr.value > 0 and self.fifo:
                self.cntr.sub(1)
                self.backend._on_data_complete(self.fifo.popleft())
        finally:
            self._busy = False


class LapiBackend(Backend):
    """MPCI-thin over LAPI (paper Fig. 1c)."""

    def __init__(self, env, cpu, params, stats, task_id, num_tasks,
                 lapi: Lapi, variant: str = "enhanced"):
        super().__init__(env, cpu, params, stats, task_id, num_tasks)
        if variant not in VARIANTS:
            raise ValueError(f"unknown MPI-LAPI variant {variant!r}")
        if variant == "enhanced" and not lapi.enhanced:
            raise ValueError("enhanced variant requires an enhanced LAPI")
        if variant != "enhanced" and lapi.enhanced:
            raise ValueError(f"{variant} variant must run on stock LAPI")
        self.lapi = lapi
        self.variant = variant
        self.name = f"lapi-{variant}"

        # matching-order state (announcements processed in per-source
        # send order so MPI's non-overtaking rule survives packet races)
        self._expected: dict[int, int] = {}
        self._pending_ann: dict[int, dict[int, InMsg]] = {}

        # Counters variant: per-source completion-counter pools
        self._pools: dict[int, list[_Slot]] = {}
        self._slot_by_id: dict[int, _Slot] = {}
        if variant == "counters":
            for src in range(num_tasks):
                if src == task_id:
                    continue
                slots = []
                for k in range(params.counter_pool_slots):
                    cid, cntr = lapi.create_counter(f"pool[{src}][{k}]")
                    slot = _Slot(self, cid, cntr)
                    self._slot_by_id[cid] = slot
                    slots.append(slot)
                self._pools[src] = slots
        #: sender-side view of each peer's pool counter ids (filled by wire())
        self._peer_slot_ids: dict[int, list[int]] = {}

        self._ctrlq = Store(env, name=f"be{task_id}.ctrl")
        env.process(self._ctrl_engine(), name=f"be{task_id}.ctrl")

        lapi.register_handler("mpi_eager", self._hh_eager)
        lapi.register_handler("mpi_rts", self._hh_rts)
        lapi.register_handler("mpi_rts_ack", self._hh_rts_ack)
        lapi.register_handler("mpi_rdata", self._hh_rdata)
        lapi.register_handler("mpi_bfree", self._hh_bfree)

    # ------------------------------------------------------------ wiring
    def wire(self, peers: dict[int, "LapiBackend"]) -> None:
        """Exchange counter-pool addresses (paper §5.2: done at init)."""
        if self.variant != "counters":
            return
        for dst, peer in peers.items():
            if dst == self.task_id:
                continue
            self._peer_slot_ids[dst] = [s.cid for s in peer._pools[self.task_id]]

    # ---------------------------------------------------------- plumbing
    def progress(self, thread: str) -> Generator:
        return (yield from self.lapi.dispatch(thread))

    def wait_rx(self) -> Event:
        return self.lapi.hal.wait_rx()

    def set_interrupt_mode(self, enabled: bool) -> None:
        self.lapi.senv("INTERRUPT_SET", enabled)

    def make_rma_engine(self):
        from repro.mpi.rma import LapiRmaEngine

        return LapiRmaEngine(self)

    def _ctrl_engine(self) -> Generator:
        """Sends control messages queued from synchronous contexts."""
        while True:
            dst, hh, uhdr = yield self._ctrlq.get()
            yield from self.lapi.amsend("user", dst, hh, uhdr,
                                        mid=uhdr.get("mid"))

    # ------------------------------------------------------------- sends
    def isend(self, thread, data: bytes, dst_task: int, src_rank: int, tag: int,
              context: int, mode: str, blocking: bool = False) -> Generator:
        p = self.params
        yield from self.cpu.execute(thread, p.mpi_call_us + p.mpi_lock_us)
        req = Request(self.env, "send")
        size = len(data)
        proto = self.select_protocol(mode, size)
        sid = self.next_sid()
        mid = self.mint_mid(sid)
        mseq = self.next_mseq(dst_task)
        want_bfree = mode == BUFFERED
        if want_bfree:
            # Fig 8: copy the message into the user-attached buffer first
            self._reserve_attached(size, sid)
            yield from self.cpu.memcpy(thread, size)
        self.stats.msgs_sent += 1

        uhdr = {
            "ctx": context,
            "srank": src_rank,
            "tag": tag,
            "mseq": mseq,
            "size": size,
            "mode": mode,
            "sid": sid,
            "mid": mid,
            "bfree": want_bfree,
        }

        if proto == EAGER:
            self.stats.eager_sends += 1
            uhdr["t"] = "eager"
            tgt_cntr_id = None
            if self.variant == "counters":
                pool = self._peer_slot_ids[dst_task]
                tgt_cntr_id = pool[mseq % len(pool)]
            org = Counter(self.env, "org")
            yield from self.lapi.amsend(
                thread, dst_task, "mpi_eager", uhdr, data,
                tgt_cntr_id=tgt_cntr_id, org_cntr=org, mid=mid,
            )
            if want_bfree:
                req.complete(count=size)  # library owns the staged copy
            else:
                org.changed()._add_callback(
                    lambda _e: req.complete(count=size) if not req.done else None
                )
        else:
            self.stats.rendezvous_started += 1
            uhdr["t"] = "rts"
            uhdr["blocking"] = blocking and not want_bfree
            ps = PendingSend(data, dst_task, uhdr, req, uhdr["blocking"])
            self.pending_sends[sid] = ps
            yield from self.lapi.amsend(thread, dst_task, "mpi_rts", uhdr,
                                        mid=mid)
            if want_bfree:
                req.complete(count=size)
            if ps.blocking:
                # Fig 6: wait for the ack here, then push the data from
                # the user thread
                yield from self._wait_acked(thread, ps)
                yield from self._launch_rdata(thread, ps)
        return req

    def _wait_acked(self, thread: str, ps: PendingSend) -> Generator:
        while not ps.acked:
            progressed = yield from self.progress(thread)
            if ps.acked:
                break
            if progressed:
                continue
            self.stats.polls += 1
            yield from self.cpu.execute(thread, self.params.poll_check_us)
            if ps.acked:
                break
            ev = self.env.event()
            ps.waiter = ev
            yield self.env.any_of([self.wait_rx(), ev])

    def _launch_rdata(self, thread: str, ps: PendingSend) -> Generator:
        """Second rendezvous phase: ship the message like an eager send."""
        sid = ps.uhdr["sid"]
        org = Counter(self.env, "org")
        yield from self.lapi.amsend(
            thread,
            ps.dst_task,
            "mpi_rdata",
            {"sid": sid, "slot": ps.recv_slot, "size": len(ps.data),
             "bfree": ps.uhdr["bfree"], "mid": ps.uhdr.get("mid")},
            ps.data,
            tgt_cntr_id=ps.recv_slot,
            org_cntr=org,
            mid=ps.uhdr.get("mid"),
        )
        req = ps.req
        if not req.done:
            n = len(ps.data)
            org.changed()._add_callback(
                lambda _e: req.complete(count=n) if not req.done else None
            )
        self.pending_sends.pop(sid, None)

    def _cmpl_launch_rdata(self, lapi: Lapi, thread: str, ps: PendingSend) -> Generator:
        """Fig 7: nonblocking rendezvous data launched from the completion
        handler of the rts-ack message."""
        yield from self._launch_rdata(thread, ps)

    # ----------------------------------------------------------- receives
    def irecv(self, thread, view, src_pattern: int, tag_pattern: int,
              context: int) -> Generator:
        p = self.params
        yield from self.cpu.execute(thread, p.mpi_call_us + p.mpi_lock_us)
        req = Request(self.env, "recv")
        req.ctx = view
        entry, inspected = self.early.match(context, src_pattern, tag_pattern)
        self._track_unexpected()
        yield from self.cpu.execute(thread, self.match_cost(inspected))
        if entry is None:
            self.posted.post(context, src_pattern, tag_pattern, req)
            self.stats.matches_posted += 1
            return req

        env_, msg = entry
        self._check_fits(msg, view)
        if msg.proto == "rts":
            # Fig 9: acknowledge the request-to-send now that the receive
            # is posted
            msg.req = req
            msg.matched = True
            self.bound_recvs[(msg.src_task, msg.sid)] = (req, msg.envelope)
            slot_cid = self._alloc_rdata_slot(msg)
            yield from self.lapi.amsend(
                thread, msg.src_task, "mpi_rts_ack",
                {"sid": msg.sid, "slot": slot_cid, "mid": msg.mid},
                mid=msg.mid,
            )
        elif msg.assembled:
            # message already sits complete in the early-arrival buffer
            yield from self._copy_ea_to_user(thread, msg, req)
        else:
            # data still arriving into the EA buffer; finalize on completion
            msg.req = req
        return req

    def _alloc_rdata_slot(self, msg: InMsg) -> Optional[int]:
        if self.variant != "counters":
            return None
        pool = self._pools[msg.src_task]
        return pool[msg.mseq % len(pool)].cid

    def _check_fits(self, msg: InMsg, view) -> None:
        if msg.size > len(view):
            raise MpiFatal(
                f"message of {msg.size}B truncates receive buffer of "
                f"{len(view)}B (tag {msg.envelope.tag})"
            )

    def _copy_ea_to_user(self, thread: str, msg: InMsg, req: Request) -> Generator:
        view = req.ctx
        # buffer-to-buffer move; a bare bytearray slice would materialise
        # a temporary copy first
        view[: msg.size] = memoryview(msg.ea_buf)[: msg.size]
        yield from self.cpu.memcpy(thread, msg.size)
        self._free_ea(msg.size)
        req.complete(source=msg.envelope.src, tag=msg.envelope.tag, count=msg.size)
        self.stats.msgs_received += 1

    # --------------------------------------------- matching (sync, in HH)
    def _announce(self, msg: InMsg) -> None:
        """Process message announcements in per-source send order.

        A first packet that raced ahead of its flow predecessors is
        *deferred*: its data goes to an EA buffer and its matching waits
        until the gap fills, preserving MPI's non-overtaking rule.
        """
        src = msg.src_task
        expected = self._expected.setdefault(src, 0)
        if msg.mseq != expected:
            self.stats.deferred_announcements += 1
            self.stats.trace("mpci", "announce_deferred", mseq=msg.mseq,
                             expected=expected, mid=msg.mid)
            self._pending_ann.setdefault(src, {})[msg.mseq] = msg
            return
        self._match_now(msg, deferred=False)
        self._expected[src] = expected + 1
        pend = self._pending_ann.get(src)
        while pend:
            nxt = self._expected[src]
            nxt_msg = pend.pop(nxt, None)
            if nxt_msg is None:
                break
            self._match_now(nxt_msg, deferred=True)
            self._expected[src] = nxt + 1

    def _match_now(self, msg: InMsg, deferred: bool) -> None:
        """Try the posted-receive queue; fall back to the EA queue.

        For a matched request-to-send: when matched directly inside its
        own header handler (``deferred=False``), the acknowledgement is
        the job of the completion handler the header handler installs
        (paper Fig 4c); a deferred match sends it via the control engine.
        """
        p = self.params
        handle, inspected = self.posted.match(msg.envelope)
        self.lapi.add_dispatch_charge(self.match_cost(inspected) + p.mpi_lock_us)
        msg.matched = True
        if handle is not None:
            self.stats.trace("mpci", "matched_posted", proto=msg.proto,
                             tag=msg.envelope.tag, mseq=msg.mseq, mid=msg.mid)
            req: Request = handle
            self._check_fits(msg, req.ctx)
            msg.req = req
            if msg.proto == "rts":
                self.bound_recvs[(msg.src_task, msg.sid)] = (req, msg.envelope)
                if deferred:
                    self._ctrlq.put(
                        (msg.src_task, "mpi_rts_ack",
                         {"sid": msg.sid, "slot": self._alloc_rdata_slot(msg),
                          "mid": msg.mid})
                    )
            elif msg.assembled:
                # a deferred message can finish assembling into its EA
                # buffer before the announcement gap fills; the completion
                # ran with no request bound, so finish the hand-off here
                backend = self

                def finalize(thread: str, msg=msg, req=req) -> Generator:
                    yield from backend._copy_ea_to_user(thread, msg, req)

                req.set_finalizer(finalize)
        elif msg.mode == READY:
            # Fig 3: ready-mode message with no posted receive is fatal
            raise MpiFatal(
                f"ready-mode message (tag {msg.envelope.tag}) arrived with "
                "no matching receive posted"
            )
        else:
            self.stats.trace("mpci", "early_arrival", proto=msg.proto,
                             tag=msg.envelope.tag, mseq=msg.mseq, mid=msg.mid)
            self.early.add(msg.envelope, msg)
            self._track_unexpected()

    # ------------------------------------------------------ completion
    def _on_data_complete(self, msg: InMsg) -> None:
        """A data message (eager or rdata) is fully assembled (sync)."""
        msg.assembled = True
        req = msg.req
        if req is not None:
            if msg.ea_buf is None:
                req.complete(source=msg.envelope.src, tag=msg.envelope.tag,
                             count=msg.size)
                self.stats.msgs_received += 1
            else:
                backend = self

                def finalize(thread: str, msg=msg, req=req) -> Generator:
                    yield from backend._copy_ea_to_user(thread, msg, req)

                req.set_finalizer(finalize)
        if msg.want_bfree:
            self._ctrlq.put((msg.src_task, "mpi_bfree",
                             {"sid": msg.sid, "mid": msg.mid}))

    def _cmpl_mark(self, lapi: Lapi, thread: str, msg: InMsg) -> Generator:
        """Base/Enhanced completion handler: mark the message complete
        (paper Fig 3c)."""
        self._on_data_complete(msg)
        yield self.env.timeout(0)

    def _cmpl_send_rts_ack(self, lapi: Lapi, thread: str, msg: InMsg) -> Generator:
        """Fig 4c: completion handler of a matched request-to-send."""
        yield from lapi.amsend(
            thread, msg.src_task, "mpi_rts_ack",
            {"sid": msg.sid, "slot": self._alloc_rdata_slot(msg),
             "mid": msg.mid},
            mid=msg.mid,
        )

    # ------------------------------------------------- header handlers
    def _hh_eager(self, lapi: Lapi, src_task: int, uhdr: dict, mlen: int):
        """Fig 3b: match; return the user buffer or an EA buffer."""
        msg = InMsg(
            Envelope(uhdr["ctx"], uhdr["srank"], uhdr["tag"]),
            src_task, uhdr["mseq"], uhdr["size"], "eager", uhdr["mode"],
            uhdr["sid"], uhdr["bfree"], mid=uhdr.get("mid"),
        )
        self._announce(msg)
        if msg.req is not None and msg.matched:
            target = ByteTarget(msg.req.ctx)
        else:
            msg.ea_buf = self._alloc_ea(msg.size)
            target = ByteTarget(msg.ea_buf)
        return target, self._completion_for(msg), msg

    def _completion_for(self, msg: InMsg):
        """Choose the completion mechanism for a data message."""
        if self.variant == "counters":
            # dispatcher will increment the slot counter in-context;
            # binding the message to the slot replaces the handler
            pool = self._pools[msg.src_task]
            pool[msg.mseq % len(pool)].bind(msg)
            return None
        return self._cmpl_mark

    def _hh_rts(self, lapi: Lapi, src_task: int, uhdr: dict, mlen: int):
        """Fig 4b: header handler of the request-to-send."""
        msg = InMsg(
            Envelope(uhdr["ctx"], uhdr["srank"], uhdr["tag"]),
            src_task, uhdr["mseq"], uhdr["size"], "rts", uhdr["mode"],
            uhdr["sid"], uhdr["bfree"], mid=uhdr.get("mid"),
        )
        self._announce(msg)
        if msg.req is not None and msg.matched:
            # matched immediately: the ack is the completion handler's
            # job (Fig 4c) — threaded in base/counters, inline in enhanced
            return NullTarget(), self._cmpl_send_rts_ack, msg
        return NullTarget(), None, None

    def _hh_rts_ack(self, lapi: Lapi, src_task: int, uhdr: dict, mlen: int):
        """Fig 7: request-to-send acknowledged."""
        ps = self.pending_sends.get(uhdr["sid"])
        if ps is None:
            return NullTarget(), None, None
        self.stats.trace("mpci", "rts_acked", sid=uhdr["sid"],
                         blocking=ps.blocking, mid=ps.uhdr.get("mid"))
        ps.recv_slot = uhdr.get("slot")
        if ps.blocking:
            ps.acked = True
            if ps.waiter is not None and not ps.waiter.triggered:
                ps.waiter.succeed()
            return NullTarget(), None, None
        return NullTarget(), self._cmpl_launch_rdata, ps

    def _hh_rdata(self, lapi: Lapi, src_task: int, uhdr: dict, mlen: int):
        """Second-phase rendezvous data: receive straight into the bound
        user buffer (no matching needed)."""
        bound = self.bound_recvs.pop((src_task, uhdr["sid"]), None)
        if bound is None:
            raise MpiFatal(f"rendezvous data for unknown receive (sid {uhdr['sid']})")
        req, envelope = bound
        msg = InMsg(envelope, src_task, -1, uhdr["size"], "rdata",
                    "standard", uhdr["sid"], uhdr.get("bfree", False),
                    mid=uhdr.get("mid"))
        msg.req = req
        msg.matched = True
        if self.variant == "counters":
            slot = self._slot_by_id[uhdr["slot"]]
            slot.bind(msg)
            return ByteTarget(req.ctx), None, msg
        return ByteTarget(req.ctx), self._cmpl_mark, msg

    def _hh_bfree(self, lapi: Lapi, src_task: int, uhdr: dict, mlen: int):
        """Fig 8: receiver reports full receipt; free attached-buffer space."""
        self._release_attached(uhdr["sid"])
        return NullTarget(), None, None
