"""Shared backend machinery: matching flow, early arrivals, buffered mode.

Terminology: the *task* is the transport endpoint (node id); *rank* is a
position within a communicator.  The backend speaks tasks for routing
and ranks for matching envelopes (an envelope's ``src`` is the sender's
rank in the message's communicator).
"""

from __future__ import annotations

import itertools
from typing import Any, Generator, Optional

from repro.machine.cpu import Cpu
from repro.machine.params import MachineParams
from repro.machine.stats import NodeStats
from repro.mpci import EarlyArrivalQueue, Envelope, PostedReceiveQueue
from repro.mpi.protocol import select_protocol
from repro.mpi.request import Request
from repro.sim import Environment, Event

__all__ = ["Backend", "InMsg", "MpiFatal", "PendingSend"]


class MpiFatal(RuntimeError):
    """Fatal MPI error (e.g. Ready-mode send with no posted receive —
    the paper's Fig. 3 raises a fatal error and terminates the job)."""


class InMsg:
    """Receiver-side state for one incoming point-to-point message."""

    __slots__ = (
        "envelope",
        "src_task",
        "mseq",
        "size",
        "proto",  # "eager" | "rts" | "rdata"
        "mode",
        "sid",
        "mid",
        "want_bfree",
        "ea_buf",
        "req",
        "assembled",
        "matched",
    )

    def __init__(self, envelope: Envelope, src_task: int, mseq: int, size: int,
                 proto: str, mode: str, sid: int, want_bfree: bool,
                 mid: Optional[str] = None):
        self.envelope = envelope
        self.src_task = src_task
        self.mseq = mseq
        self.size = size
        self.proto = proto
        self.mode = mode
        self.sid = sid
        self.mid = mid
        self.want_bfree = want_bfree
        self.ea_buf: Optional[bytearray] = None
        self.req: Optional[Request] = None
        self.assembled = False
        self.matched = False


class PendingSend:
    """Origin-side state for one rendezvous send awaiting its ack."""

    __slots__ = ("data", "dst_task", "uhdr", "req", "blocking", "acked", "waiter",
                 "recv_slot")

    def __init__(self, data: bytes, dst_task: int, uhdr: dict, req: Request,
                 blocking: bool):
        self.data = data
        self.dst_task = dst_task
        self.uhdr = uhdr
        self.req = req
        self.blocking = blocking
        self.acked = False
        self.waiter: Optional[Event] = None
        self.recv_slot: Optional[int] = None


class Backend:
    """Common state + helpers; concrete backends add the transport."""

    name = "abstract"

    def __init__(
        self,
        env: Environment,
        cpu: Cpu,
        params: MachineParams,
        stats: NodeStats,
        task_id: int,
        num_tasks: int,
    ):
        self.env = env
        self.cpu = cpu
        self.params = params
        self.stats = stats
        self.task_id = task_id
        self.num_tasks = num_tasks

        self.posted = PostedReceiveQueue()
        self.early = EarlyArrivalQueue()
        self._send_ids = itertools.count()
        self._mseq_next: dict[int, int] = {}  # per-destination send order
        self.pending_sends: dict[int, PendingSend] = {}
        #: (src_task, sid) -> recv Request bound to an incoming rdata
        self.bound_recvs: dict[tuple[int, int], Request] = {}

        # MPI_Buffer_attach accounting
        self._attach_capacity = 0
        self._attach_used = 0
        self._attach_waiters: list[Event] = []
        #: sid -> bytes to release when the bfree notification arrives
        self._attach_outstanding: dict[int, int] = {}

        # early-arrival buffer accounting
        self._ea_used = 0

        #: lazily-created MPI-3 RMA engine (repro.mpi.rma)
        self._rma_engine = None

        # observability: protocol-selection counters per Table-2 mode,
        # early-arrival occupancy high water, unexpected-queue depth
        self.metrics = stats.registry
        self._g_ea = self.metrics.gauge("mpi.ea_bytes")
        self._g_unexpected = self.metrics.gauge("mpi.unexpected_depth")

    # ------------------------------------------------------ buffered mode
    def attach_buffer(self, nbytes: int) -> None:
        """MPI_Buffer_attach."""
        if self._attach_capacity:
            raise MpiFatal("a buffer is already attached")
        if nbytes <= 0:
            raise ValueError("attach size must be positive")
        self._attach_capacity = nbytes
        self._attach_used = 0

    def detach_buffer(self) -> int:
        """MPI_Buffer_detach: returns the detached capacity."""
        cap = self._attach_capacity
        self._attach_capacity = 0
        self._attach_used = 0
        return cap

    def _reserve_attached(self, nbytes: int, sid: int) -> None:
        if nbytes > self._attach_capacity - self._attach_used:
            raise MpiFatal(
                f"buffered send of {nbytes}B exceeds attached buffer space "
                f"({self._attach_capacity - self._attach_used}B free)"
            )
        self._attach_used += nbytes
        self._attach_outstanding[sid] = nbytes

    def _release_attached(self, sid: int) -> None:
        nbytes = self._attach_outstanding.pop(sid, 0)
        self._attach_used -= nbytes
        waiters, self._attach_waiters = self._attach_waiters, []
        for ev in waiters:
            if not ev.triggered:
                ev.succeed()

    # ------------------------------------------------------- EA buffers
    def _alloc_ea(self, size: int) -> bytearray:
        if self._ea_used + size > self.params.early_arrival_bytes:
            raise MpiFatal(
                f"early-arrival buffer exhausted ({self._ea_used + size}B > "
                f"{self.params.early_arrival_bytes}B); raise eager_limit "
                "discipline or early_arrival_bytes"
            )
        self._ea_used += size
        self._g_ea.set(self._ea_used)
        self.stats.early_arrivals += 1
        return bytearray(size)

    def _free_ea(self, size: int) -> None:
        self._ea_used -= size
        self._g_ea.set(self._ea_used)

    def _track_unexpected(self) -> None:
        """Refresh the unexpected-queue depth gauge after a mutation."""
        self._g_unexpected.set(len(self.early))

    # ---------------------------------------------------------- helpers
    def next_mseq(self, dst_task: int) -> int:
        n = self._mseq_next.get(dst_task, 0)
        self._mseq_next[dst_task] = n + 1
        return n

    def next_sid(self) -> int:
        return next(self._send_ids)

    def mint_mid(self, sid: int) -> str:
        """Cluster-unique message id for the send with local id ``sid``.

        ``<origin task>:<origin send id>`` — unique across the whole
        cluster without coordination, stable across reruns, and carried
        by every packet header and trace record the message generates on
        either node (the causal key ``repro.obs.spans`` reconstructs
        span trees from).
        """
        return f"{self.task_id}:{sid}"

    def match_cost(self, inspected: int) -> float:
        p = self.params
        return p.match_base_us + inspected * p.match_per_entry_us

    def select_protocol(self, mode: str, size: int) -> str:
        proto = select_protocol(mode, size, self.params.eager_limit)
        self.metrics.counter(f"mpi.proto.{proto}.{mode}").incr()
        return proto

    # ------------------------------------------------- abstract surface
    def isend(self, thread, data, dst_task, src_rank, tag, context, mode,
              blocking=False) -> Generator:
        raise NotImplementedError

    def irecv(self, thread, view, src_pattern, tag_pattern, context) -> Generator:
        raise NotImplementedError

    def progress(self, thread: str) -> Generator:
        raise NotImplementedError

    def wait_rx(self) -> Event:
        raise NotImplementedError

    def set_interrupt_mode(self, enabled: bool) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------- RMA
    def ensure_rma_engine(self):
        """One RMA engine per backend instance, created on first
        ``win_create`` so two-sided-only runs never pay for it."""
        if self._rma_engine is None:
            self._rma_engine = self.make_rma_engine()
        return self._rma_engine

    def make_rma_engine(self):
        raise NotImplementedError

    # ------------------------------------------------------ wait loop
    def wait(self, thread: str, req: Request) -> Generator:
        """Drive progress until ``req`` completes (polling discipline)."""
        while True:
            if req.needs_finalize:
                yield from req.run_finalizer(thread)
            if req.done:
                return req.status
            progressed = yield from self.progress(thread)
            if req.done or req.needs_finalize:
                continue
            if progressed:
                continue
            self.stats.polls += 1
            yield from self.cpu.execute(thread, self.params.poll_check_us)
            if req.done or req.needs_finalize:
                continue
            yield self.env.any_of([self.wait_rx(), req.changed()])

    def test(self, thread: str, req: Request) -> Generator:
        """Single progress pass; returns True if the request completed."""
        yield from self.progress(thread)
        if req.needs_finalize:
            yield from req.run_finalizer(thread)
        return req.done
