"""Transport backends for the MPI layer.

``native``   — MPCI over Pipes (the stack the paper competes against).
``lapi-*``   — MPCI over LAPI in the paper's three generations:
               ``lapi-base``, ``lapi-counters``, ``lapi-enhanced``.
"""

from repro.mpi.backends.base import Backend, InMsg
from repro.mpi.backends.lapi_backend import LapiBackend
from repro.mpi.backends.native import NativeBackend

__all__ = ["Backend", "InMsg", "LapiBackend", "NativeBackend"]
