"""RMA vs two-sided: the layering contrast the paper never measured.

The paper built two-sided MPI on one-sided LAPI; MPI-3 RMA maps the
same one-sided primitives *directly* (Gerstenberger et al.), so on the
LAPI stacks a fence-synchronized Put dodges tag matching, request
allocation and the posted/unexpected queues entirely — while the native
(Pipes) stack must *emulate* RMA over send/recv through a target-side
server process, paying the request/ack round trip the thin mapping
avoids.  The headline numbers:

* ``rma_pingpong_us``  — fence-synchronized put ping-pong latency
* ``rma_lock_us``      — passive-target lock/put/unlock round
* ``rma_bw_MBps``      — back-to-back put streaming bandwidth
* two-sided reference columns from :func:`repro.bench.harness.pingpong_us`
"""

from __future__ import annotations

from typing import Optional

from repro.bench.figures import print_table, reps_for
from repro.bench.harness import pingpong_us
from repro.bench.parallel import Cell, run_cells
from repro.cluster import SPCluster
from repro.machine import MachineParams

__all__ = ["LAT_STACKS", "check", "rma_bw_MBps", "rma_lock_us",
           "rma_pingpong_us", "rows"]

LAT_STACKS = ("lapi-enhanced", "lapi-counters", "lapi-base", "native")


def _params(params: Optional[MachineParams]) -> MachineParams:
    return params if params is not None else MachineParams()


def rma_pingpong_us(stack: str, msg_size: int, reps: int = 12,
                    warmup: int = 2, params: Optional[MachineParams] = None,
                    seed: int = 0, interrupt_mode: bool = False) -> float:
    """One-way latency (us) of a fence-synchronized put ping-pong."""
    cluster = SPCluster(2, stack=stack, params=_params(params), seed=seed,
                        interrupt_mode=interrupt_mode)
    payload = bytes(max(msg_size, 1))

    def program(comm, rank, size):
        win = yield from comm.win_create(max(msg_size, 1))
        yield from win.fence()
        t0 = None
        for i in range(warmup + reps):
            if i == warmup:
                t0 = comm.env.now
            if rank == 0:
                yield from win.put(payload, 1, 0)
            yield from win.fence()
            if rank == 1:
                yield from win.put(payload, 0, 0)
            yield from win.fence()
        elapsed = comm.env.now - t0
        yield from win.free()
        return elapsed / reps / 2.0 if rank == 0 else None

    return cluster.run(program).values[0]


def rma_lock_us(stack: str, msg_size: int, reps: int = 12, warmup: int = 2,
                params: Optional[MachineParams] = None, seed: int = 0,
                interrupt_mode: bool = False) -> float:
    """Passive-target round: lock(excl) + put + unlock, origin view."""
    cluster = SPCluster(2, stack=stack, params=_params(params), seed=seed,
                        interrupt_mode=interrupt_mode)
    payload = bytes(max(msg_size, 1))

    def program(comm, rank, size):
        win = yield from comm.win_create(max(msg_size, 1))
        yield from comm.barrier()
        t0 = None
        if rank == 0:
            for i in range(warmup + reps):
                if i == warmup:
                    t0 = comm.env.now
                yield from win.lock(1, exclusive=True)
                yield from win.put(payload, 1, 0)
                yield from win.unlock(1)
            elapsed = comm.env.now - t0
            # rank 1 only reaches the closing barrier once its lock
            # traffic has been served, so no explicit signal is needed
            yield from comm.barrier()
            yield from win.free()
            return elapsed / reps
        yield from comm.barrier()
        yield from win.free()
        return None

    return cluster.run(program).values[0]


def rma_bw_MBps(stack: str, msg_size: int, depth: int = 8, reps: int = 4,
                params: Optional[MachineParams] = None, seed: int = 0) -> float:
    """Streaming bandwidth: ``depth`` back-to-back puts per fence."""
    cluster = SPCluster(2, stack=stack, params=_params(params), seed=seed)
    payload = bytes(msg_size)

    def program(comm, rank, size):
        win = yield from comm.win_create(msg_size)
        yield from win.fence()
        t0 = comm.env.now
        for _ in range(reps):
            if rank == 0:
                for _ in range(depth):
                    yield from win.put(payload, 1, 0)
            yield from win.fence()
        elapsed = comm.env.now - t0
        yield from win.free()
        return (reps * depth * msg_size) / elapsed if rank == 0 else None

    return cluster.run(program).values[0]


# ---------------------------------------------------------------- sweep
def _lat_row(size: int, params: Optional[MachineParams]) -> dict:
    reps = reps_for(size)
    row = {"size": size}
    for stack in LAT_STACKS:
        row[f"rma:{stack}"] = rma_pingpong_us(stack, size, reps=reps,
                                              params=params)
        row[f"2s:{stack}"] = pingpong_us(stack, size, reps=reps,
                                         params=params)
    return row


def _lock_row(size: int, params: Optional[MachineParams]) -> dict:
    row = {"size": size}
    for stack in ("lapi-enhanced", "native"):
        row[f"lock:{stack}"] = rma_lock_us(stack, size, reps=8, params=params)
    return row


def _bw_row(size: int, params: Optional[MachineParams]) -> dict:
    row = {"size": size}
    for stack in ("lapi-enhanced", "native"):
        row[f"bw:{stack}"] = rma_bw_MBps(stack, size, params=params)
    return row


def rows(sizes: Optional[list[int]] = None,
         params: Optional[MachineParams] = None,
         jobs: Optional[int] = None) -> dict[str, list[dict]]:
    """The full sweep: latency, passive-target, and bandwidth series."""
    if sizes is None:
        sizes = [8, 256, 1024, 16384]
    bw_sizes = [s for s in sizes if s >= 1024] or [1024]
    cells = (
        [Cell(_lat_row, s, params) for s in sizes]
        + [Cell(_lock_row, s, params) for s in sizes]
        + [Cell(_bw_row, s, params) for s in bw_sizes]
    )
    out = run_cells(cells, jobs=jobs)
    n = len(sizes)
    return {
        "latency": out[:n],
        "lock": out[n : 2 * n],
        "bandwidth": out[2 * n :],
    }


def check(data: dict[str, list[dict]]) -> list[str]:
    """Shape violations (empty == the layering story reproduces)."""
    problems = []
    for row in data["latency"]:
        s = row["size"]
        if s <= 64 and not row["rma:lapi-enhanced"] < row["2s:lapi-enhanced"]:
            problems.append(
                f"size {s}: fence put ping-pong not below two-sided "
                f"({row['rma:lapi-enhanced']:.2f} >= "
                f"{row['2s:lapi-enhanced']:.2f} us)")
        if not row["rma:native"] > row["rma:lapi-enhanced"]:
            problems.append(
                f"size {s}: native RMA emulation not above the thin "
                f"LAPI mapping")
    return problems


def main() -> None:
    data = rows()
    print_table(
        "RMA put ping-pong vs two-sided send/recv (us, one-way)",
        ["size"] + [f"rma:{s}" for s in LAT_STACKS]
        + [f"2s:{s}" for s in LAT_STACKS],
        data["latency"],
    )
    print_table(
        "Passive target: lock+put+unlock round (us)",
        ["size", "lock:lapi-enhanced", "lock:native"],
        data["lock"],
    )
    print_table(
        "Streaming put bandwidth (MB/s)",
        ["size", "bw:lapi-enhanced", "bw:native"],
        data["bandwidth"],
    )
    problems = check(data)
    print("\nshape check:", "OK" if not problems else "; ".join(problems))


if __name__ == "__main__":
    main()
