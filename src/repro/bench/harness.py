"""Measurement drivers used by every figure reproduction.

These mirror the paper's §5.1/§6.1 methodology:

* **latency** — messages bounced between two nodes; the reported number
  is one-way time (half the averaged round trip).  MPI_Send/MPI_Recv.
* **interrupt-mode latency** — the receiver posts MPI_Irecv and then
  *checks the content of the receive buffer* in a loop (no MPI calls),
  so all progress is interrupt-driven; then replies.
* **bandwidth** — back-to-back MPI_Isend/MPI_Irecv streams; the timer
  stops when the acknowledgement of the last message returns.
* **raw LAPI** — LAPI_Put + LAPI_Waitcntr ping-pong (Fig 10's baseline).
"""

from __future__ import annotations

import warnings
from typing import Optional

import numpy as np

from repro.cluster import SPCluster
from repro.machine import MachineParams

__all__ = [
    "bandwidth_mbps",
    "interrupt_pingpong_us",
    "pingpong_breakdown",
    "pingpong_capture",
    "pingpong_result",
    "pingpong_us",
    "raw_lapi_pingpong_us",
]


def _params(params: Optional[MachineParams]) -> MachineParams:
    return params if params is not None else MachineParams()


def pingpong_result(
    stack: str,
    msg_size: int,
    reps: int = 12,
    warmup: int = 2,
    params: Optional[MachineParams] = None,
    seed: int = 0,
):
    """Full :class:`~repro.cluster.RunResult` of the latency ping-pong.

    Rank 0's value is the one-way latency in us; ``result.metrics``
    carries the cluster's full metrics snapshot.
    """
    cluster = SPCluster(2, stack=stack, params=_params(params), seed=seed)
    payload = bytes(msg_size)

    def program(comm, rank, size):
        buf = bytearray(max(msg_size, 1))
        yield from comm.barrier()
        t0 = None
        for i in range(warmup + reps):
            if i == warmup:
                t0 = comm.env.now
            if rank == 0:
                yield from comm.send(payload, dest=1)
                yield from comm.recv(buf, source=1)
            else:
                yield from comm.recv(buf, source=0)
                yield from comm.send(payload, dest=0)
        return (comm.env.now - t0) / reps / 2.0 if rank == 0 else None

    return cluster.run(program)


def pingpong_us(
    stack: str,
    msg_size: int,
    reps: int = 12,
    warmup: int = 2,
    params: Optional[MachineParams] = None,
    seed: int = 0,
) -> float:
    """One-way latency (us) via a blocking-send/recv ping-pong."""
    return pingpong_result(stack, msg_size, reps=reps, warmup=warmup,
                           params=params, seed=seed).values[0]


def pingpong_capture(
    stack: str,
    msg_size: int,
    reps: int = 4,
    params: Optional[MachineParams] = None,
    seed: int = 0,
    interrupt_mode: bool = False,
) -> SPCluster:
    """Deprecated alias for :func:`repro.obs.capture`.

    ``interrupt_mode=True`` maps to ``mode="interrupt"``.
    """
    warnings.warn(
        "pingpong_capture is deprecated; use repro.obs.capture(stack, size, "
        "mode='interrupt'|'polling')",
        DeprecationWarning, stacklevel=2,
    )
    from repro.obs import capture

    return capture(stack, msg_size,
                   mode="interrupt" if interrupt_mode else "polling",
                   reps=reps, params=params, seed=seed)


def pingpong_breakdown(
    stack: str,
    msg_size: int,
    reps: int = 4,
    params: Optional[MachineParams] = None,
    seed: int = 0,
    allow_truncated: bool = False,
    interrupt_mode: bool = False,
):
    """Deprecated alias for :func:`repro.obs.breakdown`.

    ``interrupt_mode=True`` maps to ``mode="interrupt"``.
    """
    warnings.warn(
        "pingpong_breakdown is deprecated; use repro.obs.breakdown(stack, "
        "size, mode='interrupt'|'polling')",
        DeprecationWarning, stacklevel=2,
    )
    from repro.obs import breakdown

    return breakdown(stack, msg_size,
                     mode="interrupt" if interrupt_mode else "polling",
                     reps=reps, params=params, seed=seed,
                     allow_truncated=allow_truncated)


def interrupt_pingpong_us(
    stack: str,
    msg_size: int,
    reps: int = 8,
    warmup: int = 1,
    params: Optional[MachineParams] = None,
    seed: int = 0,
) -> float:
    """One-way latency (us) in interrupt mode.

    The responder pre-posts all its receives and busy-checks the receive
    buffers' contents without entering MPI, so the incoming data can only
    move via the interrupt path (paper Fig 13 methodology).
    """
    from repro.cluster import preset

    size_eff = max(msg_size, 1)
    cluster = preset("interrupt_mode", stack=stack, params=_params(params),
                     seed=seed).build()

    def program(comm, rank, size):
        total = warmup + reps
        if rank == 1:
            bufs = [np.zeros(size_eff, dtype=np.uint8) for _ in range(total)]
            reqs = []
            for i in range(total):
                r = yield from comm.irecv(bufs[i], source=0)
                reqs.append(r)
            yield from comm.barrier()
            for i in range(total):
                marker = (i % 255) + 1
                # spin on memory contents — NOT on MPI calls
                while bufs[i][-1] != marker:
                    yield from comm.backend.cpu.execute(
                        "user", comm.backend.params.poll_check_us
                    )
                yield from comm.send(bytes([marker]) * size_eff, dest=0)
            return None
        buf = bytearray(size_eff)
        yield from comm.barrier()
        t0 = None
        for i in range(total):
            if i == warmup:
                t0 = comm.env.now
            marker = (i % 255) + 1
            yield from comm.send(bytes([marker]) * size_eff, dest=1)
            yield from comm.recv(buf, source=1)
        return (comm.env.now - t0) / reps / 2.0

    return cluster.run(program).values[0]


def bandwidth_mbps(
    stack: str,
    msg_size: int,
    count: int = 24,
    params: Optional[MachineParams] = None,
    seed: int = 0,
) -> float:
    """Streaming bandwidth (MB/s, 1 MB = 1e6 B) via Isend/Irecv."""
    if msg_size < 1:
        raise ValueError("bandwidth needs a positive message size")
    cluster = SPCluster(2, stack=stack, params=_params(params), seed=seed)
    payload = bytes(msg_size)

    def program(comm, rank, size):
        if rank == 1:
            bufs = [np.zeros(msg_size, dtype=np.uint8) for _ in range(count)]
            reqs = []
            for i in range(count):
                r = yield from comm.irecv(bufs[i], source=0)
                reqs.append(r)
            yield from comm.barrier()
            yield from comm.waitall(reqs)
            yield from comm.send(b"k", dest=0)  # the final acknowledgement
            return None
        yield from comm.barrier()
        t0 = comm.env.now
        reqs = []
        for _ in range(count):
            r = yield from comm.isend(payload, dest=1)
            reqs.append(r)
        yield from comm.waitall(reqs)
        ack = bytearray(1)
        yield from comm.recv(ack, source=1)
        elapsed = comm.env.now - t0
        return (count * msg_size) / elapsed  # bytes/us == MB/s

    return cluster.run(program).values[0]


def raw_lapi_pingpong_us(
    msg_size: int,
    reps: int = 12,
    warmup: int = 2,
    params: Optional[MachineParams] = None,
    seed: int = 0,
) -> float:
    """One-way time (us) of the bare-LAPI ping-pong: Put + Waitcntr."""
    size_eff = max(msg_size, 1)
    cluster = SPCluster(2, stack="raw-lapi", params=_params(params), seed=seed)
    data = bytes(size_eff)

    def program(lapi, rank, size):
        buf = bytearray(size_eff)
        lapi.address_init("pp", buf)
        my_id, my_cntr = lapi.create_counter("pp")
        yield from lapi.gfence("user")
        peer = 1 - rank
        # counter ids are allocated identically on both tasks
        peer_id = my_id
        total = warmup + reps
        t0 = None
        for i in range(total):
            if i == warmup:
                t0 = lapi.env.now
            if rank == 0:
                yield from lapi.put("user", peer, "pp", 0, data, tgt_cntr_id=peer_id)
                yield from lapi.waitcntr("user", my_cntr, 1)
            else:
                yield from lapi.waitcntr("user", my_cntr, 1)
                yield from lapi.put("user", peer, "pp", 0, data, tgt_cntr_id=peer_id)
        return (lapi.env.now - t0) / reps / 2.0 if rank == 0 else None

    return cluster.run(program).values[0]
