"""Figure 10: raw LAPI vs the three MPI-LAPI generations.

Paper shape targets: Base ≫ Counters > Enhanced ≈ RAW LAPI; Counters
tracks Enhanced in the eager range and Base in the rendezvous range
(its counters only replace completion handlers for eager messages).
"""

from __future__ import annotations

from typing import Optional

from repro.bench.figures import geometric_sizes, print_table, reps_for
from repro.bench.harness import pingpong_us, raw_lapi_pingpong_us
from repro.bench.parallel import Cell, run_cells
from repro.machine import MachineParams

__all__ = ["rows", "main"]

SERIES = ("raw-lapi", "lapi-base", "lapi-counters", "lapi-enhanced")


def _row(size: int, params: Optional[MachineParams]) -> dict:
    reps = reps_for(size)
    row = {"size": size}
    row["raw-lapi"] = raw_lapi_pingpong_us(size, reps=reps, params=params)
    for stack in ("lapi-base", "lapi-counters", "lapi-enhanced"):
        row[stack] = pingpong_us(stack, size, reps=reps, params=params)
    return row


def rows(sizes: Optional[list[int]] = None,
         params: Optional[MachineParams] = None,
         jobs: Optional[int] = None) -> list[dict]:
    if sizes is None:
        sizes = geometric_sizes(1, 1 << 20, 4)
    return run_cells([Cell(_row, size, params) for size in sizes], jobs=jobs)


def check_shape(data: list[dict]) -> list[str]:
    """Return a list of shape violations (empty == reproduces the figure)."""
    problems = []
    for row in data:
        s = row["size"]
        if not row["lapi-base"] > row["lapi-enhanced"]:
            problems.append(f"size {s}: base not slower than enhanced")
        if not row["lapi-base"] >= row["lapi-counters"] * 0.999:
            problems.append(f"size {s}: counters slower than base")
        if not row["lapi-enhanced"] <= row["raw-lapi"] * 1.6:
            problems.append(f"size {s}: enhanced too far above raw LAPI")
    return problems


def main() -> None:
    data = rows()
    print_table(
        "Fig 10 — ping-pong time (us, one-way): raw LAPI vs MPI-LAPI variants",
        ["size", *SERIES],
        data,
    )
    problems = check_shape(data)
    print("\nshape check:", "OK" if not problems else "; ".join(problems))


if __name__ == "__main__":
    main()
