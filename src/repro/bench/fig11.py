"""Figure 11: polling-mode latency — native MPI vs MPI-LAPI Enhanced.

Shape targets: native slightly faster for very short messages (LAPI's
exposed-interface parameter checking + its larger packet headers);
MPI-LAPI faster beyond a small crossover, with the gap growing as the
native stack's staging copies scale with message size.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.figures import print_table, reps_for
from repro.bench.harness import pingpong_us
from repro.bench.parallel import Cell, run_cells
from repro.machine import MachineParams

__all__ = ["rows", "main"]

DEFAULT_SIZES = [1, 4, 16, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384]


def _row(size: int, params: Optional[MachineParams]) -> dict:
    reps = reps_for(size)
    native = pingpong_us("native", size, reps=reps, params=params)
    lapi = pingpong_us("lapi-enhanced", size, reps=reps, params=params)
    return {
        "size": size,
        "native": native,
        "lapi-enhanced": lapi,
        "improvement_%": 100.0 * (native - lapi) / native,
    }


def rows(sizes: Optional[list[int]] = None,
         params: Optional[MachineParams] = None,
         jobs: Optional[int] = None) -> list[dict]:
    if sizes is None:
        sizes = list(DEFAULT_SIZES)
    return run_cells([Cell(_row, size, params) for size in sizes], jobs=jobs)


def check_shape(data: list[dict]) -> list[str]:
    problems = []
    tiny = [r for r in data if r["size"] <= 16]
    if not any(r["native"] <= r["lapi-enhanced"] for r in tiny):
        problems.append("native not ahead for very short messages")
    big = [r for r in data if r["size"] >= 1024]
    for r in big:
        if r["improvement_%"] <= 0:
            problems.append(f"size {r['size']}: MPI-LAPI not ahead")
    return problems


def main() -> None:
    data = rows()
    print_table(
        "Fig 11 — latency (us, one-way): native MPI vs MPI-LAPI Enhanced",
        ["size", "native", "lapi-enhanced", "improvement_%"],
        data,
    )
    problems = check_shape(data)
    print("\nshape check:", "OK" if not problems else "; ".join(problems))


if __name__ == "__main__":
    main()
