"""§6.2 — NAS Parallel Benchmarks on 4 nodes: native MPI vs MPI-LAPI.

Shape targets (paper): MPI-LAPI performs consistently at least as well
as the native MPI; the communication-bound kernels (LU, IS, CG, BT, FT)
improve clearly, while EP, MG and SP — dominated by local compute or by
tiny-message halo traffic — move only a little.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.figures import print_table
from repro.cluster import preset
from repro.machine import MachineParams
from repro.nas import run_kernel

__all__ = ["rows", "main", "KERNEL_ORDER"]

KERNEL_ORDER = ("lu", "is", "cg", "bt", "ft", "ep", "mg", "sp")

#: the paper's comm-bound / compute-bound grouping
IMPROVERS = ("lu", "is", "cg", "bt", "ft")
FLAT = ("ep", "mg", "sp")


def run_one(kernel: str, stack: str, nodes: int = 4,
            params: Optional[MachineParams] = None, seed: int = 0):
    cluster = preset("paper_4node", num_nodes=nodes, stack=stack,
                     params=params, seed=seed).build()
    result = run_kernel(kernel, cluster)
    outcomes = result.values
    if not all(o.verified for o in outcomes):
        raise AssertionError(
            f"{kernel} on {stack}: verification FAILED "
            f"({[o.detail for o in outcomes]})"
        )
    return result.elapsed_us


def _row(kernel: str, nodes: int, params: Optional[MachineParams]) -> dict:
    native = run_one(kernel, "native", nodes, params)
    lapi = run_one(kernel, "lapi-enhanced", nodes, params)
    return {
        "kernel": kernel.upper(),
        "native_us": native,
        "mpi_lapi_us": lapi,
        "improvement_%": 100.0 * (native - lapi) / native,
    }


def rows(nodes: int = 4, params: Optional[MachineParams] = None,
         jobs: Optional[int] = None) -> list[dict]:
    from repro.bench.parallel import Cell, run_cells

    return run_cells([Cell(_row, kernel, nodes, params)
                      for kernel in KERNEL_ORDER], jobs=jobs)


def check_shape(data: list[dict]) -> list[str]:
    problems = []
    by_kernel = {r["kernel"].lower(): r for r in data}
    for k in KERNEL_ORDER:
        if by_kernel[k]["improvement_%"] < -2.0:
            problems.append(f"{k}: MPI-LAPI slower than native")
    improver_avg = sum(by_kernel[k]["improvement_%"] for k in IMPROVERS) / len(IMPROVERS)
    flat_avg = sum(by_kernel[k]["improvement_%"] for k in FLAT) / len(FLAT)
    if improver_avg <= flat_avg:
        problems.append(
            f"comm-bound kernels should improve more "
            f"({improver_avg:.1f}% vs {flat_avg:.1f}%)"
        )
    return problems


def main() -> None:
    data = rows()
    print_table(
        "§6.2 — NAS Parallel Benchmarks (4 nodes): execution time",
        ["kernel", "native_us", "mpi_lapi_us", "improvement_%"],
        data,
    )
    problems = check_shape(data)
    print("\nshape check:", "OK" if not problems else "; ".join(problems))


if __name__ == "__main__":
    main()
