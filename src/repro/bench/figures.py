"""Shared helpers for the figure reproductions."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["geometric_sizes", "print_table", "reps_for"]


def geometric_sizes(start: int = 1, stop: int = 1 << 20, factor: int = 4) -> list[int]:
    """Message-size sweep like the paper's log-scale x axes."""
    sizes = []
    s = start
    while s <= stop:
        sizes.append(s)
        s *= factor
    return sizes


def reps_for(size: int) -> int:
    """Enough repetitions for stable numbers, fewer for huge messages."""
    if size >= 256 * 1024:
        return 3
    if size >= 32 * 1024:
        return 5
    return 10


def print_table(title: str, columns: Sequence[str], rows: Iterable[dict]) -> None:
    print(f"\n{title}")
    header = " | ".join(f"{c:>14}" for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        cells = []
        for c in columns:
            v = row[c]
            cells.append(f"{v:>14.2f}" if isinstance(v, float) else f"{v:>14}")
        print(" | ".join(cells))
