"""Figure 13: interrupt-mode latency — native MPI vs MPI-LAPI.

The receiver posts MPI_Irecv and spins on the receive buffer's
*contents*; all progress is interrupt-driven.  Shape target: MPI-LAPI
is consistently and dramatically faster because the native interrupt
handler dwells (hysteresis) hoping to coalesce interrupts, while LAPI's
handler returns as soon as the FIFO is drained.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.figures import print_table
from repro.bench.harness import interrupt_pingpong_us
from repro.bench.parallel import Cell, run_cells
from repro.machine import MachineParams

__all__ = ["rows", "main"]

DEFAULT_SIZES = [1, 4, 16, 64, 256, 1024, 4096, 8192]


def _row(size: int, params: Optional[MachineParams]) -> dict:
    n = interrupt_pingpong_us("native", size, params=params)
    l = interrupt_pingpong_us("lapi-enhanced", size, params=params)
    return {
        "size": size,
        "native": n,
        "lapi-enhanced": l,
        "speedup_x": n / l,
    }


def rows(sizes: Optional[list[int]] = None,
         params: Optional[MachineParams] = None,
         jobs: Optional[int] = None) -> list[dict]:
    if sizes is None:
        sizes = list(DEFAULT_SIZES)
    return run_cells([Cell(_row, size, params) for size in sizes], jobs=jobs)


def check_shape(data: list[dict]) -> list[str]:
    problems = []
    for r in data:
        if r["speedup_x"] < 1.3:
            problems.append(
                f"size {r['size']}: MPI-LAPI should win decisively "
                f"(got {r['speedup_x']:.2f}x)"
            )
    return problems


def main() -> None:
    data = rows()
    print_table(
        "Fig 13 — interrupt-mode latency (us, one-way)",
        ["size", "native", "lapi-enhanced", "speedup_x"],
        data,
    )
    problems = check_shape(data)
    print("\nshape check:", "OK" if not problems else "; ".join(problems))


if __name__ == "__main__":
    main()
