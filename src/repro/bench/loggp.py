"""LogGP characterisation of the protocol stacks.

Fits the classic LogGP parameters (Alexandrov et al.) from measured
ping-pong times:

* ``L_o`` — the combined latency + overhead constant (the zero-byte
  one-way time, ``L + 2o`` in LogGP terms),
* ``G``  — the gap per byte for long messages (inverse streaming
  bandwidth as seen by one message),
* ``g``  — the gap between messages (inverse small-message rate).

The paper's story compresses nicely into these three numbers: MPI-LAPI
pays a slightly larger ``L_o`` (exposed-interface checking, bigger
headers) but a much smaller ``G`` (no staging copies), which is exactly
why the curves cross.

Run ``python -m repro.bench.loggp``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bench.figures import print_table
from repro.bench.harness import bandwidth_mbps, pingpong_us
from repro.machine import MachineParams

__all__ = ["fit", "rows", "main"]

#: sizes used for the per-byte (G) fit — all well beyond the constant term
_G_SIZES = [8192, 16384, 32768, 65536]
#: small sizes used for the constant (L+2o) estimate
_SMALL = [1, 4, 16]


def fit(stack: str, params: Optional[MachineParams] = None) -> dict:
    """Fit LogGP-style parameters for one stack (times in us, G in us/B)."""
    small = [pingpong_us(stack, s, reps=8, params=params) for s in _SMALL]
    L_o = float(np.mean(small))

    ts = np.array([pingpong_us(stack, s, reps=5, params=params) for s in _G_SIZES])
    ns = np.array(_G_SIZES, dtype=float)
    # least squares for t = a + G*n
    A = np.vstack([np.ones_like(ns), ns]).T
    (a, G), *_ = np.linalg.lstsq(A, ts, rcond=None)

    # g from the streaming small-message rate: time per 1-byte message
    bw_small = bandwidth_mbps(stack, 64, count=32, params=params)
    g = 64.0 / bw_small  # us per message at 64 B

    return {
        "stack": stack,
        "L_plus_2o_us": L_o,
        "G_us_per_byte": float(G),
        "g_us_per_msg": float(g),
        "eff_bw_MBps": 1.0 / float(G) if G > 0 else float("inf"),
    }


def rows(params: Optional[MachineParams] = None) -> list[dict]:
    return [fit(stack, params) for stack in ("native", "lapi-enhanced")]


def main() -> None:
    data = rows()
    print_table(
        "LogGP fit: the paper's result as three numbers per stack",
        ["stack", "L_plus_2o_us", "G_us_per_byte", "g_us_per_msg", "eff_bw_MBps"],
        data,
    )
    native, lapi = data
    print(
        f"\nL+2o: MPI-LAPI pays +{lapi['L_plus_2o_us'] - native['L_plus_2o_us']:.2f} us "
        "(parameter checking, bigger headers)"
    )
    print(
        f"G:    native pays {native['G_us_per_byte'] / lapi['G_us_per_byte']:.2f}x "
        "per byte (staging copies) — hence the Fig 11 crossover"
    )


if __name__ == "__main__":
    main()
