"""Figure 12: streaming bandwidth — native MPI vs MPI-LAPI Enhanced.

Shape targets: MPI-LAPI's bandwidth exceeds the native stack's over a
wide range of message sizes (the paper quotes roughly a quarter more at
its highlighted size); the curves converge at very large messages where
both become I/O-bus-bound.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.figures import geometric_sizes, print_table
from repro.bench.harness import bandwidth_mbps
from repro.bench.parallel import Cell, run_cells
from repro.machine import MachineParams

__all__ = ["rows", "main"]


def _count_for(size: int) -> int:
    if size >= 256 * 1024:
        return 8
    if size >= 16 * 1024:
        return 16
    return 24


def _row(size: int, params: Optional[MachineParams]) -> dict:
    n = bandwidth_mbps("native", size, count=_count_for(size), params=params)
    l = bandwidth_mbps("lapi-enhanced", size, count=_count_for(size), params=params)
    return {
        "size": size,
        "native": n,
        "lapi-enhanced": l,
        "improvement_%": 100.0 * (l - n) / n,
    }


def rows(sizes: Optional[list[int]] = None,
         params: Optional[MachineParams] = None,
         jobs: Optional[int] = None) -> list[dict]:
    if sizes is None:
        sizes = geometric_sizes(256, 1 << 20, 4)
    return run_cells([Cell(_row, size, params) for size in sizes], jobs=jobs)


def check_shape(data: list[dict]) -> list[str]:
    problems = []
    mid = [r for r in data if 1024 <= r["size"] <= 64 * 1024]
    for r in mid:
        if r["improvement_%"] < 5.0:
            problems.append(f"size {r['size']}: expected a clear MPI-LAPI win")
    if mid and max(r["improvement_%"] for r in mid) < 20.0:
        problems.append("expected ~25% improvement somewhere in the mid range")
    huge = [r for r in data if r["size"] >= 512 * 1024]
    for r in huge:
        if abs(r["improvement_%"]) > 15.0:
            problems.append(f"size {r['size']}: curves should converge")
    return problems


def main() -> None:
    data = rows()
    print_table(
        "Fig 12 — bandwidth (MB/s): native MPI vs MPI-LAPI Enhanced",
        ["size", "native", "lapi-enhanced", "improvement_%"],
        data,
    )
    problems = check_shape(data)
    print("\nshape check:", "OK" if not problems else "; ".join(problems))


if __name__ == "__main__":
    main()
