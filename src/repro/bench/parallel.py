"""Deterministic parallel sweep runner.

Every sweep in this repository — figure size sweeps, NAS kernels, fault
campaign cells — is a list of *independent* simulations: each cell
builds its own :class:`~repro.sim.Environment` and derives every random
draw from its own explicit seed (see :mod:`repro.rngs`).  Nothing about
a cell's result depends on which OS process computes it, so fanning
cells across a :class:`~concurrent.futures.ProcessPoolExecutor` is free
of determinism hazards **by construction**: the runner only asserts the
structure (self-contained, picklable cells; results merged in submission
order) that makes the parallel output byte-identical to the serial one
at any worker count.

Usage::

    from repro.bench.parallel import Cell, run_cells

    cells = [Cell(_row, size, params) for size in sizes]
    rows = run_cells(cells, jobs=jobs)     # == [c() for c in cells]

Rules for cell functions:

- module-level (picklable by qualified name — no lambdas, no closures);
- arguments and return values picklable (dicts of scalars, dataclasses);
- all randomness derived from arguments (a seed), never from global
  state mutated by earlier cells.

``jobs=None`` or ``jobs<=1`` runs the cells serially in-process — the
default everywhere, so tests and small sweeps never pay pool start-up.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Optional, Sequence

__all__ = ["Cell", "default_jobs", "run_cells"]


def default_jobs() -> int:
    """Worker count for ``jobs=0``: the machine's CPU count."""
    return os.cpu_count() or 1


class Cell:
    """One independent unit of a sweep: ``fn(*args, **kwargs)``."""

    __slots__ = ("fn", "args", "kwargs")

    def __init__(self, fn: Callable, *args: Any, **kwargs: Any):
        self.fn = fn
        self.args = args
        self.kwargs = kwargs

    def __call__(self) -> Any:
        return self.fn(*self.args, **self.kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.fn, "__name__", repr(self.fn))
        parts = [repr(a) for a in self.args]
        parts += [f"{k}={v!r}" for k, v in sorted(self.kwargs.items())]
        return f"Cell({name}({', '.join(parts)}))"


def _run_cell(cell: Cell) -> Any:
    return cell()


def run_cells(cells: Sequence[Cell], jobs: Optional[int] = None) -> list[Any]:
    """Run every cell; results in cell order, independent of ``jobs``.

    ``jobs`` semantics: ``None``/``<=1`` serial in-process, ``0`` one
    worker per CPU, ``n>1`` at most ``n`` workers.  ``executor.map``
    preserves submission order, so the merged result list — and hence
    any artifact built from it — is byte-identical to the serial run.
    """
    cells = list(cells)
    if jobs == 0:
        jobs = default_jobs()
    if jobs is None or jobs <= 1 or len(cells) <= 1:
        return [c() for c in cells]
    workers = min(jobs, len(cells))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_cell, cells))
