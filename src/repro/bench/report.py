"""One-shot reproduction report: every table and figure, shape-checked.

Run ``python -m repro.bench.report`` (add ``--fast`` for a reduced
sweep).  Prints each figure as a table followed by its shape check and
finishes with a verdict summary — the executable version of
EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import fig10, fig11, fig12, fig13, nas
from repro.bench.figures import print_table

__all__ = ["main"]

FAST_SIZES = {
    "fig10": [4, 1024, 16384, 65536],
    "fig11": [1, 16, 256, 1024, 4096],
    "fig12": [1024, 4096, 65536, 1048576],
    "fig13": [4, 256, 1024],
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="reduced size sweeps (~4x faster)")
    parser.add_argument("--skip-nas", action="store_true",
                        help="omit the NAS section")
    parser.add_argument("--json-dir", default=None, metavar="DIR",
                        help="also write a BENCH_<figure>.json artifact per "
                             "figure under DIR")
    args = parser.parse_args(argv)

    verdicts: dict[str, list[str]] = {}

    specs = [
        ("fig10", fig10, "Fig 10 — ping-pong: raw LAPI vs MPI-LAPI variants (us)",
         ["size", "raw-lapi", "lapi-base", "lapi-counters", "lapi-enhanced"]),
        ("fig11", fig11, "Fig 11 — latency: native vs MPI-LAPI (us)",
         ["size", "native", "lapi-enhanced", "improvement_%"]),
        ("fig12", fig12, "Fig 12 — bandwidth: native vs MPI-LAPI (MB/s)",
         ["size", "native", "lapi-enhanced", "improvement_%"]),
        ("fig13", fig13, "Fig 13 — interrupt-mode latency (us)",
         ["size", "native", "lapi-enhanced", "speedup_x"]),
    ]
    for name, module, title, columns in specs:
        sizes = FAST_SIZES[name] if args.fast else None
        data = module.rows(sizes=sizes)
        print_table(title, columns, data)
        verdicts[name] = module.check_shape(data)
        print("shape check:", "OK" if not verdicts[name] else verdicts[name])
        if args.json_dir is not None:
            from repro.bench.artifact import make_artifact, write_artifact

            doc = make_artifact(
                name, params={"sizes": [r["size"] for r in data]}, results=data
            )
            print("artifact:", write_artifact(doc, args.json_dir))

    if not args.skip_nas:
        data = nas.rows()
        print_table("§6.2 — NAS Parallel Benchmarks, 4 nodes (us)",
                    ["kernel", "native_us", "mpi_lapi_us", "improvement_%"], data)
        verdicts["nas"] = nas.check_shape(data)
        print("shape check:", "OK" if not verdicts["nas"] else verdicts["nas"])

    print("\n================ reproduction verdict ================")
    ok = True
    for name, problems in verdicts.items():
        status = "REPRODUCED" if not problems else f"DEVIATES: {problems}"
        ok &= not problems
        print(f"  {name:6s}  {status}")
    print("======================================================")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
