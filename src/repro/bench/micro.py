"""LAPI primitive microbenchmarks (Table 1 operations, timed).

Beyond the paper's figures: one-way/round-trip times of the raw LAPI
operations — Amsend, Put, Get, Rmw — plus fence costs.  Useful for
calibrating against the original LAPI paper's numbers and as a
regression canary for the transport.

Run ``python -m repro.bench.micro``.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.figures import print_table
from repro.cluster import SPCluster
from repro.lapi.counters import Counter
from repro.machine import MachineParams

__all__ = ["rows", "main"]


def _cluster(params):
    return SPCluster(2, stack="raw-lapi", params=params)


def amsend_oneway_us(size: int, reps: int = 10, params=None) -> float:
    """Origin Amsend -> target counter observed (one-way, via ping-pong)."""
    cluster = _cluster(params)
    data = bytes(max(size, 1))

    def program(lapi, rank, n):
        lapi.register_handler("bench", lambda l, s, u, m: (None, None, None))
        cid, cntr = lapi.create_counter()
        yield from lapi.gfence("user")
        t0 = lapi.env.now
        for _ in range(reps):
            if rank == 0:
                yield from lapi.amsend("user", 1, "_lapi_null", {}, data,
                                       tgt_cntr_id=cid)
                yield from lapi.waitcntr("user", cntr, 1)
            else:
                yield from lapi.waitcntr("user", cntr, 1)
                yield from lapi.amsend("user", 0, "_lapi_null", {}, data,
                                       tgt_cntr_id=cid)
        return (lapi.env.now - t0) / reps / 2.0 if rank == 0 else None

    return cluster.run(program).values[0]


def put_oneway_us(size: int, reps: int = 10, params=None) -> float:
    from repro.bench.harness import raw_lapi_pingpong_us

    return raw_lapi_pingpong_us(size, reps=reps, params=params)


def get_roundtrip_us(size: int, reps: int = 8, params=None) -> float:
    """LAPI_Get is inherently a round trip: request out, data back."""
    cluster = _cluster(params)

    def program(lapi, rank, n):
        remote = bytearray(max(size, 1))
        lapi.address_init("g", remote)
        cid, fin = lapi.create_counter("fin")
        yield from lapi.gfence("user")
        if rank == 0:
            local = bytearray(max(size, 1))
            t0 = lapi.env.now
            for _ in range(reps):
                org = Counter(lapi.env, "org")
                yield from lapi.get("user", 1, "g", 0, len(local), local,
                                    org_cntr=org)
                yield from lapi.waitcntr("user", org, 1)
            t = (lapi.env.now - t0) / reps
            # release the target from its dispatcher loop
            yield from lapi.amsend("user", 1, "_lapi_null", {}, tgt_cntr_id=cid)
            return t
        # target: drive the dispatcher until told to stop
        yield from lapi.waitcntr("user", fin, 1)
        return None

    return cluster.run(program).values[0]


def rmw_roundtrip_us(reps: int = 8, params=None) -> float:
    cluster = _cluster(params)

    class Var:
        value = 0

    def program(lapi, rank, n):
        lapi.address_init("v", Var())
        _cid, fin = lapi.create_counter("fin")
        yield from lapi.gfence("user")
        if rank == 0:
            t0 = lapi.env.now
            for _ in range(reps):
                prev = Counter(lapi.env, "prev")
                yield from lapi.rmw("user", 1, "v", "FETCH_AND_ADD", 1,
                                    prev_cntr=prev)
                yield from lapi.waitcntr("user", prev, 1)
            t = (lapi.env.now - t0) / reps
            yield from lapi.amsend("user", 1, "_lapi_null", {}, tgt_cntr_id=_cid)
            return t
        yield from lapi.waitcntr("user", fin, 1)
        return None

    return cluster.run(program).values[0]


def gfence_us(nodes: int = 4, params=None) -> float:
    cluster = SPCluster(nodes, stack="raw-lapi", params=params)

    def program(lapi, rank, n):
        t0 = lapi.env.now
        yield from lapi.gfence("user")
        return lapi.env.now - t0

    return max(cluster.run(program).values)


def rows(params: Optional[MachineParams] = None) -> list[dict]:
    out = []
    for size in (8, 1024, 16384):
        out.append({
            "operation": f"Amsend {size}B (one-way)",
            "time_us": amsend_oneway_us(size, params=params),
        })
        out.append({
            "operation": f"Put {size}B (one-way)",
            "time_us": put_oneway_us(size, params=params),
        })
    out.append({"operation": "Get 8B (round trip)",
                "time_us": get_roundtrip_us(8, params=params)})
    out.append({"operation": "Get 16KB (round trip)",
                "time_us": get_roundtrip_us(16384, params=params)})
    out.append({"operation": "Rmw fetch-and-add (round trip)",
                "time_us": rmw_roundtrip_us(params=params)})
    out.append({"operation": "Gfence (4 tasks)",
                "time_us": gfence_us(params=params)})
    return out


def main() -> None:
    print_table("LAPI primitive microbenchmarks (simulated us)",
                ["operation", "time_us"], rows())


if __name__ == "__main__":
    main()
