"""Schema-versioned JSON artifacts for benchmark runs.

Every benchmark driver can serialise its run to ``BENCH_<name>.json``:
the sweep parameters, the per-size result rows, an optional metrics
snapshot (:meth:`repro.cluster.SPCluster.metrics_snapshot`) and an
optional latency breakdown (:func:`repro.obs.summarize` output per
stack).  Artifacts are deterministic — sorted keys, no timestamps — so
two identical runs produce byte-identical files.

Validate from the command line::

    python -m repro.bench.artifact validate BENCH_fig11_latency.json
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path
from typing import Any, Optional, Union

from repro.obs.breakdown import PHASES

__all__ = [
    "SCHEMA",
    "load_artifact",
    "make_artifact",
    "validate_artifact",
    "write_artifact",
]

#: current artifact schema identifier; bump the suffix on layout changes
#: (v2: breakdown phases gained "interrupt"; metrics may carry "trace")
SCHEMA = "repro-bench/2"

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_\-]*$")
_SCALAR = (str, int, float, bool, type(None))


def make_artifact(
    name: str,
    params: dict,
    results: list[dict],
    metrics: Optional[dict] = None,
    breakdown: Optional[dict] = None,
) -> dict:
    """Assemble (and validate) one artifact document."""
    doc: dict[str, Any] = {
        "schema": SCHEMA,
        "name": name,
        "params": params,
        "results": results,
    }
    if metrics is not None:
        doc["metrics"] = metrics
    if breakdown is not None:
        doc["breakdown"] = breakdown
    problems = validate_artifact(doc)
    if problems:
        raise ValueError(f"artifact {name!r} invalid: " + "; ".join(problems))
    return doc


def validate_artifact(doc: Any) -> list[str]:
    """All the ways ``doc`` deviates from the schema (empty == valid)."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["artifact must be a JSON object"]
    if doc.get("schema") != SCHEMA:
        problems.append(f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}")
    name = doc.get("name")
    if not isinstance(name, str) or not _NAME_RE.match(name):
        problems.append(f"name must match {_NAME_RE.pattern}, got {name!r}")
    if not isinstance(doc.get("params"), dict):
        problems.append("params must be an object")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        problems.append("results must be a non-empty array")
    else:
        keys = None
        for i, row in enumerate(results):
            if not isinstance(row, dict):
                problems.append(f"results[{i}] is not an object")
                continue
            if keys is None:
                keys = set(row)
            elif set(row) != keys:
                problems.append(f"results[{i}] keys differ from results[0]")
            for k, v in row.items():
                if not isinstance(v, _SCALAR):
                    problems.append(f"results[{i}].{k} is not a JSON scalar")
    if "metrics" in doc:
        m = doc["metrics"]
        if not isinstance(m, dict):
            problems.append("metrics must be an object")
        else:
            for section in ("cluster", "aggregate", "nodes"):
                if section not in m:
                    problems.append(f"metrics missing {section!r}")
    if "breakdown" in doc:
        b = doc["breakdown"]
        if not isinstance(b, dict) or not b:
            problems.append("breakdown must be a non-empty object")
        else:
            for label, summary in b.items():
                if not isinstance(summary, dict):
                    problems.append(f"breakdown[{label!r}] is not an object")
                    continue
                phases = summary.get("phases_us")
                if not isinstance(phases, dict) or set(phases) != set(PHASES):
                    problems.append(
                        f"breakdown[{label!r}].phases_us must cover {PHASES}"
                    )
                if not isinstance(summary.get("count"), int):
                    problems.append(f"breakdown[{label!r}].count must be an int")
    try:
        json.dumps(doc, sort_keys=True, allow_nan=False)
    except (TypeError, ValueError) as exc:
        problems.append(f"not JSON-serialisable: {exc}")
    return problems


def write_artifact(doc: dict, directory: Union[str, Path] = ".") -> Path:
    """Write ``BENCH_<name>.json`` under ``directory``; returns the path."""
    problems = validate_artifact(doc)
    if problems:
        raise ValueError("refusing to write invalid artifact: " + "; ".join(problems))
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{doc['name']}.json"
    path.write_text(json.dumps(doc, sort_keys=True, indent=2) + "\n")
    return path


def load_artifact(path: Union[str, Path]) -> dict:
    """Read and validate an artifact; raises ``ValueError`` when invalid."""
    doc = json.loads(Path(path).read_text())
    problems = validate_artifact(doc)
    if problems:
        raise ValueError(f"{path}: " + "; ".join(problems))
    return doc


def main(argv: Optional[list[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) < 2 or argv[0] != "validate":
        print("usage: python -m repro.bench.artifact validate FILE [FILE...]",
              file=sys.stderr)
        return 2
    status = 0
    for arg in argv[1:]:
        try:
            doc = json.loads(Path(arg).read_text())
        except (OSError, ValueError) as exc:
            print(f"{arg}: UNREADABLE ({exc})")
            status = 1
            continue
        problems = validate_artifact(doc)
        if problems:
            status = 1
            print(f"{arg}: INVALID")
            for p in problems:
                print(f"  - {p}")
        else:
            print(f"{arg}: OK ({doc['name']}, {len(doc['results'])} rows)")
    return status


if __name__ == "__main__":
    sys.exit(main())
