"""Artifact-driven performance-regression gate.

Compares two schema-versioned ``BENCH_<name>.json`` artifacts (see
``repro.bench.artifact``) — or two directories of them — metric by
metric, with per-metric relative tolerances, and exits non-zero when
the current run regressed against the baseline.  The simulation is
deterministic, so the checked-in baselines reproduce exactly and the
default tolerance only absorbs genuine model changes, not noise.

Usage::

    python -m repro.bench.regress BASELINE CURRENT [options]

    BASELINE / CURRENT   artifact files, or directories of them
                         (directories are joined on file name)

    --rtol X             default relative tolerance (default 0.05)
    --atol Y             default absolute tolerance in the metric's own
                         unit (default 1e-9)
    --tol GLOB=RTOL[,ATOL]
                         per-metric override; GLob matches the metric
                         path (e.g. 'breakdown.*.phases_us.wire');
                         repeatable, last match wins

Metric paths look like ``results[size=256].latency_us`` and
``breakdown.native.phases_us.copy``.  A metric fails when
``|current - baseline| > atol + rtol * |baseline|`` (either direction:
a large unexplained speed-up is as suspicious as a slowdown — it
usually means the benchmark stopped measuring what it thinks).
Non-numeric values, ``params``, and the schema line must match exactly.

Exit status: 0 all within tolerance, 1 regression (table on stdout),
2 usage error.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys
from pathlib import Path
from typing import Any, Optional, Union

from repro.bench.artifact import validate_artifact

__all__ = ["compare_artifacts", "compare_paths", "main"]

#: (glob, rtol, atol) defaults applied before user --tol rules; ratios
#: of small numbers swing hard, so improvement percentages get a wide
#: absolute band (percentage points) instead of a relative one
_BUILTIN_TOLS = [
    ("*improvement_%*", 0.05, 2.0),
]


class _Tolerances:
    def __init__(self, rtol: float, atol: float,
                 rules: list[tuple[str, float, float]]):
        self.rtol = rtol
        self.atol = atol
        self.rules = list(_BUILTIN_TOLS) + rules

    def for_path(self, path: str) -> tuple[float, float]:
        rtol, atol = self.rtol, self.atol
        for glob, r, a in self.rules:
            if fnmatch.fnmatch(path, glob):
                rtol, atol = r, a
        return rtol, atol


class Delta:
    """One metric's comparison outcome."""

    __slots__ = ("path", "base", "cur", "rtol", "atol", "ok", "note")

    def __init__(self, path: str, base: Any, cur: Any, rtol: float,
                 atol: float, ok: bool, note: str = ""):
        self.path = path
        self.base = base
        self.cur = cur
        self.rtol = rtol
        self.atol = atol
        self.ok = ok
        self.note = note


def _is_num(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def _cmp_value(path: str, base: Any, cur: Any, tols: _Tolerances,
               deltas: list[Delta]) -> None:
    if _is_num(base) and _is_num(cur):
        rtol, atol = tols.for_path(path)
        ok = abs(cur - base) <= atol + rtol * abs(base)
        deltas.append(Delta(path, base, cur, rtol, atol, ok))
    elif base != cur:
        deltas.append(Delta(path, base, cur, 0.0, 0.0, False,
                            note="value mismatch"))
    else:
        deltas.append(Delta(path, base, cur, 0.0, 0.0, True))


def _cmp_tree(path: str, base: Any, cur: Any, tols: _Tolerances,
              deltas: list[Delta]) -> None:
    if isinstance(base, dict) and isinstance(cur, dict):
        for k in sorted(set(base) | set(cur)):
            sub = f"{path}.{k}" if path else str(k)
            if k not in base:
                deltas.append(Delta(sub, None, cur[k], 0, 0, True,
                                    note="new metric (no baseline)"))
            elif k not in cur:
                deltas.append(Delta(sub, base[k], None, 0, 0, False,
                                    note="metric disappeared"))
            else:
                _cmp_tree(sub, base[k], cur[k], tols, deltas)
    elif isinstance(base, list) and isinstance(cur, list):
        if len(base) != len(cur):
            deltas.append(Delta(path, len(base), len(cur), 0, 0, False,
                                note="row count differs"))
            return
        for i, (b, c) in enumerate(zip(base, cur)):
            _cmp_tree(f"{path}[{i}]", b, c, tols, deltas)
    else:
        _cmp_value(path, base, cur, tols, deltas)


def _row_key(row: dict) -> Optional[str]:
    for k in ("size", "msg_size", "label", "stack", "name"):
        if k in row:
            return f"{k}={row[k]}"
    return None


def _cmp_results(base: list, cur: list, tols: _Tolerances,
                 deltas: list[Delta]) -> None:
    """Join result rows on their size/label key when they have one."""
    bkeys = [_row_key(r) for r in base]
    ckeys = [_row_key(r) for r in cur]
    if None in bkeys or None in ckeys or len(set(bkeys)) != len(bkeys):
        _cmp_tree("results", base, cur, tols, deltas)
        return
    bmap = dict(zip(bkeys, base))
    cmap = dict(zip(ckeys, cur))
    for key in bkeys + [k for k in ckeys if k not in bmap]:
        path = f"results[{key}]"
        if key not in cmap:
            deltas.append(Delta(path, "present", None, 0, 0, False,
                                note="row disappeared"))
        elif key not in bmap:
            deltas.append(Delta(path, None, "present", 0, 0, True,
                                note="new row (no baseline)"))
        else:
            _cmp_tree(path, bmap[key], cmap.pop(key), tols, deltas)


def compare_artifacts(base: dict, cur: dict,
                      tols: Optional[_Tolerances] = None) -> list[Delta]:
    """All metric deltas between two artifact documents."""
    tols = tols or _Tolerances(0.05, 1e-9, [])
    deltas: list[Delta] = []
    for field in ("schema", "name"):
        if base.get(field) != cur.get(field):
            deltas.append(Delta(field, base.get(field), cur.get(field),
                                0, 0, False, note="must match exactly"))
    if base.get("params") != cur.get("params"):
        deltas.append(Delta("params", base.get("params"), cur.get("params"),
                            0, 0, False,
                            note="sweep parameters differ — not comparable"))
    _cmp_results(base.get("results", []), cur.get("results", []), tols, deltas)
    if "breakdown" in base or "breakdown" in cur:
        _cmp_tree("breakdown", base.get("breakdown", {}),
                  cur.get("breakdown", {}), tols, deltas)
    return deltas


def _fmt(v: Any) -> str:
    if _is_num(v) and isinstance(v, float):
        return f"{v:.4g}"
    s = str(v)
    return s if len(s) <= 24 else s[:21] + "..."


def _report(label: str, deltas: list[Delta], verbose: bool) -> bool:
    bad = [d for d in deltas if not d.ok]
    compared = len(deltas)
    if not bad:
        print(f"{label}: OK ({compared} metrics within tolerance)")
        return True
    print(f"{label}: REGRESSION ({len(bad)} of {compared} metrics out of "
          "tolerance)")
    rows = [("metric", "baseline", "current", "delta", "allowed")]
    for d in bad:
        if _is_num(d.base) and _is_num(d.cur):
            delta = f"{d.cur - d.base:+.4g}"
            allowed = f"±({d.atol:g}+{d.rtol:.0%})"
        else:
            delta = d.note or "mismatch"
            allowed = "exact"
        rows.append((d.path, _fmt(d.base), _fmt(d.cur), delta, allowed))
    widths = [max(len(r[i]) for r in rows) for i in range(5)]
    for i, r in enumerate(rows):
        print("  " + "  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip())
        if i == 0:
            print("  " + "  ".join("-" * w for w in widths))
    if verbose:
        for d in deltas:
            if d.ok and d.note:
                print(f"  note: {d.path}: {d.note}")
    return False


def _load(path: Path) -> Union[dict, str]:
    """Artifact document, or an error string."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        return f"unreadable ({exc})"
    if not isinstance(doc, dict):
        return "not a JSON object"
    return doc


def compare_paths(baseline: Path, current: Path, tols: _Tolerances,
                  verbose: bool = False) -> int:
    """Compare two files, or two directories joined on file name."""
    if baseline.is_dir() != current.is_dir():
        print(f"error: {baseline} and {current} must both be files or both "
              "be directories", file=sys.stderr)
        return 2
    if baseline.is_dir():
        pairs = []
        base_files = sorted(baseline.glob("BENCH_*.json"))
        if not base_files:
            print(f"error: no BENCH_*.json under {baseline}", file=sys.stderr)
            return 2
        for bf in base_files:
            pairs.append((bf, current / bf.name))
        for cf in sorted(current.glob("BENCH_*.json")):
            if not (baseline / cf.name).exists():
                print(f"{cf.name}: new artifact (no baseline) — skipped")
    else:
        pairs = [(baseline, current)]

    status = 0
    for bf, cf in pairs:
        base = _load(bf)
        if isinstance(base, str):
            print(f"{bf}: {base}")
            status = max(status, 1)
            continue
        if not cf.exists():
            print(f"{bf.name}: current artifact missing ({cf})")
            status = max(status, 1)
            continue
        cur = _load(cf)
        if isinstance(cur, str):
            print(f"{cf}: {cur}")
            status = max(status, 1)
            continue
        problems = validate_artifact(cur)
        if problems:
            print(f"{cf}: current artifact invalid: " + "; ".join(problems))
            status = max(status, 1)
            continue
        deltas = compare_artifacts(base, cur, tols)
        if not _report(bf.name, deltas, verbose):
            status = max(status, 1)
    return status


def _parse_tol(spec: str) -> tuple[str, float, float]:
    glob, _, val = spec.partition("=")
    if not glob or not val:
        raise argparse.ArgumentTypeError(
            f"--tol wants GLOB=RTOL[,ATOL], got {spec!r}")
    rt, _, at = val.partition(",")
    try:
        return glob, float(rt), float(at) if at else 1e-9
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--tol wants numeric RTOL[,ATOL], got {spec!r}") from None


def main(argv: Optional[list[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.bench.regress",
        description="Diff two benchmark artifacts (or directories of them) "
                    "with per-metric tolerances; non-zero exit on regression.",
    )
    ap.add_argument("baseline", type=Path)
    ap.add_argument("current", type=Path)
    ap.add_argument("--rtol", type=float, default=0.05,
                    help="default relative tolerance (default 0.05)")
    ap.add_argument("--atol", type=float, default=1e-9,
                    help="default absolute tolerance (default 1e-9)")
    ap.add_argument("--tol", action="append", type=_parse_tol, default=[],
                    metavar="GLOB=RTOL[,ATOL]",
                    help="per-metric override, repeatable, last match wins")
    ap.add_argument("-v", "--verbose", action="store_true")
    try:
        args = ap.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code not in (0, None) else 0
    tols = _Tolerances(args.rtol, args.atol, args.tol)
    return compare_paths(args.baseline, args.current, tols, args.verbose)


if __name__ == "__main__":
    sys.exit(main())
