"""Benchmark harness: regenerates every table and figure of the paper.

Each ``figN`` module exposes ``rows()`` returning the figure's data
series and a ``main()`` that prints them; ``python -m repro.bench.figN``
reproduces the figure as a table.  ``pytest benchmarks/`` wraps the same
code in pytest-benchmark targets.
"""

from repro.bench.harness import (
    bandwidth_mbps,
    interrupt_pingpong_us,
    pingpong_us,
    raw_lapi_pingpong_us,
)
from repro.bench.parallel import Cell, run_cells

__all__ = [
    "Cell",
    "bandwidth_mbps",
    "interrupt_pingpong_us",
    "pingpong_us",
    "raw_lapi_pingpong_us",
    "run_cells",
]
