"""Envelope matching: posted receives, early arrivals, wildcards, order.

MPI's non-overtaking rule: between one (sender, receiver, communicator)
pair, messages must be matched in the order they were sent.  Both queues
here preserve insertion order and search linearly from the front, which
(together with the backends announcing arrivals in per-source send
order) implements that rule.  Linear search is also what the real MPCI
did — the paper's §5.3 attributes part of MPI-LAPI's remaining overhead
to "the cost of posting and matching receives"; callers charge
``match_base_us + inspected * match_per_entry_us``.
"""

from __future__ import annotations

from typing import Any, NamedTuple, Optional

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "EarlyArrivalQueue",
    "Envelope",
    "PostedReceiveQueue",
    "envelope_matches",
]

#: wildcard source rank for receives
ANY_SOURCE = -1
#: wildcard tag for receives
ANY_TAG = -1


class Envelope(NamedTuple):
    """The matching triple carried by every message's first packet."""

    context: int  # communicator context id
    src: int  # sender's rank in that communicator
    tag: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Envelope(ctx={self.context}, src={self.src}, tag={self.tag})"


def envelope_matches(context: int, src_pattern: int, tag_pattern: int, env: Envelope) -> bool:
    """Does a receive pattern match a message envelope?"""
    if env.context != context:
        return False
    if src_pattern != ANY_SOURCE and env.src != src_pattern:
        return False
    if tag_pattern != ANY_TAG and env.tag != tag_pattern:
        return False
    return True


class PostedReceiveQueue:
    """Receives posted before their message arrived."""

    def __init__(self) -> None:
        self._entries: list[tuple[int, int, int, Any]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def post(self, context: int, src_pattern: int, tag_pattern: int, handle: Any) -> None:
        self._entries.append((context, src_pattern, tag_pattern, handle))

    def match(self, env: Envelope) -> tuple[Optional[Any], int]:
        """Find (and remove) the first posted receive matching ``env``.

        Returns ``(handle_or_None, entries_inspected)``.
        """
        for i, (ctx, srcp, tagp, handle) in enumerate(self._entries):
            if envelope_matches(ctx, srcp, tagp, env):
                del self._entries[i]
                return handle, i + 1
        return None, len(self._entries)

    def remove(self, handle: Any) -> bool:
        """Cancel a posted receive (MPI_Cancel support)."""
        for i, entry in enumerate(self._entries):
            if entry[3] is handle:
                del self._entries[i]
                return True
        return False


class EarlyArrivalQueue:
    """Messages that arrived before a matching receive was posted.

    Entries are kept in arrival order, which — because each backend
    announces messages in per-source send order — is a legal matching
    order under the non-overtaking rule.
    """

    def __init__(self) -> None:
        self._entries: list[tuple[Envelope, Any]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, env: Envelope, handle: Any) -> None:
        self._entries.append((env, handle))

    def match(
        self, context: int, src_pattern: int, tag_pattern: int
    ) -> tuple[Optional[tuple[Envelope, Any]], int]:
        """Find (and remove) the first early arrival matching the pattern.

        Returns ``((envelope, handle) or None, entries_inspected)``.
        """
        for i, (env, handle) in enumerate(self._entries):
            if envelope_matches(context, src_pattern, tag_pattern, env):
                del self._entries[i]
                return (env, handle), i + 1
        return None, len(self._entries)

    def peek_match(
        self, context: int, src_pattern: int, tag_pattern: int
    ) -> tuple[Optional[tuple[Envelope, Any]], int]:
        """Like :meth:`match` but non-destructive (MPI_Probe support)."""
        for i, (env, handle) in enumerate(self._entries):
            if envelope_matches(context, src_pattern, tag_pattern, env):
                return (env, handle), i + 1
        return None, len(self._entries)
