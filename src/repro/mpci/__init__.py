"""MPCI — point-to-point message-matching machinery.

Both protocol stacks carry an MPCI layer (the paper's Fig. 1a/1c): the
native one is thick (it also drives the Pipes byte stream), the MPI-LAPI
one is thin (matching only; transport is LAPI's job).  The matching data
structures — posted-receive queue and early-arrival queue with wildcard
(``MPI_ANY_SOURCE``/``MPI_ANY_TAG``) support and non-overtaking order —
are shared and live here.
"""

from repro.mpci.match import (
    ANY_SOURCE,
    ANY_TAG,
    EarlyArrivalQueue,
    Envelope,
    PostedReceiveQueue,
    envelope_matches,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "EarlyArrivalQueue",
    "Envelope",
    "PostedReceiveQueue",
    "envelope_matches",
]
