"""Pure (simulation-free) reliability state machines.

These classes hold no simulated time; the protocol engines own timers
and packets.  Keeping them pure makes the invariants property-testable
with hypothesis (see ``tests/transport/``).

Sequence numbers are per flow (one direction of one node pair), start
at 0, and increase by 1 per data packet.
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = ["ReceiverLedger", "SenderWindow"]


class SenderWindow:
    """Sender side: bounded in-flight window + cumulative-ack bookkeeping."""

    def __init__(self, window: int):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.next_seq = 0
        #: seq -> opaque retransmission payload (protocol keeps the packet)
        self.unacked: dict[int, Any] = {}

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return len(self.unacked)

    @property
    def can_send(self) -> bool:
        return self.in_flight < self.window

    def send(self, item: Any) -> int:
        """Register a new data packet; returns its sequence number."""
        if not self.can_send:
            raise RuntimeError("window full: caller must wait for acks")
        seq = self.next_seq
        self.next_seq += 1
        self.unacked[seq] = item
        return seq

    def on_ack(self, cum: int) -> int:
        """Process a cumulative ack covering every seq <= cum.

        Returns the number of packets newly acknowledged.
        """
        stale = [s for s in self.unacked if s <= cum]
        for s in stale:
            del self.unacked[s]
        return len(stale)

    def oldest_unacked(self) -> Optional[tuple[int, Any]]:
        """The retransmission candidate, if any."""
        if not self.unacked:
            return None
        seq = min(self.unacked)
        return seq, self.unacked[seq]


class ReceiverLedger:
    """Receiver side: duplicate suppression + cumulative-ack computation.

    Tolerates arbitrary reordering.  ``accept`` classifies a sequence
    number; the protocol delivers only packets classified ``"new"``.
    """

    def __init__(self) -> None:
        #: highest sequence number below which everything has arrived
        self.cum = -1
        #: received sequence numbers above the contiguous prefix
        self._beyond: set[int] = set()

    def accept(self, seq: int) -> str:
        """Classify an arriving sequence number: ``"new"`` or ``"dup"``."""
        if seq < 0:
            raise ValueError("negative sequence number")
        if seq <= self.cum or seq in self._beyond:
            return "dup"
        self._beyond.add(seq)
        while (self.cum + 1) in self._beyond:
            self.cum += 1
            self._beyond.remove(self.cum)
        return "new"

    @property
    def cum_ack(self) -> int:
        """Value to put in a cumulative ack (−1 if nothing contiguous yet)."""
        return self.cum

    @property
    def gap_count(self) -> int:
        """How many packets sit above a hole (diagnostic)."""
        return len(self._beyond)
