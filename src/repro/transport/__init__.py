"""Shared transport machinery: sliding windows and duplicate detection.

Both reliable layers in the paper's Figure 1 — the Pipes byte stream
(native stack) and LAPI (new stack) — need the same core mechanics:
a bounded sender window with cumulative acknowledgements and
retransmission, and receiver-side duplicate suppression that tolerates
the fabric's out-of-order delivery.  The *delivery discipline* differs
(Pipes reorders into a byte stream; LAPI delivers immediately and
assembles by offset), so that part stays in each protocol.
"""

from repro.transport.reliability import ReceiverLedger, SenderWindow

__all__ = ["ReceiverLedger", "SenderWindow"]
