"""HAL — the packet layer (Hardware Abstraction Layer).

Provides the packet interface both protocol stacks sit on: per-packet
software send/receive costs, fragmentation of messages into switch
packets, and the handshake with the adapter (including back-pressure
from the bounded adapter FIFOs, which model the pinned HAL network
buffers).
"""

from repro.hal.hal import Hal, fragment

__all__ = ["Hal", "fragment"]
