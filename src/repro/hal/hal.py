"""Packet-layer services shared by Pipes and LAPI."""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.machine.cpu import Cpu
from repro.machine.params import MachineParams
from repro.machine.stats import NodeStats
from repro.network.adapter import Adapter
from repro.network.packet import Packet
from repro.sim import Environment, Event

__all__ = ["Hal", "fragment"]


def fragment(nbytes: int, max_payload: int) -> list[tuple[int, int]]:
    """Split ``nbytes`` into (offset, length) packet chunks.

    A zero-byte message still occupies one (empty) packet — control
    messages and zero-length MPI sends ride header-only packets.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    if max_payload < 1:
        raise ValueError("max_payload must be >= 1")
    if nbytes == 0:
        return [(0, 0)]
    return [
        (off, min(max_payload, nbytes - off)) for off in range(0, nbytes, max_payload)
    ]


class Hal:
    """One node's packet layer.

    ``header_bytes`` is fixed per protocol instance: the native stack and
    LAPI pay different on-wire header sizes (paper §6.1).
    """

    def __init__(
        self,
        env: Environment,
        cpu: Cpu,
        adapter: Adapter,
        params: MachineParams,
        stats: NodeStats,
        header_bytes: int,
    ):
        self.env = env
        self.cpu = cpu
        self.adapter = adapter
        self.params = params
        self.stats = stats
        self.header_bytes = header_bytes

    @property
    def node_id(self) -> int:
        return self.adapter.node_id

    # ------------------------------------------------------------------
    def send(
        self,
        thread: str,
        dst: int,
        header: dict[str, Any],
        payload: bytes,
        on_dma_done: Optional[Event] = None,
    ) -> Generator:
        """Send one packet: charge software cost, then hand to adapter.

        The CPU is *not* held while waiting for adapter FIFO space.
        """
        if len(payload) > self.params.packet_payload:
            raise ValueError(
                f"payload {len(payload)}B exceeds packet_payload "
                f"{self.params.packet_payload}B"
            )
        yield from self.cpu.execute(thread, self.params.hal_send_pkt_us)
        pkt = Packet(
            src=self.node_id,
            dst=dst,
            header=header,
            payload=payload,
            header_bytes=self.header_bytes,
        )
        yield self.adapter.enqueue_send(pkt, on_dma_done)

    # ------------------------------------------------------------------
    def poll(self) -> Optional[Packet]:
        """Non-blocking receive of the next packet (cost charged separately
        via :meth:`charge_recv` so ISRs can batch)."""
        return self.adapter.poll()

    def charge_recv(self, thread: str) -> Generator:
        """Per-packet receive-side HAL cost."""
        yield from self.cpu.execute(thread, self.params.hal_recv_pkt_us)

    def wait_rx(self) -> Event:
        return self.adapter.wait_rx()

    @property
    def rx_pending(self) -> int:
        return self.adapter.rx_pending
