"""Reusable cluster configurations.

Benchmarks and fault campaigns kept re-spelling the same
``MachineParams``/``SPCluster`` keyword soup.  :class:`ClusterConfig`
captures one runnable configuration as data, and the named presets
cover the recurring shapes:

``paper_4node``
    The paper's measurement setup: four nodes on the default
    (TB3/332 MHz-class) machine parameters.
``interrupt_mode``
    Two nodes with interrupt-driven receive progress (Fig 13).
``lossy``
    Two nodes with a standing 5 % packet-loss floor, for exercising
    the reliability layer without composing a fault plan.

Every preset accepts keyword overrides::

    cluster = preset("paper_4node", stack="native").build()
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from repro.machine import MachineParams

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import SPCluster
    from repro.faults.plan import FaultPlan

__all__ = ["ClusterConfig", "PRESETS", "preset"]


@dataclass(frozen=True)
class ClusterConfig:
    """Everything needed to build one :class:`SPCluster`."""

    num_nodes: int = 2
    stack: str = "lapi-enhanced"
    params: Optional[MachineParams] = None
    seed: int = 0
    interrupt_mode: bool = False
    trace: bool = False
    fault_plan: Optional["FaultPlan"] = None

    def replace(self, **changes) -> "ClusterConfig":
        return replace(self, **changes)

    def with_params(self, **param_changes) -> "ClusterConfig":
        """A copy whose :class:`MachineParams` carry ``param_changes``."""
        base = self.params if self.params is not None else MachineParams()
        return replace(self, params=base.replace(**param_changes))

    def build(self) -> "SPCluster":
        from repro.cluster.cluster import SPCluster

        return SPCluster(
            self.num_nodes,
            stack=self.stack,
            params=self.params,
            seed=self.seed,
            interrupt_mode=self.interrupt_mode,
            trace=self.trace,
            fault_plan=self.fault_plan,
        )


def _paper_4node(**overrides) -> ClusterConfig:
    return ClusterConfig(num_nodes=4).replace(**overrides)


def _interrupt_mode(**overrides) -> ClusterConfig:
    return ClusterConfig(num_nodes=2, interrupt_mode=True).replace(**overrides)


def _lossy(rate: float = 0.05, **overrides) -> ClusterConfig:
    cfg = ClusterConfig(num_nodes=2).with_params(packet_loss_rate=rate)
    return cfg.replace(**overrides)


PRESETS = {
    "paper_4node": _paper_4node,
    "interrupt_mode": _interrupt_mode,
    "lossy": _lossy,
}


def preset(name: str, **overrides) -> ClusterConfig:
    """Instantiate a named preset with keyword overrides."""
    factory = PRESETS.get(name)
    if factory is None:
        raise KeyError(f"unknown preset {name!r}; choose from {sorted(PRESETS)}")
    return factory(**overrides)
