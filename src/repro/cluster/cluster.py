"""SPCluster: an N-node RS/6000 SP with one of the four protocol stacks.

Stacks:

- ``"native"``         MPI → MPCI → Pipes → HAL (paper Fig 1a)
- ``"lapi-base"``      MPI → thin MPCI → LAPI, threaded completion handlers
- ``"lapi-counters"``  as above, eager completions via target counters
- ``"lapi-enhanced"``  LAPI extended with in-context completion handlers
- ``"raw-lapi"``       no MPI layer: programs receive the Lapi object
                       (used for the paper's RAW LAPI baseline in Fig 10)

Usage::

    cluster = SPCluster(4, stack="lapi-enhanced")

    def program(comm, rank, size):
        yield from comm.send(b"hello", dest=(rank + 1) % size)
        ...

    result = cluster.run(program)
    print(result.elapsed_us, result.stats.copies)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.faults.plan import FaultPlan
from repro.faults.points import FaultInjector
from repro.hal import Hal
from repro.lapi import Lapi
from repro.machine import Cpu, MachineParams, NodeStats
from repro.machine.stats import aggregate
from repro.mpi.api import Communicator
from repro.mpi.backends import LapiBackend, NativeBackend
from repro.network import Adapter, SwitchFabric
from repro.obs import MetricsRegistry
from repro.pipes import PipeEndpoint
from repro.rngs import RngStreams
from repro.sim import Environment, SimulationError

__all__ = ["DeadlockError", "RankResult", "RunResult", "SPCluster", "STACKS"]


class DeadlockError(SimulationError):
    """The event queue drained with ranks still blocked — a
    communication deadlock.  The message names the stuck ranks."""

STACKS = ("native", "lapi-base", "lapi-counters", "lapi-enhanced", "raw-lapi")


@dataclass
class RankResult:
    rank: int
    value: Any
    finished_at: float


@dataclass
class RunResult:
    """Outcome of one program run across all ranks."""

    ranks: list[RankResult]
    elapsed_us: float
    stats: NodeStats  # aggregated over nodes
    #: full metrics snapshot (cluster + aggregate + per-node), JSON-able
    metrics: Optional[dict] = None

    @property
    def values(self) -> list[Any]:
        return [r.value for r in self.ranks]


class SPCluster:
    """One simulated SP system."""

    def __init__(
        self,
        num_nodes: int,
        stack: str = "lapi-enhanced",
        params: Optional[MachineParams] = None,
        seed: int = 0,
        interrupt_mode: bool = False,
        trace: bool = False,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if num_nodes < 1:
            raise ValueError("need at least one node")
        if stack not in STACKS:
            raise ValueError(f"unknown stack {stack!r}; choose from {STACKS}")
        self.num_nodes = num_nodes
        self.stack = stack
        self.params = params if params is not None else MachineParams()
        self.params.validate()
        self.interrupt_mode = interrupt_mode
        self.seed = seed
        #: named RNG substreams — the fabric and the fault injector draw
        #: from independent streams, so enabling faults never perturbs a
        #: fault-free trajectory with the same seed
        self.streams = RngStreams(seed)

        #: cluster-wide registry (sim kernel + fabric + faults); per-node
        #: metrics live in each node's ``NodeStats.registry``
        self.metrics = MetricsRegistry()
        self.env = Environment(metrics=self.metrics)
        self.tracer = None
        if trace:
            from repro.trace import Tracer

            self.tracer = Tracer(self.env)

        self.fault_plan = fault_plan
        self.fault_injector = FaultInjector(
            plan=fault_plan,
            rng=self.streams.faults,
            metrics=self.metrics,
            tracer=self.tracer,
            params=self.params,
        )
        fi = self.fault_injector

        if self.params.fabric_model == "staged":
            from repro.network.staged import StagedFabric

            self.fabric = StagedFabric(
                self.env, self.params, rng=self.streams.fabric,
                metrics=self.metrics, faults=fi.point("fabric"),
            )
        else:
            self.fabric = SwitchFabric(
                self.env, self.params, rng=self.streams.fabric,
                metrics=self.metrics, faults=fi.point("fabric"),
            )
        self.node_stats = [NodeStats() for _ in range(num_nodes)]
        for i, s in enumerate(self.node_stats):
            s.node_id = i
            if self.tracer is not None:
                s.tracer = self.tracer
        self.cpus = [
            Cpu(self.env, self.params, self.node_stats[i], name=f"cpu{i}",
                cores=self.params.cpus_per_node)
            for i in range(num_nodes)
        ]
        self.adapters = [
            Adapter(self.env, self.params, self.fabric, i, self.node_stats[i])
            for i in range(num_nodes)
        ]
        for i in range(num_nodes):
            self.cpus[i].faults = fi.point("cpu", node=i)
            self.adapters[i].faults = fi.point("adapter", node=i)
        fi.start_storms(self.env, self.cpus)

        header = (
            self.params.native_header_bytes
            if stack == "native"
            else self.params.lapi_header_bytes
        )
        self.hals = [
            Hal(self.env, self.cpus[i], self.adapters[i], self.params,
                self.node_stats[i], header)
            for i in range(num_nodes)
        ]

        self.lapis: list[Optional[Lapi]] = [None] * num_nodes
        self.pipes: list[Optional[PipeEndpoint]] = [None] * num_nodes
        self.backends = []

        if stack == "native":
            for i in range(num_nodes):
                pipe = PipeEndpoint(self.env, self.cpus[i], self.hals[i],
                                    self.params, self.node_stats[i])
                self.pipes[i] = pipe
                self.backends.append(
                    NativeBackend(self.env, self.cpus[i], self.params,
                                  self.node_stats[i], i, num_nodes, pipe)
                )
        elif stack == "raw-lapi":
            for i in range(num_nodes):
                self.lapis[i] = Lapi(
                    self.env, self.cpus[i], self.hals[i], self.params,
                    self.node_stats[i], task_id=i, num_tasks=num_nodes,
                    enhanced=True,
                )
        else:
            variant = stack.removeprefix("lapi-")
            for i in range(num_nodes):
                lapi = Lapi(
                    self.env, self.cpus[i], self.hals[i], self.params,
                    self.node_stats[i], task_id=i, num_tasks=num_nodes,
                    enhanced=(variant == "enhanced"),
                )
                self.lapis[i] = lapi
                self.backends.append(
                    LapiBackend(self.env, self.cpus[i], self.params,
                                self.node_stats[i], i, num_nodes, lapi, variant)
                )
            peers = {b.task_id: b for b in self.backends}
            for b in self.backends:
                b.wire(peers)

        for i in range(num_nodes):
            point = fi.point("dispatcher", node=i)
            if self.lapis[i] is not None:
                self.lapis[i].faults = point
            if self.pipes[i] is not None:
                self.pipes[i].faults = point

        if interrupt_mode:
            if stack == "raw-lapi":
                for lapi in self.lapis:
                    lapi.senv("INTERRUPT_SET", True)
            else:
                for b in self.backends:
                    b.set_interrupt_mode(True)

        self.comms: list[Optional[Communicator]] = [None] * num_nodes
        if self.backends:
            world = list(range(num_nodes))
            self.comms = [
                Communicator(self.backends[i], world, i) for i in range(num_nodes)
            ]

    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config) -> "SPCluster":
        """Build from a :class:`repro.cluster.ClusterConfig`."""
        return config.build()

    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """Deterministic, JSON-able view of every registry in the cluster.

        ``cluster`` holds sim-kernel and fabric metrics, ``nodes`` the
        per-node registries in rank order, ``aggregate`` their merge.
        When tracing is on, ``trace`` summarises the capture: record and
        drop counts (per layer), the number of distinct message ids
        seen, and whether the capture is complete (nothing dropped).
        """
        node_regs = [s.registry for s in self.node_stats]
        snap = {
            "cluster": self.metrics.snapshot(),
            "aggregate": MetricsRegistry.merged(node_regs).snapshot(),
            "nodes": [r.snapshot() for r in node_regs],
        }
        if self.tracer is not None:
            mids = {r.fields["mid"] for r in self.tracer.records
                    if "mid" in r.fields}
            snap["trace"] = {
                "records": len(self.tracer.records),
                "dropped": self.tracer.dropped,
                "dropped_by_layer": dict(sorted(
                    self.tracer.dropped_by_layer.items())),
                "messages": len(mids),
                "complete": self.tracer.dropped == 0,
            }
        return snap

    def run(self, program: Callable, *args, **kwargs) -> RunResult:
        """Run ``program(comm, rank, size, *args, **kwargs)`` on all ranks.

        For the ``raw-lapi`` stack the program signature is
        ``program(lapi, rank, size, *args, **kwargs)``.  A communication
        deadlock surfaces as :class:`repro.sim.SimulationError` (the
        event queue drains with ranks still blocked).
        """
        start = self.env.now
        results: list[Optional[RankResult]] = [None] * self.num_nodes
        procs = []
        for rank in range(self.num_nodes):
            handle = self.comms[rank] if self.stack != "raw-lapi" else self.lapis[rank]
            procs.append(
                self.env.process(
                    self._wrap(program, handle, rank, results, args, kwargs),
                    name=f"rank{rank}",
                )
            )
        try:
            self.env.run(until=self.env.all_of(procs))
        except SimulationError as exc:
            if "deadlock" not in str(exc):
                raise
            stuck = [r for r in range(self.num_nodes) if results[r] is None]
            raise DeadlockError(
                f"communication deadlock at t={self.env.now:.1f}us: "
                f"rank(s) {stuck} never completed (every rank is blocked "
                "waiting for a message or event that can no longer arrive)"
            ) from exc
        return RunResult(
            ranks=[r for r in results],
            elapsed_us=self.env.now - start,
            stats=aggregate(self.node_stats),
            metrics=self.metrics_snapshot(),
        )

    def _wrap(self, program, handle, rank, results, args, kwargs):
        value = yield from program(handle, rank, self.num_nodes, *args, **kwargs)
        results[rank] = RankResult(rank=rank, value=value, finished_at=self.env.now)
