"""Cluster assembly: build an N-node simulated SP with a chosen stack."""

from repro.cluster.cluster import STACKS, RankResult, RunResult, SPCluster

__all__ = ["RankResult", "RunResult", "SPCluster", "STACKS"]
