"""Cluster assembly: build an N-node simulated SP with a chosen stack."""

from repro.cluster.cluster import (
    STACKS,
    DeadlockError,
    RankResult,
    RunResult,
    SPCluster,
)
from repro.cluster.config import PRESETS, ClusterConfig, preset

__all__ = [
    "ClusterConfig",
    "DeadlockError",
    "PRESETS",
    "RankResult",
    "RunResult",
    "SPCluster",
    "STACKS",
    "preset",
]
