"""Simulated SP switch network: packets, fabric, and node adapters.

The fabric models the SP's multistage packet-switched network: four
source routes per node pair with differing congestion (skew + jitter),
which is what produces genuine out-of-order packet arrival — the
phenomenon both the Pipes layer (reordering byte stream) and LAPI
(assemble-by-offset) must handle.  Packet loss can be injected for
reliability testing.

The adapter models the TB3/TBMX card: DMA engines between host memory
and adapter FIFOs, bounded receive FIFOs (overflow drops packets), and
either polled or interrupt-driven receive notification.
"""

from repro.network.adapter import Adapter
from repro.network.fabric import SwitchFabric
from repro.network.packet import Packet

__all__ = ["Adapter", "Packet", "SwitchFabric"]
