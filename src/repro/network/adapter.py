"""The switch adapter (TB3/TBMX model).

Send path (two-stage pipeline, so DMA overlaps link serialisation):

    HAL --enqueue_send()--> send FIFO --[DMA engine]--> link queue
        --[link engine: wire time]--> fabric.transmit()

Receive path:

    fabric --_fabric_deliver()--> adapter SRAM queue --[recv DMA engine]-->
        host receive FIFO (bounded; overflow drops) --> notification

Notification is either *polled* (``poll()`` / ``wait_rx()``) or
*interrupt-driven*: when ``interrupt_mode`` is on and an ISR is
registered, packet arrival schedules the ISR after
``interrupt_latency_us``.  The ISR itself is protocol-supplied — the
native stack installs one with the paper's hysteresis dwell, LAPI
installs a plain drain loop.

Payloads are snapshotted (``bytes``) when a packet is built, so the
simulation always delivers the data as it was at send time; the *timing*
of when the real hardware would have licensed buffer reuse is still
reported through ``on_dma_done`` for origin-counter semantics.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generator, Optional

from repro.machine.params import MachineParams
from repro.machine.stats import NodeStats
from repro.network.fabric import SwitchFabric
from repro.network.packet import Packet
from repro.sim import Channel, Environment, Event, Store

__all__ = ["Adapter", "SendDescriptor"]


class SendDescriptor:
    """A packet queued for transmission plus its DMA-done signal."""

    __slots__ = ("packet", "on_dma_done")

    def __init__(self, packet: Packet, on_dma_done: Optional[Event] = None):
        self.packet = packet
        self.on_dma_done = on_dma_done


class Adapter:
    """One node's switch adapter."""

    def __init__(
        self,
        env: Environment,
        params: MachineParams,
        fabric: SwitchFabric,
        node_id: int,
        stats: NodeStats,
    ):
        self.env = env
        self.params = params
        self.fabric = fabric
        self.node_id = node_id
        self.stats = stats
        #: fault hook (:class:`repro.faults.FaultPoint`) for host-FIFO
        #: squeeze events; installed by the cluster, ``None`` otherwise
        self.faults = None

        # receive-FIFO occupancy high water: how close the node came to
        # the overflow drops the reliability layers must then repair
        self._g_rx_depth = stats.registry.gauge("adapter.rx_fifo_depth")

        self._send_fifo = Channel(env, params.adapter_send_fifo, name=f"a{node_id}.tx")
        self._link_q = Channel(env, 2, name=f"a{node_id}.link")
        self._sram_rx = Store(env, name=f"a{node_id}.sram")
        self._host_rx: deque[Packet] = deque()
        self._rx_waiters: list[Event] = []

        #: interrupt-driven receive notification
        self.interrupt_mode: bool = False
        self._isr: Optional[Callable[["Adapter"], Generator]] = None
        self._isr_active = False

        fabric.attach(self)
        env.process(self._send_dma_engine(), name=f"a{node_id}.txdma")
        env.process(self._link_engine(), name=f"a{node_id}.txlink")
        env.process(self._recv_dma_engine(), name=f"a{node_id}.rxdma")

    # ------------------------------------------------------------- send
    def enqueue_send(self, packet: Packet, on_dma_done: Optional[Event] = None) -> Event:
        """Queue a packet for transmission.

        Returns the (possibly blocking) FIFO-admission event; yield it to
        respect adapter back-pressure.  ``on_dma_done`` is succeeded when
        the payload has left host memory (origin-buffer reuse point).
        """
        if packet.src != self.node_id:
            raise ValueError(f"packet src {packet.src} != adapter node {self.node_id}")
        return self._send_fifo.put(SendDescriptor(packet, on_dma_done))

    def _send_dma_engine(self) -> Generator:
        p = self.params
        while True:
            desc: SendDescriptor = yield self._send_fifo.get()
            yield self.env.timeout(p.dma_cost(desc.packet.wire_bytes))
            if desc.on_dma_done is not None and not desc.on_dma_done.triggered:
                desc.on_dma_done.succeed()
            yield self._link_q.put(desc.packet)

    def _link_engine(self) -> Generator:
        p = self.params
        while True:
            packet: Packet = yield self._link_q.get()
            yield self.env.timeout(p.wire_cost(packet.wire_bytes))
            packet.route = self.fabric.pick_route(packet.src, packet.dst)
            self.stats.packets_sent += 1
            self.stats.bytes_on_wire += packet.wire_bytes
            self.stats.trace(
                "adapter", "pkt_tx", dst=packet.dst, route=packet.route,
                kind=packet.header.get("kind"), seq=packet.header.get("seq"),
                bytes=packet.wire_bytes, msg=packet.header.get("msg"),
                fid=packet.header.get("fid"), mid=packet.header.get("mid"),
            )
            self.fabric.transmit(packet)

    # ---------------------------------------------------------- receive
    def _fabric_deliver(self, packet: Packet) -> None:
        """Fabric hand-off: packet reached this adapter's SRAM."""
        self._sram_rx.put(packet)

    def _fifo_capacity(self) -> int:
        """Host receive-FIFO capacity right now (fault squeeze aware)."""
        cap = self.params.adapter_recv_fifo
        if self.faults is not None:
            cap = self.faults.fifo_capacity(cap, self.env.now)
        return cap

    def _recv_dma_engine(self) -> Generator:
        p = self.params
        while True:
            packet: Packet = yield self._sram_rx.get()
            yield self.env.timeout(p.dma_cost(packet.wire_bytes))
            if len(self._host_rx) >= self._fifo_capacity():
                # Host FIFO overflow: the adapter drops; reliability
                # layers above recover via retransmission.
                self.stats.packets_dropped += 1
                self.stats.trace("adapter", "fifo_drop", src=packet.src,
                                 seq=packet.header.get("seq"),
                                 mid=packet.header.get("mid"))
                continue
            self._host_rx.append(packet)
            self._g_rx_depth.set(len(self._host_rx))
            self.stats.packets_received += 1
            self.stats.trace(
                "adapter", "pkt_rx", src=packet.src,
                kind=packet.header.get("kind"), seq=packet.header.get("seq"),
                msg=packet.header.get("msg"), fid=packet.header.get("fid"),
                mid=packet.header.get("mid"),
            )
            self._notify_rx()

    def _notify_rx(self) -> None:
        waiters, self._rx_waiters = self._rx_waiters, []
        for ev in waiters:
            if not ev.triggered:
                ev.succeed()
        if self.interrupt_mode and self._isr is not None and not self._isr_active:
            self._isr_active = True
            self.env.call_later(self.params.interrupt_latency_us,
                                self._start_isr)

    def _start_isr(self, _ev: Event) -> None:
        self.env.process(self._isr_wrapper(), name=f"a{self.node_id}.isr")

    def _isr_wrapper(self) -> Generator:
        try:
            yield from self._isr(self)
        finally:
            self._isr_active = False
            if self._host_rx and self.interrupt_mode and self._isr is not None:
                # Packets landed after the ISR drained and exited.
                self._isr_active = True
                self.env.call_later(self.params.interrupt_latency_us,
                                    self._start_isr)

    # ----------------------------------------------------------- polling
    def poll(self) -> Optional[Packet]:
        """Non-blocking pop of the next received packet (no cost charged;
        the caller accounts its own poll cost)."""
        if self._host_rx:
            return self._host_rx.popleft()
        return None

    @property
    def rx_pending(self) -> int:
        return len(self._host_rx)

    def wait_rx(self) -> Event:
        """Event that fires when the next packet lands in the host FIFO.

        Fires immediately if packets are already pending.
        """
        ev = self.env.event()
        if self._host_rx:
            ev.succeed()
        else:
            self._rx_waiters.append(ev)
        return ev

    # ------------------------------------------------------- interrupts
    def set_interrupt_handler(
        self, isr: Optional[Callable[["Adapter"], Generator]]
    ) -> None:
        """Install the protocol's interrupt service routine."""
        self._isr = isr

    def set_interrupt_mode(self, enabled: bool) -> None:
        self.interrupt_mode = enabled
        if enabled and self._host_rx and self._isr is not None and not self._isr_active:
            self._isr_active = True
            self.env.call_later(self.params.interrupt_latency_us,
                                self._start_isr)
