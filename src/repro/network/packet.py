"""The unit of transfer on the simulated switch."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_pkt_ids = itertools.count()


@dataclass(slots=True)
class Packet:
    """One switch packet.

    ``header`` is protocol metadata (Pipes or LAPI fields); its on-wire
    size is accounted separately via ``header_bytes`` so both stacks pay
    for their (different) header sizes, as the paper discusses in §6.1.

    ``payload`` is *real* data — bytes (or a read-only ``memoryview``
    of the sender's snapshot) move end to end through the simulation, so
    data integrity is checked by the tests, not assumed.
    """

    src: int
    dst: int
    header: dict[str, Any]
    payload: bytes
    header_bytes: int
    pkt_id: int = field(default_factory=lambda: next(_pkt_ids))
    route: int = 0

    @property
    def wire_bytes(self) -> int:
        """Total bytes serialised onto the link."""
        return self.header_bytes + len(self.payload)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = self.header.get("kind", "?")
        return (
            f"<Packet #{self.pkt_id} {self.src}->{self.dst} kind={kind} "
            f"route={self.route} {len(self.payload)}B>"
        )
