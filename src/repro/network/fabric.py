"""The multistage switch fabric.

Routing model: each (source, destination) flow round-robins over
``params.route_count`` source routes, as the SP switch does.  Route ``r``
carries a standing congestion penalty of ``r * route_skew_us`` plus a
uniform jitter draw — so later packets of a message can overtake earlier
ones when the skew/jitter exceeds the inter-packet serialisation gap.

Faults (loss, duplication, reorder storms) are injected through an
optional :class:`repro.faults.FaultPoint`; a fabric built without one
derives a standing loss point from ``params.packet_loss_rate``, so the
scalar knob keeps working for directly constructed fabrics.

The fabric owns no CPU time; link serialisation happens in the sending
adapter and reception costs in the receiving one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.machine.params import MachineParams
from repro.sim import Environment

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.adapter import Adapter
    from repro.network.packet import Packet

__all__ = ["SwitchFabric"]


class SwitchFabric:
    """Connects node adapters; delivers packets with route-dependent delay."""

    def __init__(
        self,
        env: Environment,
        params: MachineParams,
        rng: Optional[np.random.Generator] = None,
        metrics=None,
        faults=None,
    ):
        params.validate()
        self.env = env
        self.params = params
        self.rng = rng if rng is not None else np.random.default_rng(0)
        #: fault hook (:class:`repro.faults.FaultPoint`) — ``None`` keeps
        #: the hot path draw-free
        self.faults = faults
        if faults is None:
            from repro.faults.points import FaultInjector

            # standing loss point reading params.packet_loss_rate live
            # (drawing from the fabric rng, in the pre-FaultPoint order)
            self.faults = FaultInjector(rng=self.rng, params=params).point("fabric")
        self._adapters: dict[int, "Adapter"] = {}
        #: per-destination arrival callbacks (built in attach) so transmit
        #: allocates no closure per packet
        self._arrive: dict[int, callable] = {}
        self._next_route: dict[tuple[int, int], int] = {}
        #: total packets the fabric dropped (loss injection)
        self.dropped = 0
        #: total packets delivered
        self.delivered = 0
        #: optional MetricsRegistry for per-packet traversal-delay stats
        self.metrics = metrics
        self._h_delay = None if metrics is None else metrics.histogram("net.route_delay_us")
        self._m_dropped = None if metrics is None else metrics.counter("net.dropped")

    # ------------------------------------------------------------------
    def attach(self, adapter: "Adapter") -> None:
        if adapter.node_id in self._adapters:
            raise ValueError(f"node {adapter.node_id} already attached")
        self._adapters[adapter.node_id] = adapter
        deliver = adapter._fabric_deliver

        def arrive(ev) -> None:
            self.delivered += 1
            deliver(ev._value)

        self._arrive[adapter.node_id] = arrive

    @property
    def node_ids(self) -> list[int]:
        return sorted(self._adapters)

    def pick_route(self, src: int, dst: int) -> int:
        """Round-robin source routing per flow."""
        key = (src, dst)
        r = self._next_route.get(key, 0)
        self._next_route[key] = (r + 1) % self.params.route_count
        return r

    # ------------------------------------------------------------------
    def transmit(self, packet: "Packet") -> None:
        """Inject a fully serialised packet into the fabric.

        Called by the sending adapter at the moment the last byte left
        its link.  Delivery to the destination adapter is scheduled after
        the route's traversal latency.
        """
        arrive = self._arrive.get(packet.dst)
        if arrive is None:
            raise KeyError(f"no adapter attached for node {packet.dst}")
        p = self.params
        copies, extras = 1, ()
        faults = self.faults
        # The standing loss point derived from params has no plan events;
        # skip the whole verdict call while its live-read loss floor is
        # zero (a mid-run heal/hurt through params still takes effect, and
        # lossy configs keep the exact pre-existing draw order).
        if faults is not None and (faults.events
                                   or faults.injector.base_loss_rate != 0.0):
            verdict = faults.on_packet(packet, self.env.now)
            if verdict is not None:
                if verdict.copies == 0:
                    self.dropped += 1
                    if self._m_dropped is not None:
                        self._m_dropped.incr()
                    return
                copies = verdict.copies
                extras = verdict.extra_delays_us
        delay = (
            p.route_base_us
            + packet.route * p.route_skew_us
            + (self.rng.random() * p.route_jitter_us if p.route_jitter_us > 0 else 0.0)
        )
        if copies == 1 and not extras:
            if self._h_delay is not None:
                self._h_delay.observe(delay)
            self.env.call_later(delay, arrive, packet)
            return
        for k in range(copies):
            d = delay + (extras[k] if k < len(extras) else 0.0)
            if self._h_delay is not None:
                self._h_delay.observe(d)
            self.env.call_later(d, arrive, packet)
