"""A contention-aware multistage switch model (Vulcan-style).

The default :class:`~repro.network.fabric.SwitchFabric` prices the
fabric as a fixed latency plus per-route skew/jitter.  This model goes
one level deeper: an explicit **butterfly** of radix-2 switching
elements, ``log2(N)`` stages, with destination-tag routing and FCFS
occupancy on every inter-stage link.  The SP's four routes per node
pair appear as four parallel switch *planes* (as on real SP frames),
selected round-robin per packet.

Cut-through timing: a packet's own latency grows by ``switch_hop_us``
per stage, while each link it crosses stays *occupied* for the packet's
full serialisation time — so disjoint flows pass in parallel but
converging flows (incast, transposes) queue at shared links.  Link
occupancy is tracked analytically (``busy_until`` per link), which
keeps the event count per packet at one.

Enable with ``MachineParams(fabric_model="staged")``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.machine.params import MachineParams
from repro.sim import Environment

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.adapter import Adapter
    from repro.network.packet import Packet

__all__ = ["StagedFabric", "butterfly_links"]


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


def butterfly_links(src: int, dst: int, stages: int) -> list[tuple[int, int, int]]:
    """The inter-stage links a packet crosses in a radix-2 butterfly.

    Destination-tag routing: after stage ``s`` the packet sits at the
    address whose top ``s+1`` bits come from ``dst`` and whose remaining
    bits come from ``src``.  Two packets share a link iff they are at
    the same stage with the same dst-prefix and src-suffix, which this
    key encodes directly.
    """
    links = []
    for s in range(stages):
        dst_prefix = dst >> (stages - 1 - s)
        src_suffix = src & ((1 << (stages - 1 - s)) - 1)
        links.append((s, dst_prefix, src_suffix))
    return links


class StagedFabric:
    """Drop-in alternative to :class:`SwitchFabric` with link contention."""

    def __init__(
        self,
        env: Environment,
        params: MachineParams,
        rng: Optional[np.random.Generator] = None,
        metrics=None,
        faults=None,
    ):
        params.validate()
        self.env = env
        self.params = params
        self.rng = rng if rng is not None else np.random.default_rng(0)
        #: fault hook (:class:`repro.faults.FaultPoint`), as on SwitchFabric
        self.faults = faults
        if faults is None:
            from repro.faults.points import FaultInjector

            # standing loss point reading params.packet_loss_rate live
            self.faults = FaultInjector(rng=self.rng, params=params).point("fabric")
        self._adapters: dict[int, "Adapter"] = {}
        #: per-destination arrival callbacks (built in attach), as on
        #: SwitchFabric: no closure allocation per packet
        self._arrive: dict[int, callable] = {}
        self._next_route: dict[tuple[int, int], int] = {}
        #: (plane, stage, dst_prefix, src_suffix) -> busy-until time
        self._busy_until: dict[tuple, float] = {}
        self.dropped = 0
        self.delivered = 0
        #: cumulative time packets spent queued at contended links
        self.contention_us = 0.0
        self._stages = 1  # grows as adapters attach
        #: optional MetricsRegistry for per-hop queueing-delay stats
        self.metrics = metrics
        self._h_queue = None if metrics is None else metrics.histogram("net.hop_queue_us")
        self._h_delay = None if metrics is None else metrics.histogram("net.route_delay_us")
        self._m_dropped = None if metrics is None else metrics.counter("net.dropped")

    # ------------------------------------------------------------------
    def attach(self, adapter: "Adapter") -> None:
        if adapter.node_id in self._adapters:
            raise ValueError(f"node {adapter.node_id} already attached")
        self._adapters[adapter.node_id] = adapter
        deliver = adapter._fabric_deliver

        def arrive(ev) -> None:
            self.delivered += 1
            deliver(ev._value)

        self._arrive[adapter.node_id] = arrive
        n = _next_pow2(max(2, max(self._adapters) + 1))
        self._stages = max(1, n.bit_length() - 1)

    @property
    def node_ids(self) -> list[int]:
        return sorted(self._adapters)

    @property
    def stages(self) -> int:
        return self._stages

    def pick_route(self, src: int, dst: int) -> int:
        """Round-robin across the parallel switch planes."""
        key = (src, dst)
        r = self._next_route.get(key, 0)
        self._next_route[key] = (r + 1) % self.params.route_count
        return r

    # ------------------------------------------------------------------
    def transmit(self, packet: "Packet") -> None:
        """Walk the packet's plane/path, reserving link occupancy."""
        arrive = self._arrive.get(packet.dst)
        if arrive is None:
            raise KeyError(f"no adapter attached for node {packet.dst}")
        p = self.params
        copies, extras = 1, ()
        faults = self.faults
        # same draw-free quiet path as SwitchFabric.transmit
        if faults is not None and (faults.events
                                   or faults.injector.base_loss_rate != 0.0):
            verdict = faults.on_packet(packet, self.env.now)
            if verdict is not None:
                if verdict.copies == 0:
                    self.dropped += 1
                    if self._m_dropped is not None:
                        self._m_dropped.incr()
                    return
                copies = verdict.copies
                extras = verdict.extra_delays_us
        occupancy = packet.wire_bytes * p.wire_us_per_byte
        t = self.env.now
        for link in butterfly_links(packet.src, packet.dst, self._stages):
            key = (packet.route, *link)
            free_at = self._busy_until.get(key, t)
            queued = max(0.0, free_at - t)
            self.contention_us += queued
            if self._h_queue is not None:
                self._h_queue.observe(queued)
            t = max(t, free_at) + p.switch_hop_us
            # cut-through: the link is held for the full wire time
            self._busy_until[key] = max(t, free_at) + occupancy
        if p.route_jitter_us > 0.0:
            t += self.rng.random() * p.route_jitter_us
        for k in range(copies):
            d = (t - self.env.now) + (extras[k] if k < len(extras) else 0.0)
            if self._h_delay is not None:
                self._h_delay.observe(d)
            self.env.call_later(d, arrive, packet)
