"""Named, stable random substreams derived from one cluster seed.

:class:`~repro.cluster.SPCluster` historically handed a single
``np.random.default_rng(seed)`` to the fabric.  Any new consumer of
randomness (fault injection, future congestion models) would then have
interleaved its draws with the fabric's jitter draws and silently
perturbed every existing benchmark trajectory.

:class:`RngStreams` fixes the ownership: each named consumer gets an
*independent* :class:`numpy.random.Generator` derived from the root
:class:`numpy.random.SeedSequence` via ``spawn``.  Stream identity is
positional in the canonical :data:`STREAMS` table, which is
**append-only** — inserting a name in the middle would re-key every
stream after it.  Per-node streams hang off the ``nodes`` slot and are
keyed by node id directly, so they are independent of cluster size and
of the order in which they are first requested.
"""

from __future__ import annotations

import numpy as np

__all__ = ["STREAMS", "RngStreams"]

#: Canonical stream names, in spawn-key order.  APPEND ONLY.
STREAMS = ("fabric", "faults", "nodes")


class RngStreams:
    """Independent named substreams of one seed.

    >>> streams = RngStreams(7)
    >>> streams.fabric is streams.fabric    # cached
    True
    >>> a, b = RngStreams(7), RngStreams(7)
    >>> a.fabric.random() == b.fabric.random()
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._root = np.random.SeedSequence(seed)
        self._children = dict(zip(STREAMS, self._root.spawn(len(STREAMS))))
        self._cache: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """The generator for stream ``name`` (cached per instance)."""
        if name not in self._children:
            raise KeyError(f"unknown stream {name!r}; choose from {STREAMS}")
        gen = self._cache.get(name)
        if gen is None:
            gen = self._cache[name] = np.random.default_rng(self._children[name])
        return gen

    @property
    def fabric(self) -> np.random.Generator:
        """Jitter/route draws inside the switch fabric."""
        return self.get("fabric")

    @property
    def faults(self) -> np.random.Generator:
        """Every draw made by fault injection (loss, duplication, jitter
        storms) — isolated so enabling faults never shifts fabric draws."""
        return self.get("faults")

    def node(self, node_id: int) -> np.random.Generator:
        """Per-node stream ``node_id``; stable under request order and
        cluster size (keyed by the node id, not a spawn counter)."""
        if node_id < 0:
            raise ValueError("node_id must be non-negative")
        key = f"node{node_id}"
        gen = self._cache.get(key)
        if gen is None:
            idx = STREAMS.index("nodes")
            seq = np.random.SeedSequence(
                entropy=self._root.entropy, spawn_key=(idx, node_id)
            )
            gen = self._cache[key] = np.random.default_rng(seq)
        return gen
