"""MPL — IBM's pre-MPI message-passing library, as a compatibility facade.

The paper's §2: "MPL, an IBM designed interface, was the first message
passing interface developed by IBM on SP systems.  Subsequently, after
MPI became a standard it was implemented by reusing some of the
infrastructure of MPL."  This module recreates the MPL programming
surface (the ``mpc_*`` calls with their integer message ids, blocking
``mpc_bsend``/``mpc_brecv``, the ``mpc_wait`` on ALLMSG, ``mpc_task_*``
environment queries and the combined-operation collectives) on top of
either protocol stack — so legacy-style MPL programs run unchanged on
the LAPI transport, which is exactly the layering story the paper tells.

MPL semantics mapped:

==============  ====================================================
MPL call        here
==============  ====================================================
mpc_environ     task count + task id
mpc_bsend       blocking send (standard mode)
mpc_brecv       blocking receive; source/type wildcards via DONTCARE
mpc_send        nonblocking send -> integer message id
mpc_recv        nonblocking receive -> integer message id
mpc_wait        wait on one id or ALLMSG; returns received byte count
mpc_status      poll a message id (done: byte count, else -1)
mpc_probe       nonblocking probe
mpc_sync        barrier
mpc_combine     allreduce on raw buffers
mpc_index       allgather-style concatenation
==============  ====================================================
"""

from __future__ import annotations

from typing import Any, Generator

from repro.mpci import ANY_SOURCE, ANY_TAG
from repro.mpi.api import Communicator
from repro.mpi.request import Request

__all__ = ["ALLMSG", "DONTCARE", "MplError", "MplTask"]

#: MPL wildcard (matches MPL's -1 conventions)
DONTCARE = -1
#: wait on every outstanding message
ALLMSG = -2


class MplError(RuntimeError):
    """MPL-level misuse."""


class MplTask:
    """The per-task MPL handle, wrapping a :class:`Communicator`.

    Programs use it like the original library::

        nbuf = yield from task.mpc_brecv(buf, source=DONTCARE, type=DONTCARE)
        yield from task.mpc_bsend(data, dest=1, type=99)
    """

    def __init__(self, comm: Communicator):
        self.comm = comm
        self._msgs: dict[int, Request] = {}
        self._next_id = 0

    # ------------------------------------------------------- environment
    def mpc_environ(self) -> tuple[int, int]:
        """(numtask, taskid)."""
        return self.comm.size, self.comm.rank

    @property
    def taskid(self) -> int:
        return self.comm.rank

    @property
    def numtask(self) -> int:
        return self.comm.size

    # ------------------------------------------------------ point to point
    def _check_type(self, type_: int, allow_dontcare: bool) -> int:
        if type_ == DONTCARE:
            if not allow_dontcare:
                raise MplError("message type DONTCARE is only legal on receive")
            return ANY_TAG
        if type_ < 0:
            raise MplError("MPL message types are non-negative integers")
        return type_

    def mpc_bsend(self, buf: Any, dest: int, type_: int = 0) -> Generator:
        """Blocking send."""
        yield from self.comm.send(buf, dest, self._check_type(type_, False))

    def mpc_brecv(self, buf: Any, source: int = DONTCARE,
                  type_: int = DONTCARE) -> Generator:
        """Blocking receive; returns (nbytes, source, type)."""
        src = ANY_SOURCE if source == DONTCARE else source
        status = yield from self.comm.recv(buf, src, self._check_type(type_, True))
        return status.count, status.source, status.tag

    def mpc_send(self, buf: Any, dest: int, type_: int = 0) -> Generator:
        """Nonblocking send; returns an integer message id."""
        req = yield from self.comm.isend(buf, dest, self._check_type(type_, False))
        return self._register(req)

    def mpc_recv(self, buf: Any, source: int = DONTCARE,
                 type_: int = DONTCARE) -> Generator:
        """Nonblocking receive; returns an integer message id."""
        src = ANY_SOURCE if source == DONTCARE else source
        req = yield from self.comm.irecv(buf, src, self._check_type(type_, True))
        return self._register(req)

    def _register(self, req: Request) -> int:
        mid = self._next_id
        self._next_id += 1
        self._msgs[mid] = req
        return mid

    def mpc_wait(self, msgid: int) -> Generator:
        """Wait on one message id, or ALLMSG; returns total bytes."""
        if msgid == ALLMSG:
            ids = list(self._msgs)
        else:
            ids = [msgid]
        total = 0
        for mid in ids:
            req = self._msgs.pop(mid, None)
            if req is None:
                raise MplError(f"unknown (or already waited) message id {mid}")
            status = yield from self.comm.wait(req)
            total += status.count if req.kind == "recv" else 0
        return total

    def mpc_status(self, msgid: int) -> Generator:
        """Poll a message id: received byte count if complete, else -1.

        A completed id stays valid until mpc_wait'ed (MPL semantics:
        status does not free the message)."""
        req = self._msgs.get(msgid)
        if req is None:
            raise MplError(f"unknown message id {msgid}")
        done = yield from self.comm.test(req)
        if not done:
            return -1
        return req.status.count

    def mpc_probe(self, source: int = DONTCARE,
                  type_: int = DONTCARE) -> Generator:
        """Nonblocking probe: (nbytes, source, type) or None."""
        src = ANY_SOURCE if source == DONTCARE else source
        tag = ANY_TAG if type_ == DONTCARE else type_
        status = yield from self.comm.iprobe(src, tag)
        if status is None:
            return None
        return status.count, status.source, status.tag

    # --------------------------------------------------------- collectives
    def mpc_sync(self) -> Generator:
        """Barrier."""
        yield from self.comm.barrier()

    def mpc_combine(self, sendbuf: Any, recvbuf: Any, op: str = "sum") -> Generator:
        """Combine (allreduce) — MPL's d_vadd/i_vmax family condensed."""
        yield from self.comm.allreduce(sendbuf, recvbuf, op)

    def mpc_concat(self, sendbuf: Any, recvbuf: Any) -> Generator:
        """Concatenate every task's block in task order (allgather)."""
        yield from self.comm.allgather(sendbuf, recvbuf)

    def mpc_bcast(self, buf: Any, root: int = 0) -> Generator:
        yield from self.comm.bcast(buf, root)


def mpl_task(comm: Communicator) -> MplTask:
    """Wrap an MPI communicator as an MPL task handle."""
    return MplTask(comm)
