"""The per-node Pipes endpoint: flows, windows, acks, in-order delivery."""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.hal import Hal, fragment
from repro.machine.cpu import Cpu
from repro.machine.params import MachineParams
from repro.machine.stats import NodeStats
from repro.sim import AnyOf, Environment, Event
from repro.transport import ReceiverLedger, SenderWindow

__all__ = ["PipeEndpoint"]

#: packet kinds on a pipe
_DATA = "pipe"
_ACK = "pipe_ack"


class _FlowTx:
    """Sender-side state for one destination."""

    __slots__ = ("window", "waiters", "last_progress", "rto_alive", "unsent_acked")

    def __init__(self, window_pkts: int):
        self.window = SenderWindow(window_pkts)
        self.waiters: list[Event] = []
        self.last_progress = 0.0
        self.rto_alive = False


class _FlowRx:
    """Receiver-side state for one source."""

    __slots__ = ("ledger", "stash", "next_deliver", "since_ack", "ack_timer_alive")

    def __init__(self):
        self.ledger = ReceiverLedger()
        self.stash: dict[int, tuple[dict, bytes]] = {}
        self.next_deliver = 0
        self.since_ack = 0
        self.ack_timer_alive = False


class PipeEndpoint:
    """Reliable, ordered packet stream to every peer.

    ``on_packet`` must be a generator function
    ``(thread, src, header, payload) -> Generator`` installed by the
    layer above (native MPCI); it is invoked for each packet **in stream
    order**.
    """

    def __init__(
        self,
        env: Environment,
        cpu: Cpu,
        hal: Hal,
        params: MachineParams,
        stats: NodeStats,
    ):
        self.env = env
        self.cpu = cpu
        self.hal = hal
        self.params = params
        self.stats = stats
        self._tx: dict[int, _FlowTx] = {}
        self._rx: dict[int, _FlowRx] = {}
        self.on_packet: Optional[Callable[..., Generator]] = None
        # dispatch serialization: see :meth:`dispatch`
        self._dispatching = False
        self._dispatch_waiters: list[Event] = []
        #: fault hook (:class:`repro.faults.FaultPoint`) for dispatcher
        #: stalls; installed by the cluster, ``None`` otherwise
        self.faults = None
        # observability: the staging/reorder copies are what the paper's
        # Fig 11/12 argument charges the native stack for
        self.metrics = stats.registry
        self._m_frames = self.metrics.counter("pipes.frames_sent")
        self._m_staged = self.metrics.counter("pipes.bytes_staged")
        self._m_reordered = self.metrics.counter("pipes.bytes_reordered")
        self._g_inflight = self.metrics.gauge("pipes.pkts_in_flight")

    # ------------------------------------------------------------------
    def _flow_tx(self, dst: int) -> _FlowTx:
        flow = self._tx.get(dst)
        if flow is None:
            flow = self._tx[dst] = _FlowTx(self.params.pipe_window_pkts)
        return flow

    def _flow_rx(self, src: int) -> _FlowRx:
        flow = self._rx.get(src)
        if flow is None:
            flow = self._rx[src] = _FlowRx()
        return flow

    # ----------------------------------------------------------- sending
    def send_frame(
        self,
        thread: str,
        dst: int,
        meta: dict[str, Any],
        data: bytes,
        buffered_prefix: int = 0,
        buffered_suffix: int = 0,
        on_payload_out: Optional[Event] = None,
        fid: Optional[int] = None,
        mid: Optional[str] = None,
    ) -> Generator:
        """Send one MPCI frame over the stream to ``dst``.

        ``meta`` rides the first packet.  Bytes inside the buffered
        prefix/suffix are charged the pipe-buffer→HAL copy (the native
        stack's second send-side copy); bytes outside go direct (DMA from
        the user buffer).  ``on_payload_out`` fires when the last
        packet's payload has left host memory.  ``mid`` is the MPCI
        message id the frame belongs to; it rides every packet header
        and trace record so cross-node captures correlate.

        Returns after the final packet is admitted to the adapter (the
        frame may still be in flight / unacknowledged).
        """
        if dst == self.hal.node_id:
            raise ValueError("pipes do not loop back to self")
        flow = self._flow_tx(dst)
        size = len(data)
        self._m_frames.incr()
        self.stats.trace("pipes", "frame_send", fid=fid, dst=dst, bytes=size,
                         sid=meta.get("sid"), t=meta.get("t"), mid=mid,
                         thr=thread)
        chunks = fragment(size, self.params.packet_payload)
        last_idx = len(chunks) - 1
        # Zero-copy packetization: multi-packet frames slice a read-only
        # view of the caller's immutable snapshot (valid for retransmits
        # and reorder stashes); a single-packet frame is the snapshot
        # itself.
        view = memoryview(data) if last_idx > 0 else None
        for idx, (off, ln) in enumerate(chunks):
            while not flow.window.can_send:
                # Make progress while stalled: acks (and data) may be
                # sitting in our own adapter FIFO — polling-mode MPI
                # advances the protocol from inside blocking calls.
                yield from self.dispatch(thread)
                if flow.window.can_send:
                    break
                # Wait on the window as well as the FIFO: a concurrent
                # dispatcher (MPCI poller, ISR) may pop the ack before we
                # wake, in which case no further rx ever arrives here.
                waiter = self.env.event()
                flow.waiters.append(waiter)
                yield AnyOf(self.env, [waiter, self.wait_rx()])
            payload = data if view is None else view[off : off + ln]
            buffered = off < buffered_prefix or (off + ln) > size - buffered_suffix
            header: dict[str, Any] = {
                "kind": _DATA,
                "seq": None,  # assigned below
                "fid": fid,
                "mid": mid,
                "foff": off,
                "flen": size,
                "buffered": buffered,
            }
            if idx == 0:
                header["meta"] = meta
            seq = flow.window.send((header, payload))
            self._g_inflight.add(1)
            header["seq"] = seq
            # per-packet Pipes protocol work
            yield from self.cpu.execute(thread, self.params.pipe_pkt_us)
            if buffered and ln > 0:
                # staging copy pipe buffer -> HAL network buffer
                self._m_staged.incr(ln)
                yield from self.cpu.memcpy(thread, ln)
            yield from self.hal.send(
                thread,
                dst,
                header,
                payload,
                on_dma_done=on_payload_out if idx == last_idx else None,
            )
            flow.last_progress = self.env.now
            self._ensure_rto(dst, flow)

    def _ensure_rto(self, dst: int, flow: _FlowTx) -> None:
        if flow.rto_alive:
            return
        flow.rto_alive = True
        self.env.process(self._rto_loop(dst, flow), name=f"pipe.rto->{dst}")

    def _rto_loop(self, dst: int, flow: _FlowTx) -> Generator:
        rto = self.params.pipe_rto_us
        try:
            while flow.window.in_flight:
                yield self.env.timeout(rto)
                if not flow.window.in_flight:
                    break
                # Check our own FIFO first: the ack may already be here.
                yield from self.dispatch("user")
                if not flow.window.in_flight:
                    break
                if self.env.now - flow.last_progress < rto:
                    continue
                oldest = flow.window.oldest_unacked()
                if oldest is None:
                    break
                _seq, (header, payload) = oldest
                self.stats.retransmissions += 1
                yield from self.cpu.execute("user", self.params.pipe_pkt_us)
                yield from self.hal.send("user", dst, header, payload)
                flow.last_progress = self.env.now
                rto = min(rto * 2, self.params.pipe_rto_us * 16)
        finally:
            flow.rto_alive = False

    # ---------------------------------------------------------- receiving
    def dispatch(self, thread: str) -> Generator:
        """Drain the adapter and process every pending packet.

        Unlike the LAPI dispatcher, packet processing here is **not**
        re-entrant: the frame machinery installed via ``on_packet``
        keeps per-frame state across yield points, so two contexts
        draining concurrently would interleave a frame's continuation
        ahead of its registration.  A second caller therefore parks
        until the active drain finishes, then returns (any packets that
        arrived meanwhile were consumed by the active drain's loop, or
        will wake the caller's own wait loop again).
        """
        if self.faults is not None:
            stall = self.faults.stall_us(self.env.now)
            if stall > 0.0:
                yield from self.cpu.execute(thread, stall)
        if self._dispatching:
            ev = self.env.event()
            self._dispatch_waiters.append(ev)
            yield ev
            return
        self._dispatching = True
        try:
            while True:
                pkt = self.hal.poll()
                if pkt is None:
                    return
                yield from self.hal.charge_recv(thread)
                kind = pkt.header.get("kind")
                if kind == _ACK:
                    self._handle_ack(pkt.src, pkt.header["cum"])
                elif kind == _DATA:
                    yield from self._handle_data(
                        thread, pkt.src, pkt.header, pkt.payload)
                else:
                    raise RuntimeError(
                        f"pipe endpoint got foreign packet kind {kind!r}")
        finally:
            self._dispatching = False
            waiters, self._dispatch_waiters = self._dispatch_waiters, []
            for ev in waiters:
                if not ev.triggered:
                    ev.succeed()

    def _handle_ack(self, src: int, cum: int) -> None:
        flow = self._flow_tx(src)
        freed = flow.window.on_ack(cum)
        if freed:
            self._g_inflight.add(-freed)
            flow.last_progress = self.env.now
            waiters, flow.waiters = flow.waiters, []
            for ev in waiters:
                if not ev.triggered:
                    ev.succeed()

    def _handle_data(
        self, thread: str, src: int, header: dict[str, Any], payload: bytes
    ) -> Generator:
        flow = self._flow_rx(src)
        yield from self.cpu.execute(thread, self.params.pipe_pkt_us)
        verdict = flow.ledger.accept(header["seq"])
        if verdict == "dup":
            # duplicate: re-ack immediately so the sender stops resending
            yield from self._send_ack(thread, src, flow)
            return
        flow.since_ack += 1
        if header.get("buffered") and payload:
            # reordering copy HAL buffer -> pipe buffer
            self._m_reordered.incr(len(payload))
            yield from self.cpu.memcpy(thread, len(payload))
        flow.stash[header["seq"]] = (header, payload)
        # release the in-order prefix to MPCI
        while flow.next_deliver in flow.stash:
            hdr, data = flow.stash.pop(flow.next_deliver)
            flow.next_deliver += 1
            if self.on_packet is None:
                raise RuntimeError("PipeEndpoint.on_packet not installed")
            yield from self.on_packet(thread, src, hdr, data)
        if flow.since_ack >= self.params.pipe_ack_every:
            yield from self._send_ack(thread, src, flow)
        elif flow.since_ack > 0 and not flow.ack_timer_alive:
            flow.ack_timer_alive = True
            self.env.process(self._delayed_ack(src, flow), name=f"pipe.dack<-{src}")

    def _delayed_ack(self, src: int, flow: _FlowRx) -> Generator:
        """Flush a pending cumulative ack after the delayed-ack interval."""
        try:
            yield self.env.timeout(self.params.pipe_ack_delay_us)
            if flow.since_ack > 0:
                yield from self._send_ack("user", src, flow)
        finally:
            flow.ack_timer_alive = False

    def _send_ack(self, thread: str, src: int, flow: _FlowRx) -> Generator:
        flow.since_ack = 0
        self.stats.acks_sent += 1
        yield from self.hal.send(
            thread, src, {"kind": _ACK, "cum": flow.ledger.cum_ack}, b""
        )

    # ------------------------------------------------------------------
    def wait_rx(self) -> Event:
        return self.hal.wait_rx()

    @property
    def rx_pending(self) -> int:
        return self.hal.rx_pending
