"""Pipes — the native stack's reliable ordered byte-stream layer.

Per the paper's §2: the Pipes layer gives MPCI a reliable byte stream
per peer, enforcing packet ordering at the receiving end (the switch has
four routes per node pair and delivers out of order), using a sliding-
window flow-control protocol with acknowledgement/retransmission.

Framing note: MPCI frames ride the stream as packets whose headers carry
frame metadata.  Ordering is enforced on the packet sequence exactly as
the byte-stream would be; this keeps the timing and copy accounting
faithful without byte-level frame reparsing.
"""

from repro.pipes.endpoint import PipeEndpoint

__all__ = ["PipeEndpoint"]
