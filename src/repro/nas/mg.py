"""MG — Multigrid (NPB kernel).

V-cycles on a 1D Poisson problem with the fine grid block-distributed:
every (Jacobi) smoothing sweep exchanges one-point ghost cells with
both neighbours — frequent, tiny nearest-neighbour messages against
substantial local compute, which is why MG was nearly
stack-insensitive in the paper.  Coarse grids are replicated (as NPB
MG does near the bottom of the V), costing one residual allgather per
cycle.
"""

from __future__ import annotations

import numpy as np

from repro.nas.common import NasOutcome, compute, register

__all__ = ["mg", "serial_reference"]


def _rhs(n: int) -> np.ndarray:
    x = np.linspace(0.0, 1.0, n, endpoint=False)
    return np.sin(2 * np.pi * x) + 0.3 * np.sin(6 * np.pi * x)


def _smooth_serial(u, f, h2, sweeps):
    for _ in range(sweeps):
        nxt = u.copy()
        nxt[1:-1] = 0.5 * (u[:-2] + u[2:] - h2 * f[1:-1])
        u = nxt
    return u


def _vcycle_serial(u, f, h2, level, max_level):
    u = _smooth_serial(u, f, h2, 2)
    if level < max_level and len(u) > 8:
        r = np.zeros_like(u)
        r[1:-1] = f[1:-1] - (u[:-2] - 2 * u[1:-1] + u[2:]) / h2
        rc = r[::2].copy()
        ec = np.zeros_like(rc)
        ec = _vcycle_serial(ec, rc, 4 * h2, level + 1, max_level)
        e = np.zeros_like(u)
        e[::2] = ec
        k = len(e[1:-1:2])
        e[1:-1:2] = 0.5 * (ec[:k] + ec[1 : k + 1])
        u = u + e
    return _smooth_serial(u, f, h2, 2)


def serial_reference(n: int, cycles: int = 3) -> np.ndarray:
    f = _rhs(n)
    u = np.zeros(n)
    h2 = (1.0 / n) ** 2
    for _ in range(cycles):
        u = _vcycle_serial(u, f, h2, 0, 4)
    return u


@register("mg")
def mg(comm, rank, size, n: int = 512, cycles: int = 3):
    """Distributed V-cycles, bit-identical to the serial recursion."""
    if n % size:
        raise ValueError("n must be divisible by comm size")
    local_n = n // size
    lo = rank * local_n
    f = _rhs(n)
    f_own = f[lo : lo + local_n]
    u_own = np.zeros(local_n)
    lg = np.zeros(1)  # ghost from the left neighbour
    rg = np.zeros(1)  # ghost from the right neighbour
    h2 = (1.0 / n) ** 2

    def exchange():
        """Swap one-point halos with both neighbours (Jacobi stencil)."""
        if rank > 0 and rank < size - 1:
            yield from comm.sendrecv(np.array([u_own[-1]]), rank + 1, lg,
                                     rank - 1, 20, 20)
            yield from comm.sendrecv(np.array([u_own[0]]), rank - 1, rg,
                                     rank + 1, 21, 21)
        elif rank > 0:  # rightmost
            yield from comm.recv(lg, rank - 1, 20)
            yield from comm.send(np.array([u_own[0]]), rank - 1, 21)
        elif rank < size - 1:  # leftmost
            yield from comm.send(np.array([u_own[-1]]), rank + 1, 20)
            yield from comm.recv(rg, rank + 1, 21)

    def smooth(sweeps: int):
        for _ in range(sweeps):
            yield from exchange()
            left = np.empty(local_n)
            right = np.empty(local_n)
            left[1:] = u_own[:-1]
            left[0] = lg[0]
            right[:-1] = u_own[1:]
            right[-1] = rg[0]
            nxt = 0.5 * (left + right - h2 * f_own)
            # physical boundary points stay fixed
            if rank == 0:
                nxt[0] = u_own[0]
            if rank == size - 1:
                nxt[-1] = u_own[-1]
            u_own[:] = nxt
            yield from compute(comm, 12.0 * local_n)

    for _ in range(cycles):
        yield from smooth(2)
        # residual on owned points (needs halos once more)
        yield from exchange()
        left = np.empty(local_n)
        right = np.empty(local_n)
        left[1:] = u_own[:-1]
        left[0] = lg[0]
        right[:-1] = u_own[1:]
        right[-1] = rg[0]
        r_own = f_own - (left - 2 * u_own + right) / h2
        if rank == 0:
            r_own[0] = 0.0
        if rank == size - 1:
            r_own[-1] = 0.0
        yield from compute(comm, 5.0 * local_n)

        # coarse grids replicated: one allgather of the residual per cycle
        r_blocks = np.zeros((size, local_n))
        yield from comm.allgather(r_own, r_blocks)
        r = r_blocks.ravel()
        rc = r[::2].copy()
        ec = np.zeros_like(rc)
        ec = _vcycle_serial(ec, rc, 4 * h2, 1, 4)
        yield from compute(comm, 40.0 * local_n)
        e = np.zeros(n)
        e[::2] = ec
        k = len(e[1:-1:2])
        e[1:-1:2] = 0.5 * (ec[:k] + ec[1 : k + 1])
        u_own += e[lo : lo + local_n]
        yield from smooth(2)

    # final assembly for verification
    blocks = np.zeros((size, local_n))
    yield from comm.allgather(u_own, blocks)
    u = blocks.ravel()
    ref = serial_reference(n, cycles)
    err = float(np.max(np.abs(u - ref)))
    return NasOutcome("mg", err < 1e-10, float(np.linalg.norm(u)), detail=err)
