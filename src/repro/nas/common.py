"""Shared NAS-kernel infrastructure: compute-cost model, registry."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

__all__ = ["FLOP_US", "KERNELS", "NasOutcome", "compute", "register", "run_kernel"]

#: simulated cost of one floating-point operation on the 332 MHz node
#: (~125 Mflop/s sustained — P2SC/604e class for stride-1 kernels)
FLOP_US = 0.008


def compute(comm, flops: float) -> Generator:
    """Charge simulated compute time for ``flops`` floating-point ops.

    The actual (tiny) numpy arithmetic runs for real so results can be
    verified; this charges the wall-clock the full-size computation
    would have cost on the modelled node.
    """
    yield from comm.backend.cpu.execute("user", flops * FLOP_US)


@dataclass
class NasOutcome:
    """What a kernel returns from each rank."""

    name: str
    verified: bool
    checksum: float
    detail: Any = None


KERNELS: dict[str, Callable] = {}

#: problem classes in the NPB spirit — S is the default (fast) size used
#: by the benchmarks; W scales each kernel up several-fold
KERNEL_CLASSES: dict[str, dict[str, dict]] = {
    "ep": {"S": dict(n_pairs=4096), "W": dict(n_pairs=16384)},
    "is": {"S": dict(n_local=8192), "W": dict(n_local=32768)},
    "cg": {"S": dict(n=256, iters=25), "W": dict(n=512, iters=30)},
    "mg": {"S": dict(n=512, cycles=3), "W": dict(n=2048, cycles=4)},
    "ft": {"S": dict(shape=(16, 16, 16), steps=3),
           "W": dict(shape=(32, 32, 16), steps=4)},
    "lu": {"S": dict(n=64, sweeps=6), "W": dict(n=128, sweeps=8)},
    "bt": {"S": dict(n=64, iters=4), "W": dict(n=128, iters=6)},
    "sp": {"S": dict(n=64, iters=3), "W": dict(n=128, iters=4)},
}


def register(name: str):
    def deco(fn):
        KERNELS[name] = fn
        return fn

    return deco


def run_kernel(name: str, cluster, cls: str = "S", **overrides):
    """Run a registered kernel on a cluster; returns the RunResult.

    ``cls`` selects a problem class ("S" or "W"); keyword overrides take
    precedence over the class parameters.
    """
    try:
        fn = KERNELS[name]
    except KeyError:
        raise KeyError(f"unknown NAS kernel {name!r}; have {sorted(KERNELS)}") from None
    classes = KERNEL_CLASSES.get(name, {})
    if cls not in classes and cls != "S":
        raise KeyError(f"kernel {name!r} has no class {cls!r}")
    kwargs = dict(classes.get(cls, {}))
    kwargs.update(overrides)
    return cluster.run(fn, **kwargs)


# importing the kernel modules populates the registry
from repro.nas import bt, cg, ep, ft, is_, lu, mg, sp  # noqa: E402,F401
