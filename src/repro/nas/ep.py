"""EP — Embarrassingly Parallel (NPB kernel).

Gaussian deviates via the NPB linear congruential generator and
Box-Muller; each rank owns a contiguous slice of the random sequence
(LCG leapfrogged with modular exponentiation).  The only communication
is the final 10-bin annulus-count + sum reduction — EP is the paper's
canonical "no improvement to be had" benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.nas.common import NasOutcome, compute, register

__all__ = ["ep", "serial_reference"]

_A = 5 ** 13
_MOD = 1 << 46
_SEED = 271828183


def _lcg_skip(seed: int, k: int) -> int:
    """Jump the NPB LCG forward k steps: seed * A^k mod 2^46."""
    return (seed * pow(_A, k, _MOD)) % _MOD


def _generate(seed: int, n: int) -> np.ndarray:
    """n uniform deviates in (0, 1) from the NPB LCG."""
    out = np.empty(n, dtype=np.float64)
    x = seed
    for i in range(n):
        x = (x * _A) % _MOD
        out[i] = x / _MOD
    return out


def _tally(u: np.ndarray):
    """Box-Muller acceptance + annulus counts (the EP computation)."""
    x = 2.0 * u[0::2] - 1.0
    y = 2.0 * u[1::2] - 1.0
    t = x * x + y * y
    ok = (t <= 1.0) & (t > 0.0)
    x, y, t = x[ok], y[ok], t[ok]
    f = np.sqrt(-2.0 * np.log(t) / t)
    gx, gy = x * f, y * f
    m = np.maximum(np.abs(gx), np.abs(gy)).astype(np.int64)
    counts = np.bincount(np.clip(m, 0, 9), minlength=10).astype(np.float64)
    return counts, float(gx.sum()), float(gy.sum())


def serial_reference(n_pairs: int):
    """Single-process answer for verification."""
    u = _generate(_SEED, 2 * n_pairs)
    return _tally(u)


@register("ep")
def ep(comm, rank, size, n_pairs: int = 4096):
    """Run EP over ``n_pairs`` total Box-Muller pairs."""
    per = n_pairs // size
    lo = rank * per
    hi = n_pairs if rank == size - 1 else lo + per
    seed = _lcg_skip(_SEED, 2 * lo)
    u = _generate(seed, 2 * (hi - lo))
    counts, sx, sy = _tally(u)
    # EP's dominant cost: ~60 flops per pair (log, sqrt, divides)
    yield from compute(comm, 60.0 * (hi - lo))

    local = np.concatenate([counts, [sx, sy]])
    total = np.zeros_like(local)
    yield from comm.allreduce(local, total, op="sum")

    ref_counts, ref_sx, ref_sy = serial_reference(n_pairs)
    verified = (
        np.allclose(total[:10], ref_counts)
        and abs(total[10] - ref_sx) < 1e-8 * max(1.0, abs(ref_sx))
        and abs(total[11] - ref_sy) < 1e-8 * max(1.0, abs(ref_sy))
    )
    return NasOutcome("ep", bool(verified), float(total[10] + total[11]))
