"""IS — Integer Sort (NPB kernel).

Bucket sort of uniformly distributed integer keys: a histogram
allreduce to agree on bucket ownership, then a large alltoallv moving
every key to its owner — IS is the paper's communication-volume-bound
benchmark, where MPI-LAPI's copy avoidance pays directly.
"""

from __future__ import annotations

import numpy as np

from repro.nas.common import NasOutcome, compute, register

__all__ = ["is_sort", "serial_reference"]

_MAX_KEY = 1 << 11


def _keys_for(rank: int, n_local: int) -> np.ndarray:
    rng = np.random.default_rng(900 + rank)
    return rng.integers(0, _MAX_KEY, n_local, dtype=np.int32)


def serial_reference(size: int, n_local: int) -> np.ndarray:
    """All keys, globally sorted."""
    allk = np.concatenate([_keys_for(r, n_local) for r in range(size)])
    return np.sort(allk)


@register("is")
def is_sort(comm, rank, size, n_local: int = 8192):
    """Sort ``size * n_local`` keys; returns per-rank verification."""
    keys = _keys_for(rank, n_local)

    # 1. global histogram so every rank knows the key distribution
    hist = np.bincount(keys, minlength=_MAX_KEY).astype(np.int64)
    ghist = np.zeros_like(hist)
    yield from comm.allreduce(hist, ghist, op="sum")
    yield from compute(comm, 4.0 * n_local)

    # 2. split the key range so each rank owns ~equal keys
    cum = np.cumsum(ghist)
    total = int(cum[-1])
    splitters = np.searchsorted(cum, [(r + 1) * total // size for r in range(size)])
    splitters[-1] = _MAX_KEY - 1

    # 3. route keys to their owners with one big alltoallv
    owner = np.searchsorted(splitters, keys)
    order = np.argsort(owner, kind="stable")
    keys_sorted_by_owner = keys[order]
    counts = np.bincount(owner, minlength=size)
    sendcounts = [int(c) * 4 for c in counts]  # int32 bytes
    recvcounts_arr = np.zeros(size, dtype=np.int64)
    yield from comm.alltoall(
        np.array([[c] for c in sendcounts], dtype=np.int64),
        recvcounts_arr.reshape(size, 1),
    )
    recvcounts = [int(c) for c in recvcounts_arr]
    recvbuf = bytearray(sum(recvcounts))
    yield from comm.alltoallv(
        keys_sorted_by_owner.tobytes(), sendcounts, recvbuf, recvcounts
    )
    mine = np.frombuffer(bytes(recvbuf), dtype=np.int32)

    # 4. local counting sort
    mine = np.sort(mine, kind="stable")
    yield from compute(comm, 10.0 * max(len(mine), 1))

    # 5. verification: local order + boundary order + global checksum
    local_ok = bool(np.all(np.diff(mine) >= 0)) if len(mine) else True
    lo = int(mine[0]) if len(mine) else _MAX_KEY
    hi = int(mine[-1]) if len(mine) else -1
    edges = np.zeros((size, 2), dtype=np.int64)
    yield from comm.allgather(np.array([lo, hi], dtype=np.int64), edges)
    boundary_ok = all(
        edges[r][1] <= edges[r + 1][0] or edges[r + 1][0] == _MAX_KEY
        for r in range(size - 1)
    )
    csum = np.zeros(2, dtype=np.int64)
    yield from comm.allreduce(
        np.array([mine.sum(dtype=np.int64), len(mine)], dtype=np.int64), csum, op="sum"
    )
    ref = serial_reference(size, n_local)
    verified = (
        local_ok
        and boundary_ok
        and int(csum[0]) == int(ref.sum(dtype=np.int64))
        and int(csum[1]) == len(ref)
    )
    return NasOutcome("is", bool(verified), float(csum[0]))
