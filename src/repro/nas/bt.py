"""BT — Block-Tridiagonal ADI solver (NPB kernel, mini form).

Alternating-direction implicit iteration on a 2-D grid distributed by
rows: the x-direction tridiagonal solves are local; the y-direction
solves run the Thomas algorithm *pipelined* across ranks — a forward
elimination wave down the machine and a back-substitution wave up, with
medium-sized (one coefficient row per column chunk) messages.  That
pipelined-line-solve pattern is BT's signature.
"""

from __future__ import annotations

import numpy as np

from repro.nas.common import NasOutcome, compute, register

__all__ = ["bt", "serial_reference"]

_DIAG = 4.0
_OFF = -1.0


def _init_state(n: int) -> np.ndarray:
    i, j = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    return (np.sin(0.21 * i) * np.cos(0.17 * j) + 0.01 * (i + j)).astype(np.float64)


def _thomas_rows(rhs: np.ndarray) -> np.ndarray:
    """Solve the constant tridiagonal system along axis 0 for each column."""
    n = rhs.shape[0]
    cp = np.zeros_like(rhs)
    dp = np.zeros_like(rhs)
    cp[0] = _OFF / _DIAG
    dp[0] = rhs[0] / _DIAG
    for i in range(1, n):
        denom = _DIAG - _OFF * cp[i - 1]
        cp[i] = _OFF / denom
        dp[i] = (rhs[i] - _OFF * dp[i - 1]) / denom
    x = np.zeros_like(rhs)
    x[-1] = dp[-1]
    for i in range(n - 2, -1, -1):
        x[i] = dp[i] - cp[i] * x[i + 1]
    return x


def serial_reference(n: int = 64, iters: int = 4) -> np.ndarray:
    u = _init_state(n)
    for _ in range(iters):
        u = _thomas_rows(u.T).T  # x-direction solves (along columns of u.T)
        u = _thomas_rows(u)      # y-direction solves
        u = u + 0.01 * np.sin(u)
    return u


@register("bt")
def bt(comm, rank, size, n: int = 64, iters: int = 4, chunk: int = 32):
    """ADI iterations with pipelined y-direction Thomas solves."""
    if n % size:
        raise ValueError("n must be divisible by comm size")
    rows = n // size
    lo = rank * rows
    u = _init_state(n)[lo : lo + rows].copy()  # (rows, n)
    nchunks = (n + chunk - 1) // chunk

    for _ in range(iters):
        # ---- x-direction: tridiagonal along each local row (local work)
        u = _thomas_rows(u.T).T
        yield from compute(comm, 8.0 * rows * n)

        # ---- y-direction: pipelined Thomas down then up, per column chunk
        cp = np.zeros((rows, n))
        dp = np.zeros((rows, n))
        for c in range(nchunks):
            c0, c1 = c * chunk, min((c + 1) * chunk, n)
            w = c1 - c0
            if rank == 0:
                cp[0, c0:c1] = _OFF / _DIAG
                dp[0, c0:c1] = u[0, c0:c1] / _DIAG
                start = 1
            else:
                prev = np.zeros(2 * w)
                yield from comm.recv(prev, source=rank - 1, tag=60 + c)
                denom = _DIAG - _OFF * prev[:w]
                cp[0, c0:c1] = _OFF / denom
                dp[0, c0:c1] = (u[0, c0:c1] - _OFF * prev[w:]) / denom
                start = 1
            for i in range(start, rows):
                denom = _DIAG - _OFF * cp[i - 1, c0:c1]
                cp[i, c0:c1] = _OFF / denom
                dp[i, c0:c1] = (u[i, c0:c1] - _OFF * dp[i - 1, c0:c1]) / denom
            yield from compute(comm, 6.0 * rows * w)
            if rank < size - 1:
                yield from comm.send(
                    np.concatenate([cp[-1, c0:c1], dp[-1, c0:c1]]),
                    dest=rank + 1, tag=60 + c,
                )
        x = np.zeros((rows, n))
        for c in range(nchunks):
            c0, c1 = c * chunk, min((c + 1) * chunk, n)
            w = c1 - c0
            if rank == size - 1:
                x[-1, c0:c1] = dp[-1, c0:c1]
                start = rows - 2
            else:
                nxt = np.zeros(w)
                yield from comm.recv(nxt, source=rank + 1, tag=80 + c)
                x[-1, c0:c1] = dp[-1, c0:c1] - cp[-1, c0:c1] * nxt
                start = rows - 2
            for i in range(start, -1, -1):
                x[i, c0:c1] = dp[i, c0:c1] - cp[i, c0:c1] * x[i + 1, c0:c1]
            yield from compute(comm, 3.0 * rows * w)
            if rank > 0:
                yield from comm.send(x[0, c0:c1].copy(), dest=rank - 1, tag=80 + c)
        u = x + 0.01 * np.sin(x)
        yield from compute(comm, 4.0 * rows * n)

    blocks = np.zeros((size, rows, n))
    yield from comm.allgather(u, blocks)
    result = blocks.reshape(n, n)
    ref = serial_reference(n, iters)
    err = float(np.max(np.abs(result - ref)))
    return NasOutcome("bt", err < 1e-9, float(np.linalg.norm(result)), detail=err)
