"""NAS Parallel Benchmarks 2.3 — mini-kernel reproductions.

The paper's §6.2 runs the eight NPB 2.3 codes (EP, IS, CG, MG, FT, LU,
BT, SP) on a 4-node SP to compare MPI-LAPI against the native MPI.
These are faithful *mini* versions: each kernel keeps the original's
communication pattern and message-size mix (which is what separates the
two stacks) while solving a scaled-down problem whose answer is checked
against a serial reference computed with numpy.

Communication fingerprints:

====  =========================================================
EP    embarrassingly parallel; one tiny allreduce at the end
IS    bucket sort; histogram allreduce + large alltoallv of keys
CG    sparse CG; allgather of the iterate + dot-product allreduces
MG    V-cycle; small nearest-neighbour ghost exchanges per level
FT    3D FFT; whole-array alltoall transposes (huge messages)
LU    SSOR wavefront; many small pipelined boundary messages
BT    ADI; pipelined line solves, medium boundary blocks
SP    ADI; transpose-based line solves (alltoall, medium)
====  =========================================================
"""

from repro.nas.common import KERNELS, NasOutcome, run_kernel

__all__ = ["KERNELS", "NasOutcome", "run_kernel"]
