"""FT — 3D FFT (NPB kernel).

Spectral solver: forward 3-D FFT of a deterministic field, a few
time-evolution steps in spectral space, checksum of selected modes.
The grid is slab-distributed on the first axis; the FFT along that axis
requires a full-volume alltoall transpose each way — FT moves the
largest messages of the suite, the regime where MPI-LAPI's bandwidth
advantage shows.
"""

from __future__ import annotations

import numpy as np

from repro.nas.common import NasOutcome, compute, register

__all__ = ["ft", "serial_reference"]


def _field(shape) -> np.ndarray:
    nx, ny, nz = shape
    i, j, k = np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz),
                          indexing="ij")
    return np.exp(1j * (0.7 * i + 0.3 * j + 0.11 * k)) + 0.25 * np.cos(i * j % 7)


def _evolve_factor(shape, t: int) -> np.ndarray:
    nx, ny, nz = shape
    kx = np.minimum(np.arange(nx), nx - np.arange(nx))
    ky = np.minimum(np.arange(ny), ny - np.arange(ny))
    kz = np.minimum(np.arange(nz), nz - np.arange(nz))
    k2 = (kx[:, None, None] ** 2 + ky[None, :, None] ** 2 + kz[None, None, :] ** 2)
    return np.exp(-1e-4 * k2 * t)


def _checksum(spec: np.ndarray, t: int) -> complex:
    nx, ny, nz = spec.shape
    total = 0j
    for q in range(1, 17):
        total += spec[q % nx, (3 * q) % ny, (5 * q) % nz]
    return total / 16.0


def serial_reference(shape=(16, 16, 16), steps: int = 3) -> list[complex]:
    u = _field(shape)
    spec = np.fft.fftn(u)
    sums = []
    for t in range(1, steps + 1):
        evolved = spec * _evolve_factor(shape, t)
        sums.append(_checksum(evolved, t))
    return sums


@register("ft")
def ft(comm, rank, size, shape=(16, 16, 16), steps: int = 3):
    """Distributed 3-D FFT with alltoall transposes."""
    nx, ny, nz = shape
    if nx % size or ny % size:
        raise ValueError("first two dims must be divisible by comm size")
    sx = nx // size  # my slab thickness along x
    full = _field(shape)
    slab = full[rank * sx : (rank + 1) * sx].copy()  # (sx, ny, nz)

    # FFT along y and z: purely local
    slab = np.fft.fft(np.fft.fft(slab, axis=1), axis=2)
    yield from compute(comm, 5.0 * sx * ny * nz * (np.log2(ny) + np.log2(nz)))

    # transpose x <-> y so the x-axis becomes local: alltoall of blocks
    # send block d: slab[:, d*sy:(d+1)*sy, :]  -> recv (size, sx, sy, nz)
    sy = ny // size
    sendblocks = np.ascontiguousarray(
        np.stack([slab[:, d * sy : (d + 1) * sy, :] for d in range(size)])
    )
    recvblocks = np.zeros_like(sendblocks)
    yield from comm.alltoall(
        sendblocks.view(np.float64).reshape(size, -1),
        recvblocks.view(np.float64).reshape(size, -1),
    )
    # assemble (nx, sy, nz): source rank r contributed x-rows r*sx..(r+1)*sx
    xlocal = np.concatenate([recvblocks[r] for r in range(size)], axis=0)

    # FFT along x (now local)
    xlocal = np.fft.fft(xlocal, axis=0)
    yield from compute(comm, 5.0 * nx * sy * nz * np.log2(nx))

    # evolve + checksum for each step
    factor_full = [_evolve_factor(shape, t) for t in range(1, steps + 1)]
    my_y = slice(rank * sy, (rank + 1) * sy)
    results = []
    for t in range(1, steps + 1):
        evolved = xlocal * factor_full[t - 1][:, my_y, :]
        yield from compute(comm, 2.0 * nx * sy * nz)
        # checksum: sum my share of the 16 sample modes, then allreduce
        local_sum = 0j
        for q in range(1, 17):
            j = (3 * q) % ny
            if rank * sy <= j < (rank + 1) * sy:
                local_sum += evolved[q % nx, j - rank * sy, (5 * q) % nz]
        buf = np.zeros(2)
        yield from comm.allreduce(
            np.array([local_sum.real, local_sum.imag]), buf, op="sum"
        )
        results.append(complex(buf[0], buf[1]) / 16.0)

    ref = serial_reference(shape, steps)
    verified = all(abs(a - b) < 1e-8 * max(1.0, abs(b)) for a, b in zip(results, ref))
    return NasOutcome("ft", bool(verified), abs(results[-1]), detail=results)
