"""LU — SSOR wavefront solver (NPB kernel).

Gauss-Seidel-ordered sweeps over a 2-D grid distributed by rows: each
rank needs its upper neighbour's freshly-updated boundary row before it
can start, so the sweep pipelines down the machine — and the boundary
row is shipped in small column-block segments, producing LU's
signature flood of small latency-bound messages (the benchmark where
the paper reports the biggest MPI-LAPI win).
"""

from __future__ import annotations

import numpy as np

from repro.nas.common import NasOutcome, compute, register

__all__ = ["lu", "serial_reference"]

OMEGA = 1.2


def _init_grid(n: int) -> tuple[np.ndarray, np.ndarray]:
    i, j = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    u = np.where((i == 0) | (j == 0) | (i == n - 1) | (j == n - 1),
                 np.sin(0.1 * (i + 2 * j)), 0.0)
    f = 0.05 * np.cos(0.2 * i) * np.sin(0.15 * j)
    return u.astype(np.float64), f


def _sweep_serial(u: np.ndarray, f: np.ndarray, block: int = 16) -> None:
    """One forward SSOR sweep in wavefront order: column blocks outer,
    rows inner — the exact update order the pipelined version uses."""
    n = u.shape[0]
    nblocks = (n - 2 + block - 1) // block
    for b in range(nblocks):
        c0 = 1 + b * block
        c1 = min(1 + (b + 1) * block, n - 1)
        for i in range(1, n - 1):
            u[i, c0:c1] = (1 - OMEGA) * u[i, c0:c1] + OMEGA * 0.25 * (
                u[i - 1, c0:c1] + u[i + 1, c0:c1]
                + u[i, c0 - 1 : c1 - 1] + u[i, c0 + 1 : c1 + 1]
                - f[i, c0:c1]
            )


def serial_reference(n: int = 64, sweeps: int = 6, block: int = 16) -> np.ndarray:
    u, f = _init_grid(n)
    for _ in range(sweeps):
        _sweep_serial(u, f, block)
    return u


@register("lu")
def lu(comm, rank, size, n: int = 64, sweeps: int = 6, block: int = 16):
    """Pipelined SSOR sweeps; column-blocked boundary messages."""
    if n % size:
        raise ValueError("n must be divisible by comm size")
    rows = n // size
    lo = rank * rows
    u_full, f = _init_grid(n)
    # each rank owns rows [lo, lo+rows); it also keeps the two halo rows
    u = u_full[max(lo - 1, 0) : min(lo + rows + 1, n)].copy()
    top_halo = 1 if rank > 0 else 0  # index of my first owned row in `u`
    f_own = f[lo : lo + rows]
    nblocks = (n - 2 + block - 1) // block

    for sweep in range(sweeps):
        # Pipelined over column blocks: receive the updated boundary row
        # segment from above, update the block for all my rows, pass my
        # last row's segment down.  Small (block*8-byte) messages.
        for b in range(nblocks):
            c0 = 1 + b * block
            c1 = min(1 + (b + 1) * block, n - 1)
            width = c1 - c0
            if rank > 0:
                seg = np.zeros(width)
                yield from comm.recv(seg, source=rank - 1, tag=40 + b)
                u[0, c0:c1] = seg
            for li in range(rows):
                gi = lo + li
                if gi == 0 or gi == n - 1:
                    continue
                i = top_halo + li
                u[i, c0:c1] = (1 - OMEGA) * u[i, c0:c1] + OMEGA * 0.25 * (
                    u[i - 1, c0:c1] + u[i + 1, c0:c1]
                    + u[i, c0 - 1 : c1 - 1] + u[i, c0 + 1 : c1 + 1]
                    - f_own[li, c0:c1]
                )
            yield from compute(comm, 8.0 * rows * width)
            if rank < size - 1:
                yield from comm.send(
                    u[top_halo + rows - 1, c0:c1].copy(), dest=rank + 1, tag=40 + b
                )
        # after the sweep, refresh the *lower* halo (Gauss-Seidel uses the
        # previous sweep's value of row lo+rows)
        if rank < size - 1:
            lower = np.zeros(n)
            yield from comm.recv(lower, source=rank + 1, tag=90)
            u[top_halo + rows] = lower
        if rank > 0:
            yield from comm.send(u[top_halo].copy(), dest=rank - 1, tag=90)

    # assemble and verify
    blocks_all = np.zeros((size, rows, n))
    yield from comm.allgather(u[top_halo : top_halo + rows].copy(), blocks_all)
    result = blocks_all.reshape(n, n)
    ref = serial_reference(n, sweeps, block)
    err = float(np.max(np.abs(result - ref)))
    return NasOutcome("lu", err < 1e-10, float(np.linalg.norm(result)), detail=err)
