"""SP — Scalar-Pentadiagonal ADI solver (NPB kernel, mini form).

Same ADI structure as BT, but the distributed-direction line solves use
the *transpose* strategy: alltoall the grid so y becomes local, solve,
and alltoall back.  Two full-volume transposes per iteration against a
heavier (pentadiagonal) local solve — SP is compute-rich relative to
its communication, which is why the paper saw little stack sensitivity.
"""

from __future__ import annotations

import numpy as np

from repro.nas.common import NasOutcome, compute, register

__all__ = ["sp", "serial_reference"]

_D0 = 6.0
_D1 = -2.0
_D2 = 0.5


def _penta_solve(rhs: np.ndarray) -> np.ndarray:
    """Solve the constant pentadiagonal system along axis 0 (columns)."""
    n = rhs.shape[0]
    # build the banded matrix once; small n keeps this cheap and exact
    A = np.zeros((n, n))
    idx = np.arange(n)
    A[idx, idx] = _D0
    A[idx[:-1], idx[:-1] + 1] = A[idx[:-1] + 1, idx[:-1]] = _D1
    A[idx[:-2], idx[:-2] + 2] = A[idx[:-2] + 2, idx[:-2]] = _D2
    return np.linalg.solve(A, rhs)


def _init_state(n: int) -> np.ndarray:
    i, j = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    return (np.cos(0.13 * i) * np.sin(0.19 * j) + 0.02 * i).astype(np.float64)


def serial_reference(n: int = 64, iters: int = 3) -> np.ndarray:
    u = _init_state(n)
    for _ in range(iters):
        u = _penta_solve(u.T).T  # x-direction
        u = _penta_solve(u)      # y-direction
        u = u + 0.02 * np.tanh(u)
    return u


def _transpose(comm, rank, size, local: np.ndarray) -> np.ndarray:
    """Global 2-D transpose of a row-distributed matrix via alltoall.

    ``local`` is (rows, n); returns the transposed matrix's local slab
    (rows, n) where the new rows are the old columns.
    """
    rows, n = local.shape
    blocks = np.ascontiguousarray(
        np.stack([local[:, d * rows : (d + 1) * rows] for d in range(size)])
    )  # (size, rows, rows)
    recv = np.zeros_like(blocks)
    yield from comm.alltoall(blocks.reshape(size, -1), recv.reshape(size, -1))
    # block from rank r holds old rows r*rows..(r+1)*rows of my columns
    out = np.concatenate([recv[r].T for r in range(size)], axis=1)
    return out  # (rows, n): my columns as rows


@register("sp")
def sp(comm, rank, size, n: int = 64, iters: int = 3):
    """ADI iterations with transpose-based y-direction solves."""
    if n % size:
        raise ValueError("n must be divisible by comm size")
    rows = n // size
    lo = rank * rows
    u = _init_state(n)[lo : lo + rows].copy()

    for _ in range(iters):
        # x-direction: local pentadiagonal solves along rows (SP's
        # factor/solve chain is flop-heavy: ~70 flops per point)
        u = _penta_solve(u.T).T
        yield from compute(comm, 70.0 * rows * n)

        # y-direction: transpose, solve locally, transpose back
        ut = yield from _transpose(comm, rank, size, u)
        ut = _penta_solve(ut.T).T
        yield from compute(comm, 70.0 * rows * n)
        u = yield from _transpose(comm, rank, size, ut)

        u = u + 0.02 * np.tanh(u)
        yield from compute(comm, 25.0 * rows * n)

    blocks = np.zeros((size, rows, n))
    yield from comm.allgather(u, blocks)
    result = blocks.reshape(n, n)
    ref = serial_reference(n, iters)
    err = float(np.max(np.abs(result - ref)))
    return NasOutcome("sp", err < 1e-9, float(np.linalg.norm(result)), detail=err)
