"""CG — Conjugate Gradient (NPB kernel).

Solves A x = b for a deterministic symmetric positive-definite banded
matrix, rows distributed across ranks.  Per iteration: an allgather of
the search direction (medium message) and three dot-product allreduces
(tiny) — CG mixes latency- and bandwidth-sensitivity.
"""

from __future__ import annotations

import numpy as np

from repro.nas.common import NasOutcome, compute, register

__all__ = ["cg", "build_system", "serial_reference"]


def build_system(n: int):
    """SPD banded test matrix (diagonally dominant) and RHS."""
    idx = np.arange(n)
    A = np.zeros((n, n))
    A[idx, idx] = 4.0 + (idx % 3)
    off = np.arange(n - 1)
    A[off, off + 1] = A[off + 1, off] = -1.0
    off = np.arange(n - 5)
    A[off, off + 5] = A[off + 5, off] = -0.5
    b = np.cos(idx * 0.7) + 1.1
    return A, b


def serial_reference(n: int) -> np.ndarray:
    A, b = build_system(n)
    return np.linalg.solve(A, b)


@register("cg")
def cg(comm, rank, size, n: int = 256, iters: int = 25):
    """Distributed CG; returns residual-based verification."""
    if n % size:
        raise ValueError("n must be divisible by comm size")
    rows = n // size
    lo = rank * rows
    A, b = build_system(n)
    A_local = A[lo : lo + rows]  # my block of rows
    b_local = b[lo : lo + rows]

    x_local = np.zeros(rows)
    r_local = b_local.copy()
    p_local = r_local.copy()
    p_full = np.zeros((size, rows))
    scratch = np.zeros(1)

    rs = np.zeros(1)
    yield from comm.allreduce(np.array([r_local @ r_local]), rs, op="sum")
    rs_old = float(rs[0])

    for _ in range(iters):
        # gather the full search direction for the local matvec
        yield from comm.allgather(p_local, p_full)
        p = p_full.ravel()
        Ap_local = A_local @ p
        # NPB CG's matrix is sparse (~13 nonzeros/row in our band
        # structure); the dense matvec above is only for exactness
        yield from compute(comm, 2.0 * rows * 13)

        yield from comm.allreduce(
            np.array([p[lo : lo + rows] @ Ap_local]), scratch, op="sum"
        )
        pAp = float(scratch[0])
        alpha = rs_old / pAp
        x_local += alpha * p[lo : lo + rows]
        r_local -= alpha * Ap_local
        yield from compute(comm, 4.0 * rows)

        yield from comm.allreduce(np.array([r_local @ r_local]), scratch, op="sum")
        rs_new = float(scratch[0])
        if rs_new < 1e-22:
            break
        p_local = r_local + (rs_new / rs_old) * p[lo : lo + rows]
        rs_old = rs_new

    # verification: assemble and compare against the serial solve
    x_full = np.zeros((size, rows))
    yield from comm.allgather(x_local, x_full)
    x = x_full.ravel()
    ref = serial_reference(n)
    err = float(np.max(np.abs(x - ref)))
    return NasOutcome("cg", err < 1e-6, float(np.linalg.norm(x)), detail=err)
