"""repro — MPI-LAPI: a full reproduction of *Implementing Efficient MPI
on LAPI for IBM RS/6000 SP Systems* (Banikazemi, Govindaraju, Blackmore,
Panda — IPPS 1999) on a simulated SP.

Quickstart::

    from repro import SPCluster

    def pingpong(comm, rank, size):
        import numpy as np
        buf = np.zeros(1024, dtype=np.uint8)
        if rank == 0:
            yield from comm.send(buf, dest=1)
            yield from comm.recv(buf, source=1)
        else:
            yield from comm.recv(buf, source=0)
            yield from comm.send(buf, dest=0)

    result = SPCluster(2, stack="lapi-enhanced").run(pingpong)
    print(f"round trip: {result.elapsed_us:.1f} us")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproductions.
"""

from repro.cluster import RunResult, SPCluster, STACKS
from repro.machine import MachineParams, NodeStats
from repro.mpci import ANY_SOURCE, ANY_TAG

__version__ = "1.0.0"

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "MachineParams",
    "NodeStats",
    "RunResult",
    "SPCluster",
    "STACKS",
    "__version__",
]
