"""Declarative fault injection and recovery-invariant campaigns.

The paper's premise (§2.2) is that LAPI gives MPI a *reliable* transport
over an unreliable packet switch.  This package turns that claim into a
testable property: :class:`FaultPlan` schedules fault events, a
:class:`FaultInjector` delivers them through :class:`FaultPoint` hooks
installed in the fabric, adapters, dispatchers, and CPUs, and
:func:`run_campaign` checks that every workload recovers — byte-equal
payloads versus a fault-free run, no stuck requests, drained matcher
queues, empty windows/ledgers, bounded retransmissions.

See ``docs/FAULTS.md`` for the plan schema and invariant list.
"""

from repro.faults.campaign import (
    CampaignResult,
    SOAK_MATRIX,
    WORKLOADS,
    check_invariants,
    quiesce,
    run_campaign,
    run_soak,
    run_workload,
    transport_quiet,
)
from repro.faults.plan import (
    DispatcherStall,
    DuplicateStorm,
    FaultEvent,
    FaultPlan,
    FifoSqueeze,
    InterruptStorm,
    LossBurst,
    NodeSlowdown,
    PLANS,
    ReorderStorm,
    SITES,
    builtin_plan,
)
from repro.faults.points import FaultInjector, FaultPoint, PacketVerdict

__all__ = [
    "CampaignResult",
    "SOAK_MATRIX",
    "WORKLOADS",
    "run_soak",
    "run_workload",
    "DispatcherStall",
    "DuplicateStorm",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultPoint",
    "FifoSqueeze",
    "InterruptStorm",
    "LossBurst",
    "NodeSlowdown",
    "PLANS",
    "PacketVerdict",
    "ReorderStorm",
    "SITES",
    "builtin_plan",
    "check_invariants",
    "quiesce",
    "run_campaign",
    "transport_quiet",
]
