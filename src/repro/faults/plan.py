"""Declarative fault plans: composable schedules of fault events.

A :class:`FaultPlan` is an immutable, named collection of
:class:`FaultEvent` instances, each active over a time window
``[at_us, at_us + duration_us)`` and targeting one injection *site*:

========== =============================================================
site        events
========== =============================================================
fabric      :class:`LossBurst`, :class:`ReorderStorm`,
            :class:`DuplicateStorm`
adapter     :class:`FifoSqueeze`
dispatcher  :class:`DispatcherStall`
cpu         :class:`NodeSlowdown`
storm       :class:`InterruptStorm` (driven by its own sim process)
========== =============================================================

Plans serialise to/from plain JSON-able dicts (``to_dict`` /
``from_dict``) so campaigns can be checked in as data.  The built-in
plans used by the chaos soak live in :data:`PLANS`.

Events with ``node=None`` apply cluster-wide; an integer restricts the
event to that node (for fabric events: packets whose source *or*
destination is that node).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import ClassVar, Iterable, Optional

__all__ = [
    "DispatcherStall",
    "DuplicateStorm",
    "FaultEvent",
    "FaultPlan",
    "FifoSqueeze",
    "InterruptStorm",
    "LossBurst",
    "NodeSlowdown",
    "PLANS",
    "ReorderStorm",
    "SITES",
    "builtin_plan",
]

SITES = ("fabric", "adapter", "dispatcher", "cpu", "storm")


@dataclass(frozen=True)
class FaultEvent:
    """Base fault event: a window on the simulation clock."""

    #: injection site this event binds to (class-level)
    site: ClassVar[str] = ""
    #: serialisation tag (class-level)
    kind: ClassVar[str] = ""

    at_us: float = 0.0
    duration_us: float = 0.0
    node: Optional[int] = None

    def __post_init__(self):
        if self.at_us < 0.0 or self.duration_us < 0.0:
            raise ValueError("fault windows need non-negative at/duration")

    @property
    def end_us(self) -> float:
        return self.at_us + self.duration_us

    def active(self, now: float) -> bool:
        return self.at_us <= now < self.end_us

    def matches_node(self, node: Optional[int]) -> bool:
        return self.node is None or node is None or self.node == node

    def matches_packet(self, src: int, dst: int) -> bool:
        return self.node is None or self.node in (src, dst)

    def to_dict(self) -> dict:
        d = asdict(self)
        d["kind"] = self.kind
        return d


@dataclass(frozen=True)
class LossBurst(FaultEvent):
    """Drop fabric packets with probability ``rate`` during the window."""

    site: ClassVar[str] = "fabric"
    kind: ClassVar[str] = "loss_burst"
    rate: float = 1.0

    def __post_init__(self):
        super().__post_init__()
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError("loss rate must be in [0, 1]")


@dataclass(frozen=True)
class ReorderStorm(FaultEvent):
    """Inflate per-packet fabric delay by ``extra_skew_us`` plus a
    uniform draw in ``[0, extra_jitter_us)`` — enough spread and later
    packets overtake earlier ones."""

    site: ClassVar[str] = "fabric"
    kind: ClassVar[str] = "reorder_storm"
    extra_skew_us: float = 0.0
    extra_jitter_us: float = 0.0

    def __post_init__(self):
        super().__post_init__()
        if self.extra_skew_us < 0.0 or self.extra_jitter_us < 0.0:
            raise ValueError("reorder storm delays must be non-negative")


@dataclass(frozen=True)
class DuplicateStorm(FaultEvent):
    """With probability ``rate``, deliver ``copies`` copies of a packet
    (the extras staggered by jitter so they arrive distinctly)."""

    site: ClassVar[str] = "fabric"
    kind: ClassVar[str] = "duplicate_storm"
    rate: float = 0.5
    copies: int = 2

    def __post_init__(self):
        super().__post_init__()
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError("duplicate rate must be in [0, 1]")
        if self.copies < 2:
            raise ValueError("a duplicate storm needs copies >= 2")


@dataclass(frozen=True)
class FifoSqueeze(FaultEvent):
    """Clamp the adapter host receive FIFO to ``capacity`` slots,
    forcing overflow drops the reliability layer must repair."""

    site: ClassVar[str] = "adapter"
    kind: ClassVar[str] = "fifo_squeeze"
    capacity: int = 2

    def __post_init__(self):
        super().__post_init__()
        if self.capacity < 1:
            raise ValueError("squeezed FIFO still needs >= 1 slot")


@dataclass(frozen=True)
class DispatcherStall(FaultEvent):
    """Charge ``stall_us`` of extra CPU before each dispatcher drain —
    a progress engine that has gone unresponsive."""

    site: ClassVar[str] = "dispatcher"
    kind: ClassVar[str] = "dispatcher_stall"
    stall_us: float = 50.0

    def __post_init__(self):
        super().__post_init__()
        if self.stall_us < 0.0:
            raise ValueError("stall must be non-negative")


@dataclass(frozen=True)
class InterruptStorm(FaultEvent):
    """Spurious interrupts every ``period_us``, each stealing one
    interrupt-overhead charge from the node's CPU."""

    site: ClassVar[str] = "storm"
    kind: ClassVar[str] = "interrupt_storm"
    period_us: float = 25.0

    def __post_init__(self):
        super().__post_init__()
        if self.period_us <= 0.0:
            raise ValueError("storm period must be positive")


@dataclass(frozen=True)
class NodeSlowdown(FaultEvent):
    """Multiply every CPU cost on the node by ``factor`` (> 1 slows)."""

    site: ClassVar[str] = "cpu"
    kind: ClassVar[str] = "node_slowdown"
    factor: float = 2.0

    def __post_init__(self):
        super().__post_init__()
        if self.factor <= 0.0:
            raise ValueError("slowdown factor must be positive")


EVENT_TYPES = {
    cls.kind: cls
    for cls in (LossBurst, ReorderStorm, DuplicateStorm, FifoSqueeze,
                DispatcherStall, InterruptStorm, NodeSlowdown)
}


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, named schedule of fault events."""

    name: str = "none"
    events: tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "events", tuple(self.events))

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def extend(self, *events: FaultEvent, name: Optional[str] = None) -> "FaultPlan":
        return FaultPlan(name if name is not None else self.name,
                         self.events + tuple(events))

    def __add__(self, other: "FaultPlan") -> "FaultPlan":
        return FaultPlan(f"{self.name}+{other.name}", self.events + other.events)

    def for_site(self, site: str) -> tuple[FaultEvent, ...]:
        if site not in SITES:
            raise ValueError(f"unknown site {site!r}; choose from {SITES}")
        return tuple(e for e in self.events if e.site == site)

    @property
    def horizon_us(self) -> float:
        """When the last scheduled event window closes."""
        return max((e.end_us for e in self.events), default=0.0)

    def to_dict(self) -> dict:
        return {"name": self.name, "events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        events = []
        for ed in d.get("events", ()):
            ed = dict(ed)
            kind = ed.pop("kind")
            etype = EVENT_TYPES.get(kind)
            if etype is None:
                raise ValueError(f"unknown fault event kind {kind!r}")
            allowed = {f.name for f in fields(etype)}
            unknown = set(ed) - allowed
            if unknown:
                raise ValueError(f"{kind}: unknown field(s) {sorted(unknown)}")
            events.append(etype(**ed))
        return cls(d.get("name", "none"), tuple(events))


# ---------------------------------------------------------------- built-ins
# The soak plans are short and deterministic: windows sized for the
# campaign workloads (a ping-pong round trip is tens of us; a class-S
# kernel runs a few ms).

def _loss_burst(at_us: float = 20.0, duration_us: float = 400.0,
                rate: float = 0.35) -> FaultPlan:
    return FaultPlan("loss-burst", (LossBurst(at_us, duration_us, rate=rate),))


def _reorder_storm(at_us: float = 20.0, duration_us: float = 600.0,
                   extra_skew_us: float = 4.0,
                   extra_jitter_us: float = 30.0) -> FaultPlan:
    return FaultPlan("reorder-storm", (
        ReorderStorm(at_us, duration_us, extra_skew_us=extra_skew_us,
                     extra_jitter_us=extra_jitter_us),
    ))


def _fifo_squeeze(at_us: float = 20.0, duration_us: float = 500.0,
                  capacity: int = 1) -> FaultPlan:
    return FaultPlan("fifo-squeeze", (
        FifoSqueeze(at_us, duration_us, capacity=capacity),
    ))


def _duplicate_storm(at_us: float = 20.0, duration_us: float = 500.0,
                     rate: float = 0.4, copies: int = 2) -> FaultPlan:
    return FaultPlan("duplicate-storm", (
        DuplicateStorm(at_us, duration_us, rate=rate, copies=copies),
    ))


def _dispatcher_stall(at_us: float = 20.0, duration_us: float = 400.0,
                      stall_us: float = 40.0) -> FaultPlan:
    return FaultPlan("dispatcher-stall", (
        DispatcherStall(at_us, duration_us, stall_us=stall_us),
    ))


def _chaos() -> FaultPlan:
    """Everything at once, staggered — the kitchen-sink soak plan."""
    return FaultPlan("chaos", (
        LossBurst(20.0, 250.0, rate=0.25),
        ReorderStorm(150.0, 400.0, extra_skew_us=3.0, extra_jitter_us=20.0),
        DuplicateStorm(300.0, 300.0, rate=0.3),
        FifoSqueeze(100.0, 350.0, capacity=2, node=1),
        DispatcherStall(250.0, 250.0, stall_us=30.0, node=0),
        InterruptStorm(50.0, 300.0, period_us=40.0, node=1),
        NodeSlowdown(200.0, 300.0, factor=1.5, node=0),
    ))


PLANS = {
    "loss-burst": _loss_burst,
    "reorder-storm": _reorder_storm,
    "fifo-squeeze": _fifo_squeeze,
    "duplicate-storm": _duplicate_storm,
    "dispatcher-stall": _dispatcher_stall,
    "chaos": _chaos,
}


def builtin_plan(name: str, **overrides) -> FaultPlan:
    """Instantiate a named built-in plan (see :data:`PLANS`)."""
    factory = PLANS.get(name)
    if factory is None:
        raise KeyError(f"unknown plan {name!r}; choose from {sorted(PLANS)}")
    return factory(**overrides)


def iter_events(plans: Iterable[FaultPlan]):
    for plan in plans:
        yield from plan.events
