"""The FaultPoint hook API: how fault plans reach the simulated hardware.

One :class:`FaultInjector` per cluster owns the plan, the dedicated
``faults`` RNG substream, the ``fault.*`` counters, and (when tracing)
the span instants that make injected events visible in Perfetto
exports.  Components never see the plan directly — each injection site
asks for a bound :class:`FaultPoint` handle::

    fabric.faults     = injector.point("fabric")
    adapter.faults    = injector.point("adapter", node=i)
    lapi.faults       = injector.point("dispatcher", node=i)
    cpu.faults        = injector.point("cpu", node=i)

``point`` returns ``None`` when the plan has nothing for that site
(and, for the fabric, no base loss), so quiet configurations keep a
single ``is None`` check on the hot path and draw no random numbers.

The scalar ``packet_loss_rate`` knob from :class:`MachineParams` is
now just a standing :class:`FaultPoint` verdict — fabrics built without
an explicit injector derive one from their params, which keeps direct
``SwitchFabric(env, params, rng=...)`` construction working unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.faults.plan import (
    DispatcherStall,
    DuplicateStorm,
    FaultPlan,
    FifoSqueeze,
    InterruptStorm,
    LossBurst,
    NodeSlowdown,
    ReorderStorm,
    SITES,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.packet import Packet

__all__ = ["FaultInjector", "FaultPoint", "PacketVerdict"]

#: verdict for an unmolested packet (shared instance, allocation-free)
_PASS = None


class PacketVerdict:
    """What the fabric should do with one packet.

    ``copies == 0`` drops it; ``copies >= 2`` delivers duplicates.
    ``extra_delays_us[k]`` is added to copy ``k``'s traversal latency
    (missing entries mean no extra delay).
    """

    __slots__ = ("copies", "extra_delays_us")

    def __init__(self, copies: int = 1, extra_delays_us: tuple = ()):
        self.copies = copies
        self.extra_delays_us = extra_delays_us

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PacketVerdict(copies={self.copies}, extra={self.extra_delays_us})"


DROP = PacketVerdict(copies=0)


class FaultInjector:
    """Owns one cluster's fault plan, RNG stream, and fault metrics."""

    def __init__(
        self,
        plan: Optional[FaultPlan] = None,
        rng: Optional[np.random.Generator] = None,
        metrics=None,
        tracer=None,
        base_loss_rate: float = 0.0,
        params=None,
    ):
        if not (0.0 <= base_loss_rate < 1.0):
            raise ValueError("base_loss_rate must be in [0, 1)")
        self.plan = plan if plan is not None else FaultPlan()
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.tracer = tracer
        #: when ``params`` is given, the standing loss floor is read live
        #: from ``params.packet_loss_rate`` (tests heal fabrics mid-run by
        #: mutating it); otherwise the static rate applies
        self._params = params
        self._static_loss_rate = base_loss_rate
        self._by_site = {site: self.plan.for_site(site) for site in SITES}

        self.metrics = metrics
        if metrics is not None:
            self._c_drops = metrics.counter("fault.injected_drops")
            self._c_dups = metrics.counter("fault.duplicates")
            self._c_delays = metrics.counter("fault.extra_delays")
            self._c_squeezes = metrics.counter("fault.fifo_squeezes")
            self._c_stalls = metrics.counter("fault.dispatcher_stalls")
            self._c_storm = metrics.counter("fault.interrupt_storm_ticks")
            self._c_slow = metrics.counter("fault.cpu_slowdown_ticks")
        else:
            self._c_drops = self._c_dups = self._c_delays = None
            self._c_squeezes = self._c_stalls = None
            self._c_storm = self._c_slow = None

    @property
    def base_loss_rate(self) -> float:
        if self._params is not None:
            return self._params.packet_loss_rate
        return self._static_loss_rate

    # ------------------------------------------------------------- points
    def point(self, site: str, node: Optional[int] = None) -> Optional["FaultPoint"]:
        """A bound handle for ``site`` (on ``node``), or ``None`` when
        the plan can never fire there — callers keep a single
        ``faults is None`` fast path."""
        events = [e for e in self._by_site[site]
                  if node is None or e.matches_node(node)]
        if site == "fabric" and (self._params is not None
                                 or self._static_loss_rate > 0.0):
            pass  # a live loss floor keeps the fabric point installed
        elif not events:
            return None
        return FaultPoint(self, site, node, tuple(events))

    # ------------------------------------------------------------ tracing
    def _trace(self, node: Optional[int], event: str, **fields) -> None:
        if self.tracer is not None:
            self.tracer.emit(node if node is not None else -1, "fault",
                             event, **fields)

    @staticmethod
    def _incr(counter, n: int = 1) -> None:
        if counter is not None:
            counter.incr(n)

    # ----------------------------------------------------------- verdicts
    def packet_verdict(self, packet: "Packet", now: float,
                       events) -> Optional[PacketVerdict]:
        """Fabric-site decision for one packet; ``None`` means deliver
        normally (the overwhelmingly common case)."""
        rate = self.base_loss_rate
        extra_skew = 0.0
        extra_jitter = 0.0
        dup_rate = 0.0
        dup_copies = 2
        for ev in events:
            if not (ev.active(now) and ev.matches_packet(packet.src, packet.dst)):
                continue
            if isinstance(ev, LossBurst):
                rate = max(rate, ev.rate)
            elif isinstance(ev, ReorderStorm):
                extra_skew += ev.extra_skew_us
                extra_jitter += ev.extra_jitter_us
            elif isinstance(ev, DuplicateStorm):
                dup_rate = max(dup_rate, ev.rate)
                dup_copies = max(dup_copies, ev.copies)

        if rate > 0.0 and self.rng.random() < rate:
            self._incr(self._c_drops)
            self._trace(packet.dst, "drop", src=packet.src,
                        kind=packet.header.get("kind"),
                        seq=packet.header.get("seq"),
                        mid=packet.header.get("mid"))
            return DROP

        copies = 1
        if dup_rate > 0.0 and self.rng.random() < dup_rate:
            copies = dup_copies
            self._incr(self._c_dups, copies - 1)
            self._trace(packet.dst, "duplicate", src=packet.src, copies=copies,
                        seq=packet.header.get("seq"),
                        mid=packet.header.get("mid"))

        if extra_skew > 0.0 or extra_jitter > 0.0:
            extras = tuple(
                extra_skew + (self.rng.random() * extra_jitter
                              if extra_jitter > 0.0 else 0.0)
                for _ in range(copies)
            )
            self._incr(self._c_delays, copies)
            self._trace(packet.dst, "delay", src=packet.src,
                        extra_us=round(max(extras), 3),
                        seq=packet.header.get("seq"),
                        mid=packet.header.get("mid"))
            return PacketVerdict(copies, extras)

        if copies == 1:
            return _PASS
        # duplicates with no storm jitter: stagger the extras slightly so
        # the copies are distinct arrivals rather than a same-instant pair
        extras = tuple(0.0 if k == 0 else 0.05 * k for k in range(copies))
        return PacketVerdict(copies, extras)

    def fifo_capacity(self, default: int, node: Optional[int],
                      now: float, events) -> int:
        cap = default
        for ev in events:
            if isinstance(ev, FifoSqueeze) and ev.active(now) and ev.matches_node(node):
                cap = min(cap, ev.capacity)
        if cap != default:
            self._incr(self._c_squeezes)
            self._trace(node, "fifo_squeeze", capacity=cap)
        return cap

    def stall_us(self, node: Optional[int], now: float, events) -> float:
        stall = 0.0
        for ev in events:
            if isinstance(ev, DispatcherStall) and ev.active(now) and ev.matches_node(node):
                stall = max(stall, ev.stall_us)
        if stall > 0.0:
            self._incr(self._c_stalls)
            self._trace(node, "dispatcher_stall", stall_us=stall)
        return stall

    def slowdown(self, node: Optional[int], now: float, events) -> float:
        factor = 1.0
        for ev in events:
            if isinstance(ev, NodeSlowdown) and ev.active(now) and ev.matches_node(node):
                factor = max(factor, ev.factor)
        if factor != 1.0:
            self._incr(self._c_slow)
        return factor

    # ----------------------------------------------------- interrupt storms
    def start_storms(self, env, cpus) -> list:
        """Spawn one bounded process per :class:`InterruptStorm` event.

        Each tick charges one interrupt-overhead entry on the target
        node(s)' CPU via an ``irq``-prefixed context.  The processes end
        when their windows close, so the event queue still drains and
        deadlock detection keeps working.
        """
        procs = []
        for ev in self._by_site["storm"]:
            if not isinstance(ev, InterruptStorm):
                continue
            targets = (
                list(enumerate(cpus)) if ev.node is None
                else [(ev.node, cpus[ev.node])]
            )
            for node_id, cpu in targets:
                procs.append(env.process(
                    self._storm_proc(env, ev, node_id, cpu),
                    name=f"fault.irqstorm{node_id}",
                ))
        return procs

    def _storm_proc(self, env, ev: InterruptStorm, node_id: int, cpu):
        if env.now < ev.at_us:
            yield env.timeout(ev.at_us - env.now)
        while env.now < ev.end_us:
            self._incr(self._c_storm)
            self._trace(node_id, "spurious_interrupt")
            # an irq-prefixed context also pays the interrupt-entry
            # charge on first dispatch; the service cost models the
            # handler discovering there is nothing to do
            yield from cpu.execute(f"irq-storm{node_id}",
                                   cpu.params.interrupt_overhead_us)
            yield env.timeout(ev.period_us)


class FaultPoint:
    """One site's bound view of the injector (see module docstring)."""

    __slots__ = ("injector", "site", "node", "events")

    def __init__(self, injector: FaultInjector, site: str,
                 node: Optional[int], events: tuple):
        self.injector = injector
        self.site = site
        self.node = node
        self.events = events

    def on_packet(self, packet: "Packet", now: float) -> Optional[PacketVerdict]:
        return self.injector.packet_verdict(packet, now, self.events)

    def fifo_capacity(self, default: int, now: float) -> int:
        return self.injector.fifo_capacity(default, self.node, now, self.events)

    def stall_us(self, now: float) -> float:
        return self.injector.stall_us(self.node, now, self.events)

    def slowdown(self, now: float) -> float:
        return self.injector.slowdown(self.node, now, self.events)
