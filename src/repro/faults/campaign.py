"""Fault campaigns: run workloads under fault plans, check recovery.

A campaign run is three phases per (plan, workload) pair:

1. **Reference** — the workload on a fault-free cluster with the same
   seed and parameters.  Thanks to the named RNG substreams
   (:mod:`repro.rngs`) the faulted run sees the *same* fabric jitter,
   so any payload difference is the fault machinery's doing.
2. **Faulted** — the same workload with the plan injected.
3. **Quiesce + invariants** — after the program completes, interrupt-
   driven draining is enabled on every node and the clock advances in
   bounded slices until the transport is quiet.  Then the recovery
   invariants are checked:

   * payloads byte-equal to the reference run (zero corruption),
   * no stuck requests (pending sends/recvs, attach credits),
   * matcher queues drained (posted and early-arrival),
   * every ``SenderWindow``/``ReceiverLedger`` empty (nothing in
     flight, no sequence gaps, no stashed fragments),
   * retransmission count bounded by the injected damage.

Violations are strings naming the failed invariant; a workload that
deadlocks or fails to quiesce reports that as a violation rather than
raising.  Results surface the ``fault.*`` counters so CI logs show what
was actually injected.

CLI::

    python -m repro.faults.campaign --soak          # the CI chaos soak
    python -m repro.faults.campaign --plan chaos --workload pingpong
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.faults.plan import FaultPlan, builtin_plan

__all__ = [
    "CampaignResult",
    "SOAK_MATRIX",
    "WORKLOADS",
    "check_invariants",
    "main",
    "quiesce",
    "run_campaign",
    "run_workload",
    "transport_quiet",
]


# ------------------------------------------------------------- workloads
def _pingpong(cluster, reps: int = 6, msg_size: int = 512):
    """Marker ping-pong; each rank returns the bytes it received."""

    def program(comm, rank, size):
        got = []
        buf = bytearray(msg_size)
        yield from comm.barrier()
        for i in range(reps):
            marker = (i % 255) + 1
            if rank == 0:
                yield from comm.send(bytes([marker]) * msg_size, dest=1)
                yield from comm.recv(buf, source=1)
                got.append(bytes(buf))
            else:
                yield from comm.recv(buf, source=0)
                got.append(bytes(buf))
                yield from comm.send(bytes([marker ^ 0xFF]) * msg_size, dest=0)
        return b"".join(got)

    return cluster.run(program)


def _streaming(cluster, count: int = 12, msg_size: int = 1024):
    """Back-to-back Isend/Irecv stream; the receiver returns the data."""
    import numpy as np

    def program(comm, rank, size):
        if rank == 1:
            bufs = [np.zeros(msg_size, dtype=np.uint8) for _ in range(count)]
            reqs = []
            for i in range(count):
                r = yield from comm.irecv(bufs[i], source=0)
                reqs.append(r)
            yield from comm.barrier()
            yield from comm.waitall(reqs)
            yield from comm.send(b"k", dest=0)
            return b"".join(bytes(b) for b in bufs)
        yield from comm.barrier()
        reqs = []
        for i in range(count):
            payload = bytes([(i % 255) + 1]) * msg_size
            r = yield from comm.isend(payload, dest=1)
            reqs.append(r)
        yield from comm.waitall(reqs)
        ack = bytearray(1)
        yield from comm.recv(ack, source=1)
        return bytes(ack)

    return cluster.run(program)


def _rma(cluster, reps: int = 4, win_size: int = 96):
    """MPI-3 one-sided soak: fence halo puts, lock-protected counter
    bumps, and a contended CAS.  Each rank returns its final window
    contents — byte-equal to the fault-free run because every order-
    dependent outcome (who wins the CAS) leaves the same memory."""

    def program(comm, rank, size):
        win = yield from comm.win_create(win_size)
        yield from win.fence()
        right = (rank + 1) % size
        left = (rank - 1) % size
        for i in range(reps):
            pattern = bytes([(rank * 32 + i) % 255 + 1]) * 16
            yield from win.put(pattern, right, 0)
            yield from win.put(pattern, left, 16)
            yield from win.fence()
        # passive target: every rank bumps the shared counter on rank 0
        for _ in range(reps):
            yield from win.lock(0, exclusive=True)
            yield from win.fetch_and_op(1, 0, 64, op="sum")
            yield from win.unlock(0)
        yield from comm.barrier()
        # contended CAS: the non-root ranks race 0 -> 1 at word 72; the
        # winner varies with timing but the memory outcome does not
        if rank != 0:
            yield from win.lock(0, exclusive=False)
            yield from win.compare_and_swap(1, 0, 0, 72)
            yield from win.unlock(0)
        yield from comm.barrier()
        yield from win.fence()
        snapshot = bytes(win.mem)
        yield from win.free()
        return snapshot

    return cluster.run(program)


def _nas(kernel: str):
    def run(cluster):
        from repro.nas.common import run_kernel

        return run_kernel(kernel, cluster, cls="S")

    run.__name__ = f"_nas_{kernel}"
    return run


#: workload name -> (runner, num_nodes)
WORKLOADS: dict[str, tuple[Callable, int]] = {
    "pingpong": (_pingpong, 2),
    "streaming": (_streaming, 2),
    "rma": (_rma, 3),
    "nas-cg": (_nas("cg"), 4),
    "nas-is": (_nas("is"), 4),
    "nas-ep": (_nas("ep"), 4),
}

#: the CI chaos soak: 3 plans x pingpong, one NAS kernel, and the
#: one-sided workload under the two plans that stress its epochs
SOAK_MATRIX = (
    ("loss-burst", "pingpong"),
    ("reorder-storm", "pingpong"),
    ("fifo-squeeze", "pingpong"),
    ("loss-burst", "nas-cg"),
    ("loss-burst", "rma"),
    ("reorder-storm", "rma"),
)


def _payload(result) -> bytes:
    """Canonical bytes for a RunResult (NAS outcomes fold to text)."""
    parts = []
    for v in result.values:
        if v is None:
            parts.append(b"-")
        elif isinstance(v, (bytes, bytearray)):
            parts.append(bytes(v))
        elif hasattr(v, "checksum") and hasattr(v, "verified"):
            parts.append(
                f"{v.name}:{v.verified}:{v.checksum:.12g}".encode()
            )
        else:
            parts.append(repr(v).encode())
    return b"|".join(parts)


# --------------------------------------------------------------- quiesce
def transport_quiet(cluster) -> bool:
    """True when nothing is in flight anywhere in the transport."""
    for a in cluster.adapters:
        if a.rx_pending:
            return False
    for lapi in cluster.lapis:
        if lapi is None:
            continue
        if lapi._tx_outstanding or lapi._assemblies:
            return False
        if any(f.window.in_flight for f in lapi._flow_tx.values()):
            return False
        if any(f.ledger.gap_count for f in lapi._flow_rx.values()):
            return False
    for pipe in cluster.pipes:
        if pipe is None:
            continue
        if any(f.window.in_flight for f in pipe._tx.values()):
            return False
        if any(f.stash or f.ledger.gap_count for f in pipe._rx.values()):
            return False
    return True


def quiesce(cluster, budget_us: float = 500_000.0,
            slice_us: float = 2_000.0) -> Optional[float]:
    """Drive the clock until the transport drains; time spent, or
    ``None`` if the budget ran out first.

    After the programs return, nobody polls in polling mode, so
    retransmissions would sit in receive FIFOs forever.  Interrupt-
    driven draining is enabled on every node first: the protocol ISRs
    process leftover data and acks until the windows empty.
    """
    if cluster.stack == "raw-lapi":
        for lapi in cluster.lapis:
            lapi.senv("INTERRUPT_SET", True)
    else:
        for backend in cluster.backends:
            backend.set_interrupt_mode(True)
    start = cluster.env.now
    while cluster.env.now - start < budget_us:
        if transport_quiet(cluster):
            return cluster.env.now - start
        cluster.env.run(until=cluster.env.now + slice_us)
    return cluster.env.now - start if transport_quiet(cluster) else None


# ------------------------------------------------------------ invariants
def _fault_counters(cluster) -> dict[str, int]:
    counters = cluster.metrics.snapshot()["counters"]
    return {k: v for k, v in sorted(counters.items()) if k.startswith("fault.")}


def check_invariants(cluster, payload: bytes,
                     reference_payload: Optional[bytes] = None) -> list[str]:
    """Recovery-invariant violations on a quiesced cluster (empty=pass)."""
    violations: list[str] = []

    if reference_payload is not None and payload != reference_payload:
        violations.append(
            f"payload corruption: faulted run differs from fault-free "
            f"reference ({len(payload)} vs {len(reference_payload)} bytes)"
        )

    for b in cluster.backends:
        r = b.task_id
        if len(b.posted):
            violations.append(f"rank {r}: {len(b.posted)} posted receives never matched")
        if len(b.early):
            violations.append(f"rank {r}: {len(b.early)} early arrivals never claimed")
        if b.pending_sends:
            violations.append(f"rank {r}: {len(b.pending_sends)} sends stuck pending")
        if b.bound_recvs:
            violations.append(f"rank {r}: {len(b.bound_recvs)} recvs stuck bound")
        if getattr(b, "_attach_outstanding", None):
            violations.append(f"rank {r}: attach credits outstanding")
        eng = b._rma_engine
        if eng is not None:
            if eng._windows:
                violations.append(
                    f"rank {r}: {len(eng._windows)} RMA windows never freed")
            if getattr(eng, "_pending", None):
                violations.append(
                    f"rank {r}: {len(eng._pending)} RMA replies never "
                    f"delivered")

    for i, lapi in enumerate(cluster.lapis):
        if lapi is None:
            continue
        if lapi._tx_outstanding:
            violations.append(f"node {i}: {lapi._tx_outstanding} LAPI sends unwindowed")
        stuck = sum(f.window.in_flight for f in lapi._flow_tx.values())
        if stuck:
            violations.append(f"node {i}: {stuck} packets stuck in SenderWindow")
        if lapi._assemblies:
            violations.append(f"node {i}: {len(lapi._assemblies)} reassemblies unfinished")
        gaps = sum(f.ledger.gap_count for f in lapi._flow_rx.values())
        if gaps:
            violations.append(f"node {i}: ReceiverLedger holding {gaps} gaps")

    for i, pipe in enumerate(cluster.pipes):
        if pipe is None:
            continue
        stuck = sum(f.window.in_flight for f in pipe._tx.values())
        if stuck:
            violations.append(f"node {i}: {stuck} packets stuck in pipe SenderWindow")
        stashed = sum(len(f.stash) for f in pipe._rx.values())
        if stashed:
            violations.append(f"node {i}: {stashed} pipe packets stashed out of order")
        gaps = sum(f.ledger.gap_count for f in pipe._rx.values())
        if gaps:
            violations.append(f"node {i}: pipe ReceiverLedger holding {gaps} gaps")

    for i, a in enumerate(cluster.adapters):
        if a.rx_pending:
            violations.append(f"node {i}: {a.rx_pending} packets undrained in host FIFO")

    retrans = sum(s.retransmissions for s in cluster.node_stats)
    fault = _fault_counters(cluster)
    injected = (
        fault.get("fault.injected_drops", 0)
        + fault.get("fault.duplicates", 0)
        + fault.get("fault.fifo_squeezes", 0)
        + fault.get("fault.dispatcher_stalls", 0)
        + sum(s.packets_dropped for s in cluster.node_stats)
    )
    bound = 16 + 6 * injected
    if retrans > bound:
        violations.append(
            f"retransmissions unbounded: {retrans} > {bound} "
            f"(injected damage {injected})"
        )

    return violations


# --------------------------------------------------------------- running
@dataclass
class CampaignResult:
    """Outcome of one (plan, workload) campaign cell."""

    plan: str
    workload: str
    stack: str
    seed: int
    ok: bool
    violations: list[str] = field(default_factory=list)
    elapsed_us: float = 0.0
    quiesce_us: Optional[float] = None
    retransmissions: int = 0
    packets_dropped: int = 0
    fault_counters: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "plan": self.plan,
            "workload": self.workload,
            "stack": self.stack,
            "seed": self.seed,
            "ok": self.ok,
            "violations": list(self.violations),
            "elapsed_us": self.elapsed_us,
            "quiesce_us": self.quiesce_us,
            "retransmissions": self.retransmissions,
            "packets_dropped": self.packets_dropped,
            "fault_counters": dict(self.fault_counters),
        }


def run_workload(
    workload: str,
    plan: Optional[FaultPlan] = None,
    stack: str = "lapi-enhanced",
    seed: int = 0,
    params=None,
    trace: bool = False,
):
    """Build a cluster, run one workload under ``plan``; returns
    ``(cluster, result, payload)``.  Deadlocks propagate."""
    from repro.cluster import SPCluster

    runner, num_nodes = WORKLOADS[workload]
    cluster = SPCluster(num_nodes, stack=stack, params=params, seed=seed,
                        trace=trace, fault_plan=plan)
    result = runner(cluster)
    return cluster, result, _payload(result)


def _reference_payload(workload: str, stack: str, seed: int, params) -> bytes:
    """Fault-free reference payload (module-level: a parallel-runner cell)."""
    _, _, payload = run_workload(workload, plan=None, stack=stack, seed=seed,
                                 params=params)
    return payload


def run_campaign(
    plans=None,
    workloads=("pingpong", "streaming", "rma", "nas-cg"),
    stack: str = "lapi-enhanced",
    seed: int = 0,
    params=None,
    trace: bool = False,
    jobs: Optional[int] = None,
) -> list[CampaignResult]:
    """The full matrix: every plan against every workload.

    ``jobs`` fans the independent cells across worker processes via
    :mod:`repro.bench.parallel`; every cell derives its randomness from
    its own (plan, workload, seed) arguments, so the result list is
    byte-identical to a serial run at any worker count.
    """
    from repro.bench.parallel import Cell, run_cells

    if plans is None:
        plans = [builtin_plan(n) for n in
                 ("loss-burst", "reorder-storm", "fifo-squeeze")]
    ref_payloads = run_cells(
        [Cell(_reference_payload, w, stack, seed, params) for w in workloads],
        jobs=jobs)
    references = dict(zip(workloads, ref_payloads))
    return run_cells(
        [Cell(_run_cell, plan, workload, references[workload], stack, seed,
              params, trace)
         for plan in plans for workload in workloads],
        jobs=jobs)


def _run_cell(plan: FaultPlan, workload: str, reference_payload: bytes,
              stack: str, seed: int, params, trace: bool) -> CampaignResult:
    from repro.cluster import DeadlockError

    out = CampaignResult(plan=plan.name, workload=workload, stack=stack,
                         seed=seed, ok=False)
    try:
        cluster, result, payload = run_workload(
            workload, plan=plan, stack=stack, seed=seed, params=params,
            trace=trace)
    except DeadlockError as exc:
        out.violations = [f"stuck: {exc}"]
        return out
    out.elapsed_us = result.elapsed_us
    out.quiesce_us = quiesce(cluster)
    if out.quiesce_us is None:
        out.violations.append("stuck: transport failed to quiesce in budget")
    out.violations.extend(check_invariants(cluster, payload, reference_payload))
    out.retransmissions = sum(s.retransmissions for s in cluster.node_stats)
    out.packets_dropped = (
        sum(s.packets_dropped for s in cluster.node_stats) + cluster.fabric.dropped
    )
    out.fault_counters = _fault_counters(cluster)
    out.ok = not out.violations
    return out


def run_soak(stack: str = "lapi-enhanced", seed: int = 0,
             jobs: Optional[int] = None) -> list[CampaignResult]:
    """The deterministic CI chaos soak (see :data:`SOAK_MATRIX`).

    ``jobs`` parallelises the cells; results are identical at any
    worker count (see :func:`run_campaign`).
    """
    from repro.bench.parallel import Cell, run_cells

    workloads = []
    for _plan, workload in SOAK_MATRIX:
        if workload not in workloads:
            workloads.append(workload)
    ref_payloads = run_cells(
        [Cell(_reference_payload, w, stack, seed, None) for w in workloads],
        jobs=jobs)
    references = dict(zip(workloads, ref_payloads))
    return run_cells(
        [Cell(_run_cell, builtin_plan(plan_name), workload,
              references[workload], stack, seed, None, False)
         for plan_name, workload in SOAK_MATRIX],
        jobs=jobs)


# ------------------------------------------------------------------- CLI
def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Run fault campaigns and check recovery invariants.")
    parser.add_argument("--soak", action="store_true",
                        help="the CI chaos soak (3 plans x pingpong + NAS)")
    parser.add_argument("--plan", action="append", default=None,
                        help="built-in plan name (repeatable)")
    parser.add_argument("--workload", action="append", default=None,
                        choices=sorted(WORKLOADS),
                        help="workload name (repeatable)")
    parser.add_argument("--stack", default="lapi-enhanced")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel campaign workers (0 = one per CPU); "
                             "results are identical at any worker count")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write results as JSON")
    args = parser.parse_args(argv)

    if args.soak:
        results = run_soak(stack=args.stack, seed=args.seed, jobs=args.jobs)
    else:
        plans = ([builtin_plan(n) for n in args.plan] if args.plan else None)
        workloads = tuple(args.workload) if args.workload else (
            "pingpong", "streaming", "rma", "nas-cg")
        results = run_campaign(plans=plans, workloads=workloads,
                               stack=args.stack, seed=args.seed,
                               jobs=args.jobs)

    width = max(len(r.plan) for r in results)
    for r in results:
        drops = r.fault_counters.get("fault.injected_drops", 0)
        status = "ok" if r.ok else "FAIL"
        print(f"{status:4s} {r.plan:{width}s} x {r.workload:10s} "
              f"elapsed={r.elapsed_us:10.1f}us quiesce={r.quiesce_us or 0:8.1f}us "
              f"retrans={r.retransmissions:3d} drops={drops:3d}")
        for v in r.violations:
            print(f"      - {v}")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump([r.to_dict() for r in results], fh, indent=2)
        print(f"wrote {args.json}")
    failed = [r for r in results if not r.ok]
    print(f"{len(results) - len(failed)}/{len(results)} campaign cells passed")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
