"""``python -m repro.faults`` — the campaign CLI."""

from repro.faults.campaign import main

if __name__ == "__main__":
    raise SystemExit(main())
