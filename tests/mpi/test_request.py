"""Request/Status lifecycle unit tests."""

import pytest

from repro.mpi.request import Request, Status
from repro.sim import Environment


def test_status_get_count():
    s = Status(source=1, tag=2, count=24)
    assert s.get_count() == 24
    assert s.get_count(8) == 3
    with pytest.raises(ValueError):
        s.get_count(0)


def test_request_completion_sets_status_and_fires_waiters():
    env = Environment()
    req = Request(env, "recv")
    fired = []

    def waiter():
        yield req.changed()
        fired.append(env.now)

    env.process(waiter())
    req.complete(source=3, tag=9, count=100)
    env.run()
    assert req.done
    assert (req.status.source, req.status.tag, req.status.count) == (3, 9, 100)
    assert fired == [0.0]


def test_double_complete_rejected():
    env = Environment()
    req = Request(env, "send")
    req.complete()
    with pytest.raises(RuntimeError, match="twice"):
        req.complete()


def test_changed_after_done_fires_immediately():
    env = Environment()
    req = Request(env, "send")
    req.complete()
    ev = req.changed()
    assert ev.triggered


def test_finalizer_flow():
    env = Environment()
    req = Request(env, "recv")
    ran = []

    def fin(thread):
        ran.append(thread)
        req.complete(count=5)
        yield env.timeout(0)

    req.set_finalizer(fin)
    assert req.needs_finalize
    assert not req.done

    def proc():
        yield from req.run_finalizer("user")

    env.process(proc())
    env.run()
    assert ran == ["user"]
    assert req.done
    assert not req.needs_finalize


def test_finalizer_must_complete_request():
    env = Environment()
    req = Request(env, "recv")

    def bad_fin(thread):
        yield env.timeout(0)

    req.set_finalizer(bad_fin)

    def proc():
        yield from req.run_finalizer("user")

    env.process(proc())
    with pytest.raises(RuntimeError, match="did not complete"):
        env.run()
