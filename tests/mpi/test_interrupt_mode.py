"""MPI in interrupt mode: progress without the receiver polling."""

import numpy as np
import pytest

from repro import MachineParams, SPCluster

MPI_STACKS = ("native", "lapi-base", "lapi-counters", "lapi-enhanced")


def spin_program(marker=7, size_bytes=64):
    def program(comm, rank, size):
        if rank == 0:
            yield from comm.send(bytes([marker]) * size_bytes, dest=1)
            return None
        buf = np.zeros(size_bytes, dtype=np.uint8)
        yield from comm.irecv(buf, source=0)
        # no MPI calls: only interrupts can complete this
        while buf[-1] != marker:
            yield from comm.backend.cpu.execute(
                "user", comm.backend.params.poll_check_us
            )
        yield comm.env.timeout(2000.0)  # let handlers retire
        return bytes(buf)

    return program


@pytest.mark.parametrize("stack", MPI_STACKS)
def test_interrupts_complete_receive_without_polling(stack):
    cl = SPCluster(2, stack=stack, interrupt_mode=True)
    res = cl.run(spin_program())
    assert res.values[1] == bytes([7]) * 64
    assert res.stats.interrupts >= 1


def test_without_interrupts_spin_never_completes():
    """Sanity: in polling mode the same program deadlocks (the spin loop
    never drives the dispatcher)."""
    from repro.sim import SimulationError

    cl = SPCluster(2, stack="lapi-enhanced", interrupt_mode=False)

    def program(comm, rank, size):
        if rank == 0:
            yield from comm.send(b"\x07" * 64, dest=1)
            return None
        buf = np.zeros(64, dtype=np.uint8)
        yield from comm.irecv(buf, source=0)
        # bounded spin so the test terminates: data must NOT arrive
        for _ in range(200):
            yield from comm.backend.cpu.execute("user", 1.0)
        return int(buf[-1])

    res = cl.run(program)
    assert res.values[1] == 0, "no interrupts, no progress — data cannot land"


def test_native_takes_hysteresis_dwells_lapi_does_not():
    native = SPCluster(2, stack="native", interrupt_mode=True).run(spin_program())
    lapi = SPCluster(2, stack="lapi-enhanced", interrupt_mode=True).run(spin_program())
    assert native.stats.hysteresis_dwells >= 1
    assert lapi.stats.hysteresis_dwells == 0


def test_interrupt_latency_native_worse_than_lapi():
    """The hysteresis dwell delays the receiver's *reply* (it holds the
    CPU), so the penalty shows in the steady-state ping-pong, not in a
    one-shot receive."""
    from repro.bench.harness import interrupt_pingpong_us

    native = interrupt_pingpong_us("native", 64, reps=6)
    lapi = interrupt_pingpong_us("lapi-enhanced", 64, reps=6)
    assert native > 1.5 * lapi


def test_rendezvous_works_in_interrupt_mode():
    cl = SPCluster(2, stack="lapi-enhanced", interrupt_mode=True)
    payload = np.random.default_rng(4).integers(0, 256, 32768, dtype=np.uint8)

    def program(comm, rank, size):
        if rank == 0:
            yield from comm.send(payload, dest=1)
            return None
        buf = np.zeros(32768, dtype=np.uint8)
        yield from comm.recv(buf, source=0)
        return bool(np.array_equal(buf, payload))

    assert cl.run(program).values[1]
