"""MPI-3 RMA conformance sweep.

Every data-movement call × every synchronization mode × all four MPI
stacks × both progress modes, byte-identity-checked against expected
contents (and, for the halo workload, against an actual two-sided
reference execution).  The raw-lapi stack has no Communicator; its
window-buffer fast path is covered in ``tests/lapi``.
"""

import numpy as np
import pytest

from repro import MachineParams, SPCluster
from repro.mpi import RmaError, Vector, WindowBuffer
from repro.mpi.derived import Indexed

MPI_STACKS = ("native", "lapi-base", "lapi-counters", "lapi-enhanced")
MODES = ("polling", "interrupt")


def cluster(n=2, stack="lapi-enhanced", mode="polling", **overrides):
    params = MachineParams(**overrides) if overrides else None
    return SPCluster(n, stack=stack, params=params,
                     interrupt_mode=(mode == "interrupt"))


# ======================================================================
#                    fence mode: every data-movement call
# ======================================================================
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("stack", MPI_STACKS)
def test_fence_put_get_all_ranks(stack, mode):
    """Ring halo: put to right neighbour, get from left, 3 ranks."""
    n = 3

    def program(comm, rank, size):
        win = yield from comm.win_create(48)
        for i in range(48):
            win.mem[i] = rank + 1
        yield from win.fence()
        right, left = (rank + 1) % size, (rank - 1) % size
        yield from win.put(bytes([0xA0 + rank]) * 16, right, 0)
        yield from win.fence()
        got = bytearray(16)
        yield from win.get(got, left, 16)
        yield from win.fence()
        yield from win.free()
        return bytes(win.mem), bytes(got)

    res = cluster(n, stack, mode).run(program)
    for rank in range(n):
        mem, got = res.values[rank]
        left = (rank - 1) % n
        assert mem == bytes([0xA0 + left]) * 16 + bytes([rank + 1]) * 32
        assert got == bytes([left + 1]) * 16


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("stack", MPI_STACKS)
def test_fence_accumulate_and_get_accumulate(stack, mode):
    n = 3

    def program(comm, rank, size):
        win = yield from comm.win_create(32)
        yield from win.fence()
        contrib = np.full(4, rank + 1, dtype=np.int64)
        yield from win.accumulate(contrib, 0, 0, op="sum", dtype="<i8")
        yield from win.fence()
        old = np.zeros(4, dtype=np.int64)
        if rank == 0:
            # epoch after the sums: fetch-then-add in one atomic op
            yield from win.get_accumulate(
                np.full(4, 100, dtype=np.int64), old, 0, 0,
                op="sum", dtype="<i8")
        yield from win.fence()
        yield from win.free()
        return np.frombuffer(bytes(win.mem), dtype=np.int64).tolist(), old.tolist()

    res = cluster(n, stack, mode).run(program)
    total = sum(r + 1 for r in range(n))  # 6
    mem0, old0 = res.values[0]
    assert old0 == [total] * 4
    assert mem0[:4] == [total + 100] * 4


@pytest.mark.parametrize("stack", MPI_STACKS)
def test_fence_fetch_and_op_and_cas(stack):
    n = 3

    def program(comm, rank, size):
        win = yield from comm.win_create(16)
        yield from win.fence()
        old = yield from win.fetch_and_op(1 << rank, 0, 0, op="bor")
        yield from win.fence()
        winner = None
        if rank != 0:
            # both contenders CAS the second word from 0; exactly one wins
            prev = yield from win.compare_and_swap(rank, 0, 0, 8)
            winner = prev == 0
        yield from win.fence()
        yield from win.free()
        return old, winner, win.mem.read_word(0), win.mem.read_word(8)

    res = cluster(n, stack).run(program)
    assert res.values[0][2] == 0b111  # all three bits ORed in
    winners = [res.values[r][1] for r in range(1, n)]
    assert sorted(winners) == [False, True]
    assert res.values[0][3] in (1, 2)  # the winning rank's value


@pytest.mark.parametrize("stack", MPI_STACKS)
def test_rput_rget_requests(stack):
    def program(comm, rank, size):
        win = yield from comm.win_create(32)
        for i in range(32):
            win.mem[i] = 10 * (rank + 1)
        yield from win.fence()
        peer = 1 - rank
        sreq = yield from win.rput(bytes([0xCC]) * 8, peer, 0)
        got = bytearray(8)
        rreq = yield from win.rget(got, peer, 16)
        yield from comm.wait(sreq)
        yield from comm.wait(rreq)
        assert sreq.done and rreq.done
        yield from win.fence()
        yield from win.free()
        return bytes(got), bytes(win.mem[:8])

    res = cluster(2, stack).run(program)
    for rank in range(2):
        got, head = res.values[rank]
        assert got == bytes([10 * (2 - rank)]) * 8
        assert head == bytes([0xCC]) * 8


# ======================================================================
#                      strided (derived datatype) RMA
# ======================================================================
@pytest.mark.parametrize("stack", MPI_STACKS)
@pytest.mark.parametrize("dt_name", ("vector", "indexed"))
def test_strided_put_get_byte_identity(stack, dt_name):
    if dt_name == "vector":
        dt = Vector(count=4, blocklength=2, stride=4)  # 8 of 16 bytes
    else:
        dt = Indexed(blocklengths=(3, 1, 2), displacements=(0, 5, 9))

    def src_of(rank):
        # extent-shaped typed buffer: the datatype gathers the strided
        # slices out of this
        return bytes((0x10 * (rank + 1) + i) % 256 for i in range(dt.extent))

    def program(comm, rank, size):
        win = yield from comm.win_create(64)
        yield from win.fence()
        peer = 1 - rank
        yield from win.put(src_of(rank), peer, 0, datatype=dt, count=1)
        yield from win.fence()
        back = bytearray(dt.extent)
        yield from win.get(back, peer, 0, datatype=dt, count=1)
        yield from win.fence()
        yield from win.free()
        return bytes(win.mem[: dt.extent]), bytes(back)

    res = cluster(2, stack).run(program)
    for rank in range(2):
        mem, back = res.values[rank]
        peer = 1 - rank
        # reference: copy only the flat ranges, leave the gaps zero
        expect_mem = bytearray(dt.extent)
        expect_back = bytearray(dt.extent)
        for off, ln in dt._flat_ranges(1):
            expect_mem[off : off + ln] = src_of(peer)[off : off + ln]
            expect_back[off : off + ln] = src_of(rank)[off : off + ln]
        assert mem == bytes(expect_mem)
        # the round trip gathers my own strided bytes back
        assert back == bytes(expect_back)


# ======================================================================
#                        post/start/complete/wait
# ======================================================================
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("stack", MPI_STACKS)
def test_pscw_put_get_accumulate(stack, mode):
    n = 3

    def program(comm, rank, size):
        win = yield from comm.win_create(64)
        for i in range(64):
            win.mem[i] = rank
        right, left = (rank + 1) % size, (rank - 1) % size
        # expose to left (it writes to me), access right
        yield from win.post([left])
        yield from win.start([right])
        yield from win.put(bytes([0xE0 + rank]) * 8, right, 0)
        yield from win.accumulate(np.asarray([rank + 1], dtype=np.int64), right,
                                  8, op="sum", dtype="<i8")
        got = bytearray(4)
        yield from win.get(got, right, 32)
        yield from win.complete()
        yield from win.wait()
        yield from comm.barrier()
        yield from win.free()
        return bytes(win.mem[:16]), bytes(got)

    res = cluster(n, stack, mode).run(program)
    for rank in range(n):
        mem, got = res.values[rank]
        left, right = (rank - 1) % n, (rank + 1) % n
        assert mem[:8] == bytes([0xE0 + left]) * 8
        fill_word = int.from_bytes(bytes([rank]) * 8, "little")
        assert int.from_bytes(mem[8:16], "little") == fill_word + (left + 1)
        assert got == bytes([right]) * 4


@pytest.mark.parametrize("stack", MPI_STACKS)
def test_pscw_self_epoch(stack):
    """post/start to self must not deadlock (no transport loop-back)."""

    def program(comm, rank, size):
        win = yield from comm.win_create(8)
        yield from win.post([rank])
        yield from win.start([rank])
        yield from win.put(b"\x77" * 8, rank, 0)
        yield from win.complete()
        yield from win.wait()
        yield from comm.barrier()
        yield from win.free()
        return bytes(win.mem)

    res = cluster(2, stack).run(program)
    assert all(v == b"\x77" * 8 for v in res.values)


# ======================================================================
#                            lock / unlock
# ======================================================================
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("stack", MPI_STACKS)
def test_exclusive_lock_read_modify_write(stack, mode):
    """The canonical passive-target race: get+put under an exclusive
    lock from every rank; the total survives only if locks exclude."""
    n = 3
    rounds = 4

    def program(comm, rank, size):
        win = yield from comm.win_create(8)
        yield from comm.barrier()
        for _ in range(rounds):
            yield from win.lock(0, exclusive=True)
            cur = bytearray(8)
            yield from win.get(cur, 0, 0)
            yield from win.flush(0)  # MPI_Win_flush: get landed, readable
            val = int.from_bytes(cur, "little") + 1
            yield from win.put(val.to_bytes(8, "little"), 0, 0)
            yield from win.unlock(0)
        yield from comm.barrier()
        yield from win.free()
        return win.mem.read_word(0)

    res = cluster(n, stack, mode).run(program)
    assert res.values[0] == n * rounds


@pytest.mark.parametrize("stack", MPI_STACKS)
def test_shared_lock_concurrent_accumulate(stack):
    """Shared locks admit concurrent accumulates (atomic per op)."""
    n = 3

    def program(comm, rank, size):
        win = yield from comm.win_create(8)
        yield from comm.barrier()
        yield from win.lock(0, exclusive=False)
        for _ in range(5):
            yield from win.accumulate(
                np.asarray([rank + 1], dtype=np.int64), 0, 0,
                op="sum", dtype="<i8")
        yield from win.unlock(0)
        yield from comm.barrier()
        yield from win.free()
        return win.mem.read_word(0)

    res = cluster(n, stack).run(program)
    assert res.values[0] == 5 * sum(r + 1 for r in range(n))


@pytest.mark.parametrize("stack", MPI_STACKS)
def test_lock_self_and_fairness(stack):
    """Locking yourself works; an exclusive waiter is not starved."""

    def program(comm, rank, size):
        win = yield from comm.win_create(8)
        yield from comm.barrier()
        if rank == 0:
            yield from win.lock(0, exclusive=True)
            yield from win.put((7).to_bytes(8, "little"), 0, 0)
            yield from win.unlock(0)
        else:
            yield from win.lock(0, exclusive=True)
            old = yield from win.fetch_and_op(1, 0, 0, op="sum")
            yield from win.unlock(0)
        yield from comm.barrier()
        yield from win.free()
        return win.mem.read_word(0) if rank == 0 else None

    res = cluster(2, stack).run(program)
    assert res.values[0] == 8


# ======================================================================
#                    two-sided reference byte-identity
# ======================================================================
@pytest.mark.parametrize("stack", MPI_STACKS)
def test_rma_matches_two_sided_reference(stack):
    """The same halo exchange via RMA and via sendrecv must leave every
    rank's buffer byte-identical."""
    n = 3
    nbytes = 24

    def payload(rank):
        return bytes((rank * 37 + i) % 256 for i in range(nbytes))

    def rma_prog(comm, rank, size):
        win = yield from comm.win_create(nbytes)
        yield from win.fence()
        yield from win.put(payload(rank), (rank + 1) % size, 0)
        yield from win.fence()
        yield from win.free()
        return bytes(win.mem)

    def twosided_prog(comm, rank, size):
        buf = bytearray(nbytes)
        yield from comm.sendrecv(payload(rank), (rank + 1) % size,
                                 buf, (rank - 1) % size, sendtag=9, recvtag=9)
        return bytes(buf)

    rma_res = cluster(n, stack).run(rma_prog)
    ref_res = cluster(n, stack).run(twosided_prog)
    for rank in range(n):
        assert rma_res.values[rank] == ref_res.values[rank]


# ======================================================================
#                          errors and lifecycle
# ======================================================================
def test_window_errors():
    def program(comm, rank, size):
        win = yield from comm.win_create(16)
        yield from win.fence()
        try:
            yield from win.accumulate(b"\x01", 1 - rank, 0, op="bogus")
            raise AssertionError("bogus op accepted")
        except RmaError:
            pass
        try:
            yield from win.unlock(1 - rank)
            raise AssertionError("unlock without lock accepted")
        except RmaError:
            pass
        yield from win.free()
        try:
            yield from win.put(b"\x01", 1 - rank, 0)
            raise AssertionError("put on freed window accepted")
        except RmaError:
            pass
        return True

    for stack in MPI_STACKS:
        res = cluster(2, stack).run(program)
        assert all(res.values)


def test_win_create_from_existing_buffer():
    def program(comm, rank, size):
        seed = WindowBuffer(b"\x01\x02\x03\x04" * 4)
        win = yield from comm.win_create(seed)
        assert win.mem is seed
        yield from win.fence()
        got = bytearray(4)
        yield from win.get(got, 1 - rank, 0)
        yield from win.fence()
        yield from win.free()
        return bytes(got)

    res = cluster(2, "lapi-enhanced").run(program)
    assert all(v == b"\x01\x02\x03\x04" for v in res.values)


def test_rma_metrics_and_trace(stack="lapi-enhanced"):
    from repro.obs import rma_op_phases, rma_summary

    def program(comm, rank, size):
        win = yield from comm.win_create(16)
        yield from win.fence()
        yield from win.put(b"\x11" * 8, 1 - rank, 0)
        yield from win.fence()
        yield from win.free()

    cl = cluster(2, stack)
    cl.trace = True
    # SPCluster wires the tracer at construction; rebuild with trace on
    cl = SPCluster(2, stack=stack, trace=True)
    res = cl.run(program)
    assert res.metrics["aggregate"]["counters"]["rma.put"] == 2
    assert res.metrics["aggregate"]["counters"]["rma.windows"] == 2
    summary = rma_summary(cl.tracer)
    assert summary["ops"]["put"] == 2
    assert summary["unpaired_fences"] == 0
    # fences: 2 per rank (explicit) + 1 inside free
    assert all(len(v) == 3 for v in summary["fences"].values())
    phases = rma_op_phases(cl.tracer)
    assert len(phases) == 2
    for ph in phases:
        assert ph["latency_us"] > 0
        assert ph["bytes"] == 8
