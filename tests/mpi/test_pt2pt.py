"""Point-to-point MPI semantics across all four stacks."""

import numpy as np
import pytest

from repro import ANY_SOURCE, ANY_TAG, MachineParams, SPCluster

MPI_STACKS = ("native", "lapi-base", "lapi-counters", "lapi-enhanced")


def cluster(n=2, stack="lapi-enhanced", **overrides):
    params = MachineParams(**overrides) if overrides else None
    return SPCluster(n, stack=stack, params=params)


@pytest.mark.parametrize("stack", MPI_STACKS)
def test_blocking_send_recv_small(stack):
    cl = cluster(stack=stack)
    payload = np.arange(100, dtype=np.uint8)

    def program(comm, rank, size):
        if rank == 0:
            yield from comm.send(payload, dest=1, tag=5)
            return None
        buf = np.zeros(100, dtype=np.uint8)
        status = yield from comm.recv(buf, source=0, tag=5)
        return (bytes(buf), status.source, status.tag, status.count)

    res = cl.run(program)
    data, source, tag, count = res.values[1]
    assert data == payload.tobytes()
    assert (source, tag, count) == (0, 5, 100)


@pytest.mark.parametrize("stack", MPI_STACKS)
def test_large_message_rendezvous(stack):
    cl = cluster(stack=stack)
    n = 64 * 1024  # >> eager limit
    payload = np.random.default_rng(1).integers(0, 256, n, dtype=np.uint8)

    def program(comm, rank, size):
        if rank == 0:
            yield from comm.send(payload, dest=1)
            return None
        buf = np.zeros(n, dtype=np.uint8)
        yield from comm.recv(buf, source=0)
        return bytes(buf)

    res = cl.run(program)
    assert res.values[1] == payload.tobytes()
    assert res.stats.rendezvous_started == 1


@pytest.mark.parametrize("stack", MPI_STACKS)
def test_early_arrival_then_recv(stack):
    """Send arrives before the receive is posted."""
    cl = cluster(stack=stack)
    payload = b"early bird" * 10

    def program(comm, rank, size):
        if rank == 0:
            yield from comm.send(payload, dest=1, tag=1)
            return None
        # drive progress *without* posting the receive: the message must
        # land in the early-arrival buffer (probe spins the dispatcher)
        yield from comm.probe(source=0, tag=1)
        buf = bytearray(len(payload))
        yield from comm.recv(buf, source=0, tag=1)
        return bytes(buf)

    res = cl.run(program)
    assert res.values[1] == payload
    assert res.stats.early_arrivals >= 1


@pytest.mark.parametrize("stack", MPI_STACKS)
def test_nonblocking_isend_irecv_wait(stack):
    cl = cluster(stack=stack)

    def program(comm, rank, size):
        me = np.full(64, rank, dtype=np.uint8)
        other = np.zeros(64, dtype=np.uint8)
        rreq = yield from comm.irecv(other, source=1 - rank)
        sreq = yield from comm.isend(me, dest=1 - rank)
        yield from comm.waitall([sreq, rreq])
        return int(other[0])

    res = cl.run(program)
    assert res.values == [1, 0]


@pytest.mark.parametrize("stack", MPI_STACKS)
def test_wildcard_source_and_tag(stack):
    cl = cluster(n=3, stack=stack)

    def program(comm, rank, size):
        if rank == 0:
            got = []
            buf = bytearray(8)
            for _ in range(2):
                status = yield from comm.recv(buf, source=ANY_SOURCE, tag=ANY_TAG)
                got.append((status.source, status.tag, bytes(buf[: status.count])))
            return sorted(got)
        yield comm.env.timeout(rank * 100.0)
        yield from comm.send(bytes([rank]) * 4, dest=0, tag=10 + rank)
        return None

    res = cl.run(program)
    assert res.values[0] == [
        (1, 11, b"\x01\x01\x01\x01"),
        (2, 12, b"\x02\x02\x02\x02"),
    ]


@pytest.mark.parametrize("stack", MPI_STACKS)
def test_message_ordering_same_pair(stack):
    """Non-overtaking: same (src, dst, tag) messages match in send order."""
    cl = cluster(stack=stack)

    def program(comm, rank, size):
        n = 8
        if rank == 0:
            for i in range(n):
                yield from comm.send(np.full(16, i, dtype=np.uint8), dest=1, tag=3)
            return None
        seen = []
        buf = np.zeros(16, dtype=np.uint8)
        for _ in range(n):
            yield from comm.recv(buf, source=0, tag=3)
            seen.append(int(buf[0]))
        return seen

    res = cl.run(program)
    assert res.values[1] == list(range(8))


@pytest.mark.parametrize("stack", MPI_STACKS)
def test_tag_selectivity(stack):
    """A receive for tag B skips an earlier message with tag A."""
    cl = cluster(stack=stack)

    def program(comm, rank, size):
        if rank == 0:
            yield from comm.send(b"AAAA", dest=1, tag=1)
            yield from comm.send(b"BBBB", dest=1, tag=2)
            return None
        yield comm.env.timeout(5000.0)  # both messages are early arrivals
        buf = bytearray(4)
        yield from comm.recv(buf, source=0, tag=2)
        first = bytes(buf)
        yield from comm.recv(buf, source=0, tag=1)
        return (first, bytes(buf))

    res = cl.run(program)
    assert res.values[1] == (b"BBBB", b"AAAA")


@pytest.mark.parametrize("stack", MPI_STACKS)
def test_ssend_synchronous_semantics(stack):
    """Ssend cannot complete before the matching receive is posted."""
    cl = cluster(stack=stack)
    post_time = 20000.0

    def program(comm, rank, size):
        if rank == 0:
            yield from comm.ssend(b"sync", dest=1)
            return comm.env.now
        yield comm.env.timeout(post_time)
        buf = bytearray(4)
        yield from comm.recv(buf, source=0)
        return None

    res = cl.run(program)
    assert res.values[0] >= post_time


@pytest.mark.parametrize("stack", MPI_STACKS)
def test_rsend_with_posted_receive(stack):
    cl = cluster(stack=stack)

    def program(comm, rank, size):
        if rank == 1:
            buf = bytearray(5)
            req = yield from comm.irecv(buf, source=0)
            # make sure the receive is posted well before the rsend
            yield from comm.barrier()
            yield from comm.wait(req)
            return bytes(buf)
        yield from comm.barrier()
        yield from comm.rsend(b"ready", dest=1)
        return None

    res = cl.run(program)
    assert res.values[1] == b"ready"


@pytest.mark.parametrize("stack", MPI_STACKS)
def test_bsend_buffered_mode(stack):
    cl = cluster(stack=stack)

    def program(comm, rank, size):
        if rank == 0:
            comm.buffer_attach(64 * 1024)
            t0 = comm.env.now
            yield from comm.bsend(b"x" * 1000, dest=1)
            local_done = comm.env.now
            # receiver posts very late; bsend must already be done
            yield comm.env.timeout(50000.0)
            return local_done - t0
        yield comm.env.timeout(30000.0)
        buf = bytearray(1000)
        yield from comm.recv(buf, source=0)
        assert bytes(buf) == b"x" * 1000
        return None

    res = cl.run(program)
    assert res.values[0] < 10000.0, "bsend should complete locally"


@pytest.mark.parametrize("stack", MPI_STACKS)
def test_sendrecv_exchange(stack):
    cl = cluster(stack=stack)

    def program(comm, rank, size):
        mine = np.full(32, rank + 10, dtype=np.uint8)
        theirs = np.zeros(32, dtype=np.uint8)
        yield from comm.sendrecv(mine, 1 - rank, theirs, 1 - rank)
        return int(theirs[0])

    res = cl.run(program)
    assert res.values == [11, 10]


@pytest.mark.parametrize("stack", MPI_STACKS)
def test_zero_byte_message(stack):
    cl = cluster(stack=stack)

    def program(comm, rank, size):
        if rank == 0:
            yield from comm.send(b"", dest=1, tag=9)
            return None
        buf = bytearray(0)
        status = yield from comm.recv(buf, source=0, tag=9)
        return status.count

    res = cl.run(program)
    assert res.values[1] == 0


@pytest.mark.parametrize("stack", MPI_STACKS)
def test_test_polls_without_blocking(stack):
    cl = cluster(stack=stack)

    def program(comm, rank, size):
        if rank == 0:
            yield comm.env.timeout(2000.0)
            yield from comm.send(b"late", dest=1)
            return None
        buf = bytearray(4)
        req = yield from comm.irecv(buf, source=0)
        polls = 0
        while not (yield from comm.test(req)):
            polls += 1
            yield comm.env.timeout(100.0)
        return polls

    res = cl.run(program)
    assert res.values[1] > 3


@pytest.mark.parametrize("stack", MPI_STACKS)
def test_probe_and_iprobe(stack):
    cl = cluster(stack=stack)

    def program(comm, rank, size):
        if rank == 0:
            yield from comm.send(b"probe me", dest=1, tag=4)
            return None
        status = yield from comm.probe(source=0, tag=4)
        buf = bytearray(status.count)
        yield from comm.recv(buf, source=status.source, tag=status.tag)
        return bytes(buf)

    res = cl.run(program)
    assert res.values[1] == b"probe me"


def test_truncation_is_fatal():
    cl = cluster(stack="lapi-enhanced")

    def program(comm, rank, size):
        if rank == 0:
            yield from comm.send(b"way too long", dest=1)
            return None
        buf = bytearray(4)
        yield from comm.recv(buf, source=0)

    from repro.mpi.backends.base import MpiFatal

    with pytest.raises(MpiFatal, match="truncates"):
        cl.run(program)


def test_data_integrity_many_sizes():
    """Byte-exact delivery across the eager/rendezvous boundary."""
    for stack in MPI_STACKS:
        cl = cluster(stack=stack)
        sizes = [1, 3, 1023, 1024, 1025, 4096, 4097, 10000]
        rng = np.random.default_rng(2)
        payloads = [rng.integers(0, 256, s, dtype=np.uint8).tobytes() for s in sizes]

        def program(comm, rank, size, payloads=payloads, sizes=sizes):
            if rank == 0:
                for p in payloads:
                    yield from comm.send(p, dest=1)
                return None
            got = []
            for s in sizes:
                buf = bytearray(s)
                yield from comm.recv(buf, source=0)
                got.append(bytes(buf))
            return got

        res = cl.run(program)
        assert res.values[1] == payloads, f"corruption in stack {stack}"
