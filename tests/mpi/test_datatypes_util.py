"""Buffer utility tests: as_bytes / as_writable / nbytes_of."""

import numpy as np
import pytest

from repro.mpi.datatypes import as_bytes, as_writable, nbytes_of


def test_as_bytes_variants():
    assert as_bytes(b"abc") == b"abc"
    assert as_bytes(bytearray(b"abc")) == b"abc"
    assert as_bytes(memoryview(b"abc")) == b"abc"
    arr = np.array([1, 2], dtype=np.int32)
    assert as_bytes(arr) == arr.tobytes()


def test_as_bytes_noncontiguous_array():
    arr = np.arange(16, dtype=np.uint8).reshape(4, 4)
    col = arr[:, 1]
    assert as_bytes(col) == bytes([1, 5, 9, 13])


def test_as_bytes_scalar():
    assert len(as_bytes(np.float64(1.5))) == 8


def test_as_bytes_rejects_junk():
    with pytest.raises(TypeError):
        as_bytes({"not": "a buffer"})


def test_as_writable_numpy():
    arr = np.zeros(4, dtype=np.int32)
    view = as_writable(arr)
    assert len(view) == 16
    view[0:4] = b"\x07\x00\x00\x00"
    assert arr[0] == 7


def test_as_writable_rejects_readonly():
    with pytest.raises(TypeError):
        as_writable(b"immutable")
    with pytest.raises(ValueError):
        as_writable(memoryview(b"xx"))
    # writable inputs pass
    assert len(as_writable(bytearray(b"xx"))) == 2


def test_as_writable_rejects_noncontiguous():
    arr = np.arange(16, dtype=np.uint8).reshape(4, 4)
    with pytest.raises(ValueError):
        as_writable(arr[:, 1])


def test_nbytes_of():
    assert nbytes_of(b"abcd") == 4
    assert nbytes_of(np.zeros(3, dtype=np.float64)) == 24
    with pytest.raises(TypeError):
        nbytes_of(42)
