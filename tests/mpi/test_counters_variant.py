"""The Counters variant's machinery (§5.2): slot pools, completion flow."""

import numpy as np
import pytest

from repro import MachineParams, SPCluster


def test_pools_are_wired_symmetrically():
    cl = SPCluster(3, stack="lapi-counters")
    b0, b1, b2 = cl.backends
    pool = MachineParams().counter_pool_slots
    # every backend has a pool per peer and knows every peer's ids
    for me, b in enumerate(cl.backends):
        assert sorted(b._pools) == [x for x in range(3) if x != me]
        for peer in range(3):
            if peer == me:
                continue
            assert len(b._peer_slot_ids[peer]) == pool
            # sender-side ids match the receiver's actual slot objects
            peer_backend = cl.backends[peer]
            assert b._peer_slot_ids[peer] == [
                s.cid for s in peer_backend._pools[me]
            ]


def test_eager_completion_uses_no_handlers():
    cl = SPCluster(2, stack="lapi-counters")

    def program(comm, rank, size):
        if rank == 0:
            yield from comm.send(b"x" * 100, dest=1)
            return None
        buf = bytearray(100)
        yield from comm.recv(buf, source=0)
        return None

    res = cl.run(program)
    assert res.stats.cmpl_handlers_threaded == 0
    assert res.stats.cmpl_handlers_inline == 0
    assert res.stats.ctx_switches == 0


def test_rendezvous_still_uses_threaded_handlers():
    """§5.2: 'We could not employ the same strategy for the first phase
    of the Rendezvous protocol.'"""
    cl = SPCluster(2, stack="lapi-counters")

    def program(comm, rank, size):
        if rank == 0:
            yield from comm.send(b"x" * 32768, dest=1)
            return None
        buf = bytearray(32768)
        yield from comm.recv(buf, source=0)
        return None

    res = cl.run(program)
    assert res.stats.cmpl_handlers_threaded >= 1  # the rts-ack handler
    assert res.stats.ctx_switches >= 1


def test_small_pool_with_many_messages():
    """Slot reuse: far more messages than pool slots, strictly ordered
    per flow, must still complete each request exactly once."""
    cl = SPCluster(2, stack="lapi-counters",
                   params=MachineParams(counter_pool_slots=4))

    def program(comm, rank, size):
        n = 40
        if rank == 0:
            for i in range(n):
                yield from comm.send(np.full(64, i % 251, dtype=np.uint8), dest=1)
            return None
        got = []
        buf = np.zeros(64, dtype=np.uint8)
        for _ in range(n):
            yield from comm.recv(buf, source=0)
            got.append(int(buf[0]))
        return got

    res = cl.run(program)
    assert res.values[1] == [i % 251 for i in range(40)]


def test_counters_latency_between_base_and_enhanced_for_rendezvous():
    from repro.bench.harness import pingpong_us

    base = pingpong_us("lapi-base", 16384, reps=5)
    counters = pingpong_us("lapi-counters", 16384, reps=5)
    enhanced = pingpong_us("lapi-enhanced", 16384, reps=5)
    assert enhanced < counters < base


def test_counters_matches_enhanced_for_eager():
    from repro.bench.harness import pingpong_us

    counters = pingpong_us("lapi-counters", 256, reps=5)
    enhanced = pingpong_us("lapi-enhanced", 256, reps=5)
    assert abs(counters - enhanced) < 3.0
