"""Cartesian topology helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import SPCluster
from repro.mpi.topology import CartComm, dims_create


# ----------------------------------------------------------- dims_create


def test_dims_create_balanced():
    assert dims_create(4, 2) == [2, 2]
    assert dims_create(8, 3) == [2, 2, 2]
    assert dims_create(12, 2) == [4, 3]
    assert dims_create(6, 1) == [6]
    assert dims_create(7, 2) == [7, 1]


@given(st.integers(min_value=1, max_value=256), st.integers(min_value=1, max_value=4))
def test_dims_create_product_property(n, d):
    dims = dims_create(n, d)
    assert len(dims) == d
    assert int(np.prod(dims)) == n
    assert dims == sorted(dims, reverse=True)


def test_dims_create_rejects_bad_args():
    with pytest.raises(ValueError):
        dims_create(0, 2)
    with pytest.raises(ValueError):
        dims_create(4, 0)


# --------------------------------------------------------- pure geometry


class FakeComm:
    def __init__(self, rank, size):
        self.rank = rank
        self.size = size


def test_rank_coord_roundtrip():
    cart = CartComm(FakeComm(0, 12), [4, 3])
    for r in range(12):
        assert cart.cart_rank(cart.rank_to_coords(r)) == r


def test_row_major_layout():
    cart = CartComm(FakeComm(0, 6), [2, 3])
    assert cart.rank_to_coords(0) == (0, 0)
    assert cart.rank_to_coords(1) == (0, 1)
    assert cart.rank_to_coords(3) == (1, 0)
    assert cart.rank_to_coords(5) == (1, 2)


def test_shift_interior_and_edges():
    cart = CartComm(FakeComm(4, 9), [3, 3])  # centre of a 3x3
    assert cart.coords == (1, 1)
    src, dst = cart.cart_shift(0, 1)
    assert (src, dst) == (1, 7)
    corner = CartComm(FakeComm(0, 9), [3, 3])
    src, dst = corner.cart_shift(0, 1)
    assert src is None  # nothing above the top row
    assert dst == 3


def test_periodic_shift_wraps():
    cart = CartComm(FakeComm(0, 4), [4], periods=[True])
    src, dst = cart.cart_shift(0, 1)
    assert (src, dst) == (3, 1)


def test_grid_size_mismatch_rejected():
    with pytest.raises(ValueError, match="needs"):
        CartComm(FakeComm(0, 5), [2, 2])


def test_nonperiodic_out_of_range_rank_rejected():
    cart = CartComm(FakeComm(0, 4), [2, 2])
    with pytest.raises(ValueError):
        cart.cart_rank([2, 0])


# ------------------------------------------------------------- end-to-end


def test_ring_rotation_on_periodic_grid():
    cl = SPCluster(4)

    def program(comm, rank, size):
        cart = CartComm(comm, [4], periods=[True])
        mine = np.array([rank * 10], dtype=np.int64)
        got = np.zeros(1, dtype=np.int64)
        yield from cart.neighbour_sendrecv(0, 1, mine, got, tag=5)
        return int(got[0])

    res = cl.run(program)
    # everyone receives from the left neighbour (rank-1 mod 4)
    assert res.values == [30, 0, 10, 20]


def test_2d_halo_exchange():
    cl = SPCluster(4)

    def program(comm, rank, size):
        cart = CartComm(comm, [2, 2])
        r, c = cart.coords
        mine = np.array([rank], dtype=np.int64)
        from_up = np.full(1, -1, dtype=np.int64)
        yield from cart.neighbour_sendrecv(0, 1, mine, from_up, tag=7)
        return int(from_up[0])

    res = cl.run(program)
    # rows: ranks 2,3 receive from 0,1; top row receives nothing (-1)
    assert res.values == [-1, -1, 0, 1]


def test_cart_sub_splits_rows():
    cl = SPCluster(4)

    def program(comm, rank, size):
        cart = CartComm(comm, [2, 2])
        row = yield from cart.sub([False, True])  # keep columns: row comms
        out = np.zeros((row.size, 1), dtype=np.int64)
        yield from row.comm.allgather(np.array([rank], dtype=np.int64), out)
        return out.ravel().tolist()

    res = cl.run(program)
    assert res.values[0] == [0, 1]
    assert res.values[1] == [0, 1]
    assert res.values[2] == [2, 3]
    assert res.values[3] == [2, 3]
