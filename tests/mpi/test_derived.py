"""Derived datatypes (the paper's future work) — pack/unpack semantics
and end-to-end transfers of non-contiguous data."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import SPCluster
from repro.mpi.derived import BYTE, DOUBLE, Contiguous, Indexed, Primitive, Vector


# ---------------------------------------------------------------- pure


def test_primitive_pack_roundtrip():
    buf = bytearray(b"abcdefgh")
    t = Primitive(4)
    assert t.pack(buf) == b"abcd"
    out = bytearray(8)
    t.unpack(b"wxyz", out)
    assert bytes(out) == b"wxyz\x00\x00\x00\x00"


def test_contiguous_counts_elements():
    t = Contiguous(3, Primitive(2))
    assert t.size == 6
    assert t.extent == 6
    buf = bytes(range(12))
    assert t.pack(buf, count=2) == buf


def test_vector_selects_strided_columns():
    # a 4x4 byte matrix; pick column 1 via Vector(count=4, bl=1, stride=4)
    m = np.arange(16, dtype=np.uint8).reshape(4, 4)
    col = Vector(count=4, blocklength=1, stride=4, base=BYTE)
    assert col.size == 4
    assert col.pack(m.reshape(-1)[1:]) == bytes([1, 5, 9, 13])


def test_vector_unpack_scatter():
    col = Vector(count=3, blocklength=2, stride=4, base=BYTE)
    out = bytearray(12)
    col.unpack(b"AABBCC", out)
    assert bytes(out) == b"AA\x00\x00BB\x00\x00CC\x00\x00"


def test_vector_rejects_overlap():
    with pytest.raises(ValueError, match="overlap"):
        Vector(count=2, blocklength=4, stride=2)


def test_indexed_blocks():
    t = Indexed(blocklengths=[2, 1], displacements=[0, 5], base=BYTE)
    assert t.size == 3
    assert t.extent == 6
    assert t.pack(b"ABCDEFGH") == b"ABF"


def test_indexed_validation():
    with pytest.raises(ValueError):
        Indexed([1], [0, 1])
    with pytest.raises(ValueError):
        Indexed([], [])
    with pytest.raises(ValueError):
        Indexed([0], [0])


def test_pack_past_buffer_rejected():
    t = Contiguous(16)
    with pytest.raises(ValueError, match="past the buffer"):
        t.pack(b"short")


def test_unpack_length_mismatch_rejected():
    t = Contiguous(4)
    with pytest.raises(ValueError, match="does not match"):
        t.unpack(b"toolongdata", bytearray(16))


def test_nested_vector_of_doubles():
    # every other double from an 8-double array
    t = Vector(count=4, blocklength=1, stride=2, base=DOUBLE)
    arr = np.arange(8, dtype=np.float64)
    wire = t.pack(arr)
    got = np.frombuffer(wire, dtype=np.float64)
    assert np.array_equal(got, arr[::2])


@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=4),
)
def test_vector_pack_unpack_roundtrip_property(count, bl, extra):
    stride = bl + extra
    t = Vector(count=count, blocklength=bl, stride=stride)
    n = t.extent + 8
    rng = np.random.default_rng(count * 100 + bl * 10 + extra)
    src = rng.integers(0, 256, n, dtype=np.uint8).tobytes()
    wire = t.pack(src)
    assert len(wire) == t.size
    dst = bytearray(n)
    t.unpack(wire, dst)
    redo = t.pack(bytes(dst))
    assert redo == wire


# ------------------------------------------------------------- end-to-end


def test_send_recv_matrix_column():
    """Classic use: ship one column of a row-major matrix."""
    cl = SPCluster(2, stack="lapi-enhanced")
    n = 16
    col_t = Vector(count=n, blocklength=8, stride=n * 8, base=BYTE)

    def program(comm, rank, size):
        m = np.arange(n * n, dtype=np.float64).reshape(n, n)
        if rank == 0:
            # send column 3 (8-byte doubles, stride = row length)
            yield from comm.send(m.reshape(-1).view(np.uint8)[3 * 8:],
                                 dest=1, datatype=col_t)
            return None
        out = np.zeros((n, n), dtype=np.float64)
        yield from comm.recv(out.reshape(-1).view(np.uint8)[5 * 8:],
                             source=0, datatype=col_t)
        return out

    res = cl.run(program)
    out = res.values[1]
    m = np.arange(n * n, dtype=np.float64).reshape(n, n)
    assert np.array_equal(out[:, 5], m[:, 3])
    # everything else untouched
    out[:, 5] = 0
    assert np.count_nonzero(out) == 0


def test_derived_type_charges_pack_copies():
    cl = SPCluster(2, stack="lapi-enhanced")
    t = Contiguous(512)

    def program(comm, rank, size):
        if rank == 0:
            yield from comm.send(bytes(512), dest=1, datatype=t)
            return None
        buf = bytearray(512)
        yield from comm.recv(buf, source=0, datatype=t)
        return None

    res = cl.run(program)
    # pack copy at sender + unpack copy at receiver, on top of transport
    assert res.stats.bytes_copied >= 2 * 512


def test_waitany_returns_first_completion():
    cl = SPCluster(3, stack="lapi-enhanced")

    def program(comm, rank, size):
        if rank == 0:
            bufs = [np.zeros(8, dtype=np.uint8) for _ in range(2)]
            r1 = yield from comm.irecv(bufs[0], source=1)
            r2 = yield from comm.irecv(bufs[1], source=2)
            idx, status = yield from comm.waitany([r1, r2])
            yield from comm.waitall([r1 if idx == 1 else r2])
            return (idx, status.source)
        yield comm.env.timeout(100.0 if rank == 2 else 5000.0)
        yield from comm.send(bytes([rank]) * 8, dest=0)
        return None

    res = cl.run(program)
    idx, source = res.values[0]
    assert (idx, source) == (1, 2), "rank 2 sent first, so req index 1 wins"
