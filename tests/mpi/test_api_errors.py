"""API misuse and diagnostics."""

import numpy as np
import pytest

from repro import SPCluster
from repro.cluster.cluster import DeadlockError
from repro.mpi import MpiError


def run(n, program):
    return SPCluster(n).run(program)


def test_negative_tag_rejected():
    def program(comm, rank, size):
        try:
            yield from comm.send(b"x", dest=1 - rank, tag=-5)
        except MpiError:
            return "caught"

    assert run(2, program).values[0] == "caught"


def test_dest_rank_out_of_range():
    def program(comm, rank, size):
        try:
            yield from comm.send(b"x", dest=7)
        except MpiError:
            return "caught"

    assert run(2, program).values == ["caught", "caught"]


def test_source_rank_out_of_range():
    def program(comm, rank, size):
        buf = bytearray(1)
        try:
            yield from comm.recv(buf, source=9)
        except MpiError:
            return "caught"

    assert run(2, program).values[0] == "caught"


def test_waitany_empty_rejected():
    def program(comm, rank, size):
        yield comm.env.timeout(0)
        try:
            yield from comm.waitany([])
        except MpiError:
            return "caught"

    assert run(1, program).values[0] == "caught"


def test_split_without_collective_guides_user():
    def program(comm, rank, size):
        yield comm.env.timeout(0)
        try:
            comm.split(0)
        except MpiError as e:
            return "split_collective" in str(e)

    assert run(2, program).values[0] is True


def test_deadlock_error_names_stuck_ranks():
    def program(comm, rank, size):
        buf = bytearray(4)
        if rank == 0:
            yield from comm.send(b"ok!!", dest=1)
            return None
        yield from comm.recv(buf, source=0)
        # rank 1 now waits for a message nobody sends
        yield from comm.recv(buf, source=0, tag=42)

    with pytest.raises(DeadlockError, match=r"rank\(s\) \[1\]"):
        run(2, program)


def test_wtime_advances():
    def program(comm, rank, size):
        t0 = comm.wtime()
        yield comm.env.timeout(1_000_000.0)  # 1 simulated second
        return comm.wtime() - t0

    res = run(1, program)
    assert res.values[0] == pytest.approx(1.0)


def test_buffer_attach_twice_rejected():
    def program(comm, rank, size):
        yield comm.env.timeout(0)
        comm.buffer_attach(1024)
        try:
            comm.buffer_attach(1024)
        except Exception as e:
            return type(e).__name__

    assert run(1, program).values[0] == "MpiFatal"


def test_bsend_without_attach_rejected():
    def program(comm, rank, size):
        try:
            yield from comm.bsend(b"x" * 100, dest=1 - rank)
        except Exception as e:
            return "exceeds attached" in str(e)

    assert run(2, program).values[0] is True
