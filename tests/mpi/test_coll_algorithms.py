"""Alternative collective algorithms: all must agree with the defaults."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SPCluster
from repro.mpi.coll_algorithms import (
    ALLGATHER_ALGORITHMS,
    ALLREDUCE_ALGORITHMS,
    BCAST_ALGORITHMS,
)


def run(n, program):
    return SPCluster(n, stack="lapi-enhanced").run(program)


@pytest.mark.parametrize("algo", sorted(ALLREDUCE_ALGORITHMS))
@pytest.mark.parametrize("n", [2, 4])
def test_allreduce_algorithms_agree(algo, n):
    data = np.arange(97, dtype=np.float64)

    def program(comm, rank, size):
        comm.coll_algorithms["allreduce"] = algo
        out = np.zeros_like(data)
        yield from comm.allreduce(data * (rank + 1), out, op="sum")
        return out.tolist()

    res = run(n, program)
    expected = (data * sum(range(1, n + 1))).tolist()
    for v in res.values:
        assert v == pytest.approx(expected)


def test_allreduce_recursive_doubling_rejects_non_pow2():
    def program(comm, rank, size):
        comm.coll_algorithms["allreduce"] = "recursive_doubling"
        out = np.zeros(4)
        yield from comm.allreduce(np.ones(4), out)

    with pytest.raises(ValueError, match="power-of-two"):
        run(3, program)


@pytest.mark.parametrize("algo", sorted(BCAST_ALGORITHMS))
@pytest.mark.parametrize("n", [2, 3, 4])
@pytest.mark.parametrize("root", [0, 1])
def test_bcast_algorithms_agree(algo, n, root):
    payload = np.random.default_rng(7).integers(0, 256, 1000, dtype=np.uint8)

    def program(comm, rank, size):
        comm.coll_algorithms["bcast"] = algo
        buf = payload.copy() if rank == root else np.zeros(1000, dtype=np.uint8)
        yield from comm.bcast(buf, root=root)
        return buf.tolist()

    res = run(n, program)
    for v in res.values:
        assert v == payload.tolist()


@pytest.mark.parametrize("algo", sorted(ALLGATHER_ALGORITHMS))
@pytest.mark.parametrize("n", [2, 4])
def test_allgather_algorithms_agree(algo, n):
    def program(comm, rank, size):
        comm.coll_algorithms["allgather"] = algo
        out = np.zeros((size, 3), dtype=np.int64)
        yield from comm.allgather(np.full(3, rank * 11, dtype=np.int64), out)
        return out.ravel().tolist()

    res = run(n, program)
    expected = [r * 11 for r in range(n) for _ in range(3)]
    for v in res.values:
        assert v == expected


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=999),
    length=st.integers(min_value=1, max_value=64),
    algo=st.sampled_from(sorted(ALLREDUCE_ALGORITHMS)),
)
def test_allreduce_algorithms_property(seed, length, algo):
    rng = np.random.default_rng(seed)
    data = rng.integers(-50, 50, (4, length)).astype(np.float64)

    def program(comm, rank, size):
        comm.coll_algorithms["allreduce"] = algo
        out = np.zeros(length)
        yield from comm.allreduce(data[rank], out, op="sum")
        return out

    res = run(4, program)
    for v in res.values:
        np.testing.assert_allclose(v, data.sum(axis=0))


def test_ring_allreduce_cheaper_for_large_vectors():
    """The point of the alternatives: for large vectors on 4 ranks the
    ring (bandwidth-optimal) beats reduce+bcast (which ships the full
    vector log p times)."""
    times = {}
    for algo in ("reduce_bcast", "ring"):
        cl = SPCluster(4, stack="lapi-enhanced")

        def program(comm, rank, size, algo=algo):
            comm.coll_algorithms["allreduce"] = algo
            out = np.zeros(32768 // 8)
            yield from comm.allreduce(np.ones(32768 // 8), out)
            return None

        times[algo] = cl.run(program).elapsed_us
    assert times["ring"] < times["reduce_bcast"]
