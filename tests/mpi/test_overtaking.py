"""MPI non-overtaking under fabric-level packet overtaking.

With heavy random jitter, first packets of consecutive messages arrive
out of order; the LAPI backend must defer matching (announcements are
processed in per-source send order) so receives still match in send
order — the subtlest correctness property of matching over a one-sided
transport.
"""

import numpy as np
import pytest

from repro import ANY_SOURCE, ANY_TAG, MachineParams, SPCluster

JITTERY = dict(route_skew_us=0.0, route_jitter_us=250.0)


def test_first_packets_do_overtake_under_jitter():
    """Sanity for the premise: the fabric really reorders arrivals."""
    cl = SPCluster(2, stack="lapi-enhanced", seed=3,
                   params=MachineParams(**JITTERY), trace=True)

    def program(comm, rank, size):
        n = 20
        if rank == 0:
            for i in range(n):
                yield from comm.send(bytes([i]) * 8, dest=1, tag=5)
            return None
        buf = bytearray(8)
        out = []
        for _ in range(n):
            yield from comm.recv(buf, source=0, tag=5)
            out.append(buf[0])
        return out

    res = cl.run(program)
    assert res.values[1] == list(range(20)), "matching order must be send order"
    arrival_seqs = [r.fields["seq"] for r in cl.tracer.filter(
        node=1, layer="adapter", event="pkt_rx") if r.fields.get("seq") is not None]
    assert arrival_seqs != sorted(arrival_seqs), (
        "test premise broken: no overtaking happened; increase jitter"
    )
    assert res.stats.deferred_announcements > 0, (
        "expected the deferral path to engage"
    )


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_ordering_holds_across_seeds(seed):
    cl = SPCluster(2, stack="lapi-enhanced", seed=seed,
                   params=MachineParams(**JITTERY))

    def program(comm, rank, size):
        n = 15
        if rank == 0:
            for i in range(n):
                yield from comm.send(np.full(16, i, dtype=np.uint8), dest=1, tag=2)
            return None
        got = []
        buf = np.zeros(16, dtype=np.uint8)
        for _ in range(n):
            yield from comm.recv(buf, source=0, tag=2)
            got.append(int(buf[0]))
        return got

    assert cl.run(program).values[1] == list(range(15))


def test_wildcard_receives_match_in_send_order_despite_overtaking():
    cl = SPCluster(2, stack="lapi-enhanced", seed=7,
                   params=MachineParams(**JITTERY))

    def program(comm, rank, size):
        n = 12
        if rank == 0:
            for i in range(n):
                yield from comm.send(bytes([i]) * 4, dest=1, tag=100 + i)
            return None
        got = []
        buf = bytearray(4)
        for _ in range(n):
            status = yield from comm.recv(buf, source=ANY_SOURCE, tag=ANY_TAG)
            got.append((buf[0], status.tag))
        return got

    res = cl.run(program)
    assert res.values[1] == [(i, 100 + i) for i in range(12)]


def test_deferred_early_arrival_still_copied_correctly():
    """A deferred message that is also an early arrival: assembled in the
    EA buffer, matched late, copied on WAIT — the full worst-case path."""
    cl = SPCluster(2, stack="lapi-enhanced", seed=11,
                   params=MachineParams(**JITTERY))
    payloads = [bytes([i]) * 700 for i in range(10)]

    def program(comm, rank, size):
        if rank == 0:
            for p in payloads:
                yield from comm.send(p, dest=1, tag=9)
            yield from comm.barrier()
            return None
        # drive progress without posting: everything becomes EA
        for _ in range(200):
            yield from comm.iprobe(source=0, tag=9)
            yield comm.env.timeout(10.0)
        got = []
        buf = bytearray(700)
        for _ in range(10):
            yield from comm.recv(buf, source=0, tag=9)
            got.append(bytes(buf))
        yield from comm.barrier()
        return got

    res = cl.run(program)
    assert res.values[1] == payloads
    assert res.stats.early_arrivals >= 5
