"""Collective operations on 2–5 ranks, both stack families."""

import numpy as np
import pytest

from repro import SPCluster

STACKS = ("native", "lapi-enhanced")
SIZES = (2, 3, 4, 5)


def run(n, stack, program, **kw):
    return SPCluster(n, stack=stack, **kw).run(program)


@pytest.mark.parametrize("stack", STACKS)
@pytest.mark.parametrize("n", SIZES)
def test_barrier_synchronises(stack, n):
    def program(comm, rank, size):
        yield comm.env.timeout(rank * 500.0)
        yield from comm.barrier()
        return comm.env.now

    res = run(n, stack, program)
    # nobody leaves before the slowest rank arrived
    assert min(res.values) >= (n - 1) * 500.0


@pytest.mark.parametrize("stack", STACKS)
@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("root", [0, 1])
def test_bcast(stack, n, root):
    def program(comm, rank, size):
        buf = np.zeros(257, dtype=np.int32)
        if rank == root:
            buf[:] = np.arange(257)
        yield from comm.bcast(buf, root=root)
        return int(buf.sum())

    res = run(n, stack, program)
    expected = int(np.arange(257).sum())
    assert res.values == [expected] * n


@pytest.mark.parametrize("stack", STACKS)
@pytest.mark.parametrize("n", SIZES)
def test_reduce_sum(stack, n):
    def program(comm, rank, size):
        v = np.full(10, rank + 1, dtype=np.int64)
        out = np.zeros(10, dtype=np.int64)
        yield from comm.reduce(v, out if rank == 0 else None, op="sum", root=0)
        return int(out[0])

    res = run(n, stack, program)
    assert res.values[0] == sum(range(1, n + 1))


@pytest.mark.parametrize("op,expected", [("max", 4), ("min", 1), ("prod", 24)])
def test_reduce_other_ops(op, expected):
    def program(comm, rank, size):
        v = np.array([rank + 1], dtype=np.int64)
        out = np.zeros(1, dtype=np.int64)
        yield from comm.reduce(v, out if rank == 0 else None, op=op, root=0)
        return int(out[0])

    res = run(4, "lapi-enhanced", program)
    assert res.values[0] == expected


@pytest.mark.parametrize("stack", STACKS)
@pytest.mark.parametrize("n", SIZES)
def test_allreduce(stack, n):
    def program(comm, rank, size):
        v = np.array([rank, rank * 2], dtype=np.float64)
        out = np.zeros(2, dtype=np.float64)
        yield from comm.allreduce(v, out, op="sum")
        return out.tolist()

    res = run(n, stack, program)
    total = sum(range(n))
    for v in res.values:
        assert v == [total, total * 2]


@pytest.mark.parametrize("stack", STACKS)
@pytest.mark.parametrize("n", SIZES)
def test_gather(stack, n):
    def program(comm, rank, size):
        v = np.full(4, rank, dtype=np.int32)
        out = np.zeros((size, 4), dtype=np.int32) if rank == 0 else None
        yield from comm.gather(v, out, root=0)
        return out.tolist() if rank == 0 else None

    res = run(n, stack, program)
    assert res.values[0] == [[r] * 4 for r in range(n)]


@pytest.mark.parametrize("stack", STACKS)
@pytest.mark.parametrize("n", SIZES)
def test_scatter(stack, n):
    def program(comm, rank, size):
        src = None
        if rank == 0:
            src = np.arange(size * 3, dtype=np.int32).reshape(size, 3) * 10
        out = np.zeros(3, dtype=np.int32)
        yield from comm.scatter(src, out, root=0)
        return out.tolist()

    res = run(n, stack, program)
    for r, v in enumerate(res.values):
        assert v == [(r * 3 + i) * 10 for i in range(3)]


@pytest.mark.parametrize("stack", STACKS)
@pytest.mark.parametrize("n", SIZES)
def test_allgather(stack, n):
    def program(comm, rank, size):
        v = np.array([rank * 7], dtype=np.int64)
        out = np.zeros((size, 1), dtype=np.int64)
        yield from comm.allgather(v, out)
        return out.ravel().tolist()

    res = run(n, stack, program)
    for v in res.values:
        assert v == [r * 7 for r in range(n)]


@pytest.mark.parametrize("stack", STACKS)
@pytest.mark.parametrize("n", SIZES)
def test_alltoall(stack, n):
    def program(comm, rank, size):
        src = np.array([[rank * 100 + c] for c in range(size)], dtype=np.int64)
        out = np.zeros((size, 1), dtype=np.int64)
        yield from comm.alltoall(src, out)
        return out.ravel().tolist()

    res = run(n, stack, program)
    for r, v in enumerate(res.values):
        assert v == [c * 100 + r for c in range(n)]


@pytest.mark.parametrize("n", SIZES)
def test_alltoallv_bytes(n):
    def program(comm, rank, size):
        # rank r sends (d+1) copies of byte r to destination d
        chunks = [bytes([rank]) * (d + 1) for d in range(size)]
        sendcounts = [len(c) for c in chunks]
        sendbuf = b"".join(chunks)
        recvcounts = [rank + 1] * size
        recvbuf = bytearray(sum(recvcounts))
        yield from comm.alltoallv(sendbuf, sendcounts, recvbuf, recvcounts)
        return bytes(recvbuf)

    res = run(n, "lapi-enhanced", program)
    for r, v in enumerate(res.values):
        expected = b"".join(bytes([s]) * (r + 1) for s in range(n))
        assert v == expected


@pytest.mark.parametrize("stack", STACKS)
def test_scan(stack):
    def program(comm, rank, size):
        v = np.array([rank + 1], dtype=np.int64)
        out = np.zeros(1, dtype=np.int64)
        yield from comm.scan(v, out, op="sum")
        return int(out[0])

    res = run(4, stack, program)
    assert res.values == [1, 3, 6, 10]


def test_bcast_large_payload_rendezvous():
    def program(comm, rank, size):
        buf = np.zeros(32 * 1024, dtype=np.uint8)
        if rank == 0:
            buf[:] = np.arange(32 * 1024, dtype=np.uint64).astype(np.uint8)
        yield from comm.bcast(buf, root=0)
        return int(buf[12345])

    res = run(4, "lapi-enhanced", program)
    expected = int(np.uint8(12345 % 256))
    assert all(v == expected for v in res.values)


def test_unknown_reduce_op_rejected():
    def program(comm, rank, size):
        out = np.zeros(1)
        yield from comm.allreduce(np.zeros(1), out, op="bogus")

    with pytest.raises(ValueError, match="unknown reduction"):
        run(2, "lapi-enhanced", program)


def test_comm_split_and_sub_communication():
    def program(comm, rank, size):
        sub = yield from comm.split_collective(color=rank % 2, key=rank)
        v = np.array([rank], dtype=np.int64)
        out = np.zeros((sub.size, 1), dtype=np.int64)
        yield from sub.allgather(v, out)
        return (sub.rank, sub.size, out.ravel().tolist())

    res = run(4, "lapi-enhanced", program)
    assert res.values[0] == (0, 2, [0, 2])
    assert res.values[1] == (0, 2, [1, 3])
    assert res.values[2] == (1, 2, [0, 2])
    assert res.values[3] == (1, 2, [1, 3])


def test_comm_dup_isolates_traffic():
    def program(comm, rank, size):
        dup = comm.dup()
        # same-tag messages on different communicators must not cross
        if rank == 0:
            yield from comm.send(b"on-world", dest=1, tag=7)
            yield from dup.send(b"on-dup!!", dest=1, tag=7)
            return None
        buf1 = bytearray(8)
        buf2 = bytearray(8)
        yield from dup.recv(buf2, source=0, tag=7)
        yield from comm.recv(buf1, source=0, tag=7)
        return (bytes(buf1), bytes(buf2))

    res = run(2, "lapi-enhanced", program)
    assert res.values[1] == (b"on-world", b"on-dup!!")
