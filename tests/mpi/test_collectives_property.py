"""Property-based collective tests: results must equal the numpy
equivalent for arbitrary data, sizes and roots."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SPCluster


def _run(n, program):
    return SPCluster(n, stack="lapi-enhanced").run(program)


@settings(max_examples=12, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=5),
    length=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=999),
    op=st.sampled_from(["sum", "max", "min"]),
)
def test_allreduce_matches_numpy(n, length, seed, op):
    rng = np.random.default_rng(seed)
    data = rng.integers(-100, 100, (n, length)).astype(np.float64)

    def program(comm, rank, size):
        out = np.zeros(length)
        yield from comm.allreduce(data[rank], out, op=op)
        return out.tolist()

    res = _run(n, program)
    expected = {"sum": data.sum(0), "max": data.max(0), "min": data.min(0)}[op]
    for v in res.values:
        np.testing.assert_allclose(v, expected)


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=5),
    root=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=999),
)
def test_bcast_matches_root_data(n, root, seed):
    root = root % n
    rng = np.random.default_rng(seed)
    payload = rng.integers(0, 256, 100, dtype=np.uint8)

    def program(comm, rank, size):
        buf = payload.copy() if rank == root else np.zeros(100, dtype=np.uint8)
        yield from comm.bcast(buf, root=root)
        return buf.tolist()

    res = _run(n, program)
    for v in res.values:
        assert v == payload.tolist()


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=999),
)
def test_alltoall_is_a_global_transpose(n, seed):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, 1000, (n, n)).astype(np.int64)

    def program(comm, rank, size):
        out = np.zeros((size, 1), dtype=np.int64)
        yield from comm.alltoall(matrix[rank].reshape(size, 1), out)
        return out.ravel().tolist()

    res = _run(n, program)
    for r, v in enumerate(res.values):
        assert v == matrix[:, r].tolist()


@settings(max_examples=8, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=999),
)
def test_scan_is_prefix_sum(n, seed):
    rng = np.random.default_rng(seed)
    vals = rng.integers(-50, 50, n).astype(np.int64)

    def program(comm, rank, size):
        out = np.zeros(1, dtype=np.int64)
        yield from comm.scan(np.array([vals[rank]]), out)
        return int(out[0])

    res = _run(n, program)
    assert res.values == np.cumsum(vals).tolist()


@settings(max_examples=8, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=99),
)
def test_gather_scatter_roundtrip(n, seed):
    rng = np.random.default_rng(seed)
    table = rng.integers(0, 255, (n, 8)).astype(np.int32)

    def program(comm, rank, size):
        mine = np.zeros(8, dtype=np.int32)
        yield from comm.scatter(table if rank == 0 else None, mine, root=0)
        back = np.zeros((size, 8), dtype=np.int32) if rank == 0 else None
        yield from comm.gather(mine, back, root=0)
        return back.tolist() if rank == 0 else None

    res = _run(n, program)
    assert res.values[0] == table.tolist()
