"""Backend construction invariants."""

import pytest

from repro.hal import Hal
from repro.lapi import Lapi
from repro.machine import Cpu, MachineParams, NodeStats
from repro.mpi.backends import LapiBackend
from repro.network import Adapter, SwitchFabric
from repro.sim import Environment


def make_lapi(enhanced):
    env = Environment()
    params = MachineParams()
    stats = NodeStats()
    cpu = Cpu(env, params, stats)
    fabric = SwitchFabric(env, params)
    adapter = Adapter(env, params, fabric, 0, stats)
    hal = Hal(env, cpu, adapter, params, stats, params.lapi_header_bytes)
    lapi = Lapi(env, cpu, hal, params, stats, task_id=0, num_tasks=2,
                enhanced=enhanced)
    return env, cpu, params, stats, lapi


def test_unknown_variant_rejected():
    env, cpu, params, stats, lapi = make_lapi(False)
    with pytest.raises(ValueError, match="unknown MPI-LAPI variant"):
        LapiBackend(env, cpu, params, stats, 0, 2, lapi, variant="turbo")


def test_enhanced_variant_requires_enhanced_lapi():
    env, cpu, params, stats, lapi = make_lapi(False)
    with pytest.raises(ValueError, match="requires an enhanced LAPI"):
        LapiBackend(env, cpu, params, stats, 0, 2, lapi, variant="enhanced")


def test_base_variant_rejects_enhanced_lapi():
    env, cpu, params, stats, lapi = make_lapi(True)
    with pytest.raises(ValueError, match="stock LAPI"):
        LapiBackend(env, cpu, params, stats, 0, 2, lapi, variant="base")


def test_backend_names():
    env, cpu, params, stats, lapi = make_lapi(True)
    b = LapiBackend(env, cpu, params, stats, 0, 2, lapi, variant="enhanced")
    assert b.name == "lapi-enhanced"
