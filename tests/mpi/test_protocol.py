"""Table 2 translation unit tests."""

import pytest

from repro.mpi.protocol import (
    BUFFERED,
    EAGER,
    READY,
    RENDEZVOUS,
    STANDARD,
    SYNCHRONOUS,
    select_protocol,
)


@pytest.mark.parametrize(
    "mode,size,limit,expected",
    [
        (STANDARD, 0, 4096, EAGER),
        (STANDARD, 4096, 4096, EAGER),
        (STANDARD, 4097, 4096, RENDEZVOUS),
        (BUFFERED, 4096, 4096, EAGER),
        (BUFFERED, 4097, 4096, RENDEZVOUS),
        (READY, 10**9, 4096, EAGER),
        (SYNCHRONOUS, 0, 4096, RENDEZVOUS),
        (SYNCHRONOUS, 1, 10**9, RENDEZVOUS),
        (STANDARD, 1, 0, RENDEZVOUS),  # eager limit zero: everything rendezvous
        (STANDARD, 0, 0, EAGER),
    ],
)
def test_table2(mode, size, limit, expected):
    assert select_protocol(mode, size, limit) == expected


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        select_protocol("express", 1, 4096)
