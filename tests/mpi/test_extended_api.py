"""Extended MPI API: gatherv/scatterv, reduce_scatter, cancel,
persistent requests."""

import numpy as np
import pytest

from repro import SPCluster
from repro.mpi import MpiError


def run(n, program, stack="lapi-enhanced"):
    return SPCluster(n, stack=stack).run(program)


def test_gatherv_unequal_contributions():
    def program(comm, rank, size):
        mine = bytes([rank + 65]) * (rank + 1)  # 'A', 'BB', 'CCC'...
        counts = [r + 1 for r in range(size)]
        out = bytearray(sum(counts)) if rank == 0 else None
        yield from comm.gatherv(mine, out, counts if rank == 0 else None, root=0)
        return bytes(out) if rank == 0 else None

    res = run(4, program)
    assert res.values[0] == b"A" + b"BB" + b"CCC" + b"DDDD"


def test_scatterv_unequal_chunks():
    def program(comm, rank, size):
        counts = [r + 2 for r in range(size)]
        if rank == 0:
            src = b"".join(bytes([r + 48]) * c for r, c in enumerate(counts))
        else:
            src = None
        out = bytearray(rank + 2)
        yield from comm.scatterv(src, counts if rank == 0 else None, out, root=0)
        return bytes(out)

    res = run(3, program)
    assert res.values == [b"00", b"111", b"2222"]


def test_gatherv_validates_counts():
    def program(comm, rank, size):
        out = bytearray(2) if rank == 0 else None
        yield from comm.gatherv(b"xx", out, [99, 99] if rank == 0 else None)

    with pytest.raises(ValueError):
        run(2, program)


def test_reduce_scatter_block():
    def program(comm, rank, size):
        src = np.full((size, 4), float(rank + 1))
        out = np.zeros(4)
        yield from comm.reduce_scatter(src, out, op="sum")
        return out.tolist()

    res = run(3, program)
    for v in res.values:
        assert v == [6.0] * 4  # 1+2+3


def test_cancel_posted_receive():
    def program(comm, rank, size):
        if rank == 1:
            buf = bytearray(8)
            req = yield from comm.irecv(buf, source=0, tag=99)
            ok = yield from comm.cancel(req)
            assert ok
            assert req.cancelled and req.done
            # the other message (tag 1) must still match its own receive
            buf2 = bytearray(8)
            yield from comm.recv(buf2, source=0, tag=1)
            return bytes(buf2)
        yield from comm.send(b"realmsg!", dest=1, tag=1)
        return None

    res = run(2, program)
    assert res.values[1] == b"realmsg!"


def test_cancel_completed_receive_fails():
    def program(comm, rank, size):
        if rank == 1:
            buf = bytearray(4)
            req = yield from comm.irecv(buf, source=0)
            yield from comm.wait(req)
            ok = yield from comm.cancel(req)
            return ok
        yield from comm.send(b"data", dest=1)
        return None

    assert run(2, program).values[1] is False


def test_cancel_send_rejected():
    def program(comm, rank, size):
        if rank == 0:
            req = yield from comm.isend(b"x", dest=1)
            try:
                yield from comm.cancel(req)
            except MpiError:
                yield from comm.wait(req)
                return "rejected"
        else:
            buf = bytearray(1)
            yield from comm.recv(buf, source=0)
        return None

    assert run(2, program).values[0] == "rejected"


def test_persistent_requests_reused_across_iterations():
    def program(comm, rank, size):
        iters = 5
        if rank == 0:
            buf = np.zeros(16, dtype=np.uint8)
            preq = comm.send_init(buf, dest=1, tag=4)
            for i in range(iters):
                buf[:] = i  # refresh contents each iteration
                yield from preq.start()
                yield from preq.wait()
            return None
        buf = np.zeros(16, dtype=np.uint8)
        preq = comm.recv_init(buf, source=0, tag=4)
        got = []
        for _ in range(iters):
            yield from preq.start()
            yield from preq.wait()
            got.append(int(buf[0]))
        return got

    res = run(2, program)
    assert res.values[1] == [0, 1, 2, 3, 4]


def test_persistent_double_start_rejected():
    def program(comm, rank, size):
        if rank == 1:
            buf = bytearray(4)
            preq = comm.recv_init(buf, source=0)
            yield from preq.start()
            try:
                yield from preq.start()
            except MpiError:
                yield from preq.wait()
                return "caught"
        else:
            yield from comm.send(b"data", dest=1)
        return None

    assert run(2, program).values[1] == "caught"


def test_persistent_wait_before_start_rejected():
    def program(comm, rank, size):
        preq = comm.recv_init(bytearray(4), source=0)
        try:
            yield from preq.wait()
        except MpiError:
            return "caught"

    assert run(1, program).values[0] == "caught"
