"""Fault injection at the MPI level: packet loss, FIFO overflow, reordering.

The reliability machinery (windows, cumulative acks, retransmission)
must make MPI correct over a lossy, reordering fabric on every stack.
"""

import numpy as np
import pytest

from repro import MachineParams, SPCluster

MPI_STACKS = ("native", "lapi-enhanced")


def transfer_program(payload):
    def program(comm, rank, size):
        if rank == 0:
            yield from comm.send(payload, dest=1)
            # keep driving progress so retransmissions flow even after
            # the send returns (polling discipline)
            yield from comm.barrier()
            return None
        buf = np.zeros(len(payload), dtype=np.uint8)
        yield from comm.recv(buf, source=0)
        yield from comm.barrier()
        return bytes(buf)

    return program


@pytest.mark.parametrize("stack", MPI_STACKS)
@pytest.mark.parametrize("loss", [0.05, 0.2])
def test_exact_delivery_under_loss(stack, loss):
    payload = np.random.default_rng(1).integers(0, 256, 60000, dtype=np.uint8)
    cl = SPCluster(2, stack=stack, seed=9,
                   params=MachineParams(packet_loss_rate=loss))
    res = cl.run(transfer_program(payload.tobytes()))
    assert res.values[1] == payload.tobytes()
    if cl.fabric.dropped > 0:
        assert res.stats.retransmissions > 0


@pytest.mark.parametrize("stack", MPI_STACKS)
def test_exact_delivery_under_heavy_reordering(stack):
    payload = np.random.default_rng(2).integers(0, 256, 30000, dtype=np.uint8)
    cl = SPCluster(2, stack=stack, seed=5,
                   params=MachineParams(route_skew_us=120.0, route_jitter_us=40.0))
    res = cl.run(transfer_program(payload.tobytes()))
    assert res.values[1] == payload.tobytes()


@pytest.mark.parametrize("stack", MPI_STACKS)
def test_loss_plus_reordering_together(stack):
    payload = np.random.default_rng(3).integers(0, 256, 12000, dtype=np.uint8)
    cl = SPCluster(2, stack=stack, seed=17,
                   params=MachineParams(packet_loss_rate=0.1,
                                        route_skew_us=80.0,
                                        route_jitter_us=30.0))
    res = cl.run(transfer_program(payload.tobytes()))
    assert res.values[1] == payload.tobytes()


@pytest.mark.parametrize("stack", MPI_STACKS)
def test_recv_fifo_overflow_recovered_by_retransmit(stack):
    """A tiny adapter FIFO forces drops under load; correctness must hold."""
    payload = np.random.default_rng(4).integers(0, 256, 16000, dtype=np.uint8)
    cl = SPCluster(2, stack=stack, seed=2,
                   params=MachineParams(adapter_recv_fifo=4))

    def program(comm, rank, size):
        if rank == 0:
            reqs = []
            for _ in range(4):
                r = yield from comm.isend(payload, dest=1)
                reqs.append(r)
            yield from comm.waitall(reqs)
            yield from comm.barrier()
            return None
        bufs = [np.zeros(len(payload), dtype=np.uint8) for _ in range(4)]
        for b in bufs:
            yield from comm.recv(b, source=0)
        yield from comm.barrier()
        return all(np.array_equal(b, payload) for b in bufs)

    res = cl.run(program)
    assert res.values[1] is True


def test_message_ordering_preserved_under_loss():
    """Non-overtaking must survive retransmissions."""
    cl = SPCluster(2, stack="lapi-enhanced", seed=8,
                   params=MachineParams(packet_loss_rate=0.15))

    def program(comm, rank, size):
        n = 12
        if rank == 0:
            for i in range(n):
                yield from comm.send(np.full(600, i, dtype=np.uint8), dest=1, tag=3)
            yield from comm.barrier()
            return None
        seen = []
        buf = np.zeros(600, dtype=np.uint8)
        for _ in range(n):
            yield from comm.recv(buf, source=0, tag=3)
            seen.append(int(buf[0]))
        yield from comm.barrier()
        return seen

    res = cl.run(program)
    assert res.values[1] == list(range(12))


def test_collectives_survive_loss():
    cl = SPCluster(4, stack="lapi-enhanced", seed=11,
                   params=MachineParams(packet_loss_rate=0.08))

    def program(comm, rank, size):
        out = np.zeros(64)
        yield from comm.allreduce(np.full(64, float(rank + 1)), out, op="sum")
        return float(out[0])

    res = cl.run(program)
    assert res.values == [10.0] * 4


def test_nas_kernel_survives_loss():
    from repro.nas import run_kernel

    cl = SPCluster(4, stack="lapi-enhanced", seed=13,
                   params=MachineParams(packet_loss_rate=0.03))
    result = run_kernel("cg", cl)
    assert all(o.verified for o in result.values)
