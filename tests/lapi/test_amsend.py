"""LAPI_Amsend: header handlers, assembly, counters, completion modes."""

import pytest

from repro.lapi import LapiError
from repro.lapi.buffers import ByteTarget, NullTarget
from tests.lapi.conftest import LapiRig


def install_sink(task, name="sink", size=1 << 16):
    """Register a header handler that assembles into a bytearray and
    records completions."""
    state = {"buf": bytearray(size), "completions": [], "uhdrs": []}

    def hh(lapi, src, uhdr, mlen):
        state["uhdrs"].append((src, dict(uhdr), mlen))

        def cmpl(lapi_, thread, data):
            state["completions"].append((lapi_.env.now, thread, data))
            yield lapi_.env.timeout(0)

        return ByteTarget(state["buf"]), cmpl, uhdr.get("token")

    task.register_handler(name, hh)
    return state


def test_amsend_single_packet_delivers_and_counts(rig2):
    t0, t1 = rig2.tasks
    sink = install_sink(t1)
    tgt_id, tgt_cntr = t1.create_counter("tgt")
    org_cntr_holder = {}

    def sender():
        from repro.lapi.counters import Counter

        org = Counter(rig2.env, "org")
        org_cntr_holder["org"] = org
        yield from t0.amsend("user", 1, "sink", {"token": 42}, b"payload!",
                             tgt_cntr_id=tgt_id, org_cntr=org)
        yield from t0.waitcntr("user", org, 1)

    def receiver():
        yield from t1.waitcntr("user", tgt_cntr, 1)

    rig2.run(sender(), receiver())
    assert bytes(sink["buf"][:8]) == b"payload!"
    assert sink["uhdrs"][0][0] == 0
    assert sink["uhdrs"][0][1]["token"] == 42
    assert sink["uhdrs"][0][2] == 8
    assert len(sink["completions"]) == 1
    assert tgt_cntr.value == 0  # waitcntr decremented
    assert org_cntr_holder["org"].value == 0


def test_multi_packet_message_assembled_in_order(rig2):
    t0, t1 = rig2.tasks
    sink = install_sink(t1)
    tgt_id, tgt_cntr = t1.create_counter()
    data = bytes(range(256)) * 20  # 5120 B -> 5 packets

    def sender():
        yield from t0.amsend("user", 1, "sink", {}, data, tgt_cntr_id=tgt_id)

    def receiver():
        yield from t1.waitcntr("user", tgt_cntr, 1)

    rig2.run(sender(), receiver())
    assert bytes(sink["buf"][: len(data)]) == data


def test_out_of_order_packets_assembled_by_offset():
    rig = LapiRig(2, route_skew_us=400.0, route_jitter_us=100.0, packet_payload=256)
    t0, t1 = rig.tasks
    sink = install_sink(t1)
    tgt_id, tgt_cntr = t1.create_counter()
    data = bytes([i % 251 for i in range(2500)])  # 10 packets

    def sender():
        yield from t0.amsend("user", 1, "sink", {}, data, tgt_cntr_id=tgt_id)

    def receiver():
        yield from t1.waitcntr("user", tgt_cntr, 1)

    rig.run(sender(), receiver())
    assert bytes(sink["buf"][: len(data)]) == data
    assert len(sink["completions"]) == 1


def test_zero_byte_amsend_completes(rig2):
    t0, t1 = rig2.tasks
    sink = install_sink(t1)
    tgt_id, tgt_cntr = t1.create_counter()

    def sender():
        yield from t0.amsend("user", 1, "sink", {"ctrl": True}, b"", tgt_cntr_id=tgt_id)

    def receiver():
        yield from t1.waitcntr("user", tgt_cntr, 1)

    rig2.run(sender(), receiver())
    assert len(sink["completions"]) == 1
    assert sink["uhdrs"][0][2] == 0


def test_base_mode_completion_runs_on_separate_thread():
    rig = LapiRig(2, enhanced=False)
    t0, t1 = rig.tasks
    sink = install_sink(t1)
    tgt_id, tgt_cntr = t1.create_counter()

    def sender():
        yield from t0.amsend("user", 1, "sink", {}, b"x", tgt_cntr_id=tgt_id)

    def receiver():
        yield from t1.waitcntr("user", tgt_cntr, 1)

    rig.run(sender(), receiver())
    assert rig.stats[1].cmpl_handlers_threaded == 1
    assert rig.stats[1].cmpl_handlers_inline == 0
    # handler ran on the "cmpl" thread
    assert sink["completions"][0][1] == "cmpl"
    # receiver paid thread context switches
    assert rig.stats[1].ctx_switches >= 1


def test_enhanced_mode_completion_runs_inline():
    rig = LapiRig(2, enhanced=True)
    t0, t1 = rig.tasks
    sink = install_sink(t1)
    tgt_id, tgt_cntr = t1.create_counter()

    def sender():
        yield from t0.amsend("user", 1, "sink", {}, b"x", tgt_cntr_id=tgt_id)

    def receiver():
        yield from t1.waitcntr("user", tgt_cntr, 1)

    rig.run(sender(), receiver())
    assert rig.stats[1].cmpl_handlers_inline == 1
    assert rig.stats[1].cmpl_handlers_threaded == 0
    assert sink["completions"][0][1] == "user"
    assert rig.stats[1].ctx_switches == 0


def test_enhanced_latency_beats_base():
    """The paper's Fig 10 core claim at one message."""
    times = {}
    for enhanced in (False, True):
        rig = LapiRig(2, enhanced=enhanced)
        t0, t1 = rig.tasks
        install_sink(t1)
        tgt_id, tgt_cntr = t1.create_counter()
        done = {}

        def sender(t0=t0, tgt_id=tgt_id):
            yield from t0.amsend("user", 1, "sink", {}, b"y" * 100, tgt_cntr_id=tgt_id)

        def receiver(rig=rig, t1=t1, tgt_cntr=tgt_cntr, done=done):
            yield from t1.waitcntr("user", tgt_cntr, 1)
            done["t"] = rig.env.now

        rig.run(sender(), receiver())
        times[enhanced] = done["t"]
    assert times[True] < times[False]
    # the gap should be about one context switch
    gap = times[False] - times[True]
    assert gap > 10.0


def test_header_handler_may_not_call_lapi(rig2):
    t0, t1 = rig2.tasks
    errors = []

    def evil_hh(lapi, src, uhdr, mlen):
        try:
            # not even a yield needed: the call itself must raise
            gen = lapi.amsend("user", src, "_lapi_null", {})
            next(gen)
        except LapiError as e:
            errors.append(str(e))
        return NullTarget(), None, None

    t1.register_handler("evil", evil_hh)
    tgt_id, tgt_cntr = t1.create_counter()

    def sender():
        yield from t0.amsend("user", 1, "evil", {}, b"", tgt_cntr_id=tgt_id)

    def receiver():
        yield from t1.waitcntr("user", tgt_cntr, 1)

    rig2.run(sender(), receiver())
    assert errors and "header handler" in errors[0]


def test_amsend_to_self_rejected(rig2):
    t0 = rig2.tasks[0]

    def proc():
        yield from t0.amsend("user", 0, "_lapi_null", {})

    with pytest.raises(LapiError):
        rig2.run(proc())


def test_amsend_unregistered_handler_fails_at_target(rig2):
    t0, t1 = rig2.tasks
    _id, c = t1.create_counter()

    def sender():
        yield from t0.amsend("user", 1, "nope", {})

    def receiver():
        yield from t1.waitcntr("user", c, 1)

    with pytest.raises(LapiError, match="unregistered header handler"):
        rig2.run(sender(), receiver())


def test_duplicate_handler_registration_rejected(rig2):
    t0 = rig2.tasks[0]
    t0.register_handler("h", lambda *a: (None, None, None))
    with pytest.raises(LapiError):
        t0.register_handler("h", lambda *a: (None, None, None))


def test_completion_counter_echo(rig2):
    """cmpl_cntr lives at the ORIGIN and fires after target completion."""
    from repro.lapi.counters import Counter

    t0, t1 = rig2.tasks
    install_sink(t1)
    fired = {}

    def sender():
        cmpl = Counter(rig2.env, "cmpl")
        yield from t0.amsend("user", 1, "sink", {}, b"data", cmpl_cntr=cmpl)
        yield from t0.waitcntr("user", cmpl, 1)
        fired["t"] = rig2.env.now

    def receiver():
        # target must drive its dispatcher for anything to happen
        _id, c = t1.create_counter()
        yield rig2.env.timeout(0)
        while not fired:
            yield from t1.dispatch("user")
            yield rig2.env.timeout(5.0)

    rig2.run(sender(), receiver(), until=1e5)
    assert "t" in fired


def test_reliability_under_loss():
    rig = LapiRig(2, packet_loss_rate=0.12, seed=5, packet_payload=256)
    t0, t1 = rig.tasks
    sink = install_sink(t1)
    tgt_id, tgt_cntr = t1.create_counter()
    data = bytes([i % 256 for i in range(4000)])

    def sender():
        yield from t0.amsend("user", 1, "sink", {}, data, tgt_cntr_id=tgt_id)
        # keep making progress so retransmissions flow
        while tgt_cntr.value == 0 and rig.env.now < 5e6:
            yield from t0.dispatch("user")
            yield rig.env.timeout(100.0)

    def receiver():
        yield from t1.waitcntr("user", tgt_cntr, 1)

    rig.run(sender(), receiver(), until=6e6)
    assert bytes(sink["buf"][: len(data)]) == data
    assert rig.stats[0].retransmissions + rig.stats[1].retransmissions > 0
