"""Property tests pinning LAPI_Rmw atomicity and exactly-once delivery.

The paper's claim (and the RMA subsystem's load-bearing assumption) is
that a remote read-modify-write runs synchronously inside the target's
header handler — no interleaving with other handlers — and that the
transport's duplicate suppression makes it exactly-once even when the
request packet is lost and retransmitted.  The checkable consequences:

* FETCH_AND_ADD from N concurrent origins: the final word is the exact
  sum, and the multiset of fetched previous values is a permutation of
  the prefix sums of *some* serialization of the ops (linearizability).
* COMPARE_AND_SWAP from N origins racing on one word: exactly one wins.
* Under packet loss the same invariants hold and each op applies once.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lapi.counters import Counter
from tests.lapi.conftest import LapiRig


class Word:
    """A remotely-RMW-able scalar (LAPI_Rmw target)."""

    def __init__(self, value=0):
        self.value = value


def _run_faa(n_origins, values, reps, seed, loss):
    """Each origin task fetch-and-adds its values into task 0's word.

    Returns (final_value, prevs) where prevs is the flat list of fetched
    previous values in completion order per origin.
    """
    rig = LapiRig(n_origins + 1, seed=seed, packet_loss_rate=loss)
    target = rig.tasks[0]
    word = Word(0)
    target.address_init("w", word)
    done = [False] * n_origins
    prevs = []

    def origin(i):
        task = rig.tasks[i + 1]
        for r in range(reps):
            cntr = Counter(rig.env, f"prev{i}.{r}")
            rid = yield from task.rmw("user", 0, "w", "FETCH_AND_ADD",
                                      values[i], prev_cntr=cntr)
            yield from task.waitcntr("user", cntr, 1)
            ok, prev = task.rmw_result(rid)
            assert ok
            prevs.append(prev)
        done[i] = True

    def target_proc():
        while not all(done):
            yield from target.dispatch("user")
            yield rig.env.timeout(3.0)

    rig.run(target_proc(), *(origin(i) for i in range(n_origins)),
            until=5e6)
    assert all(done), "an rmw never completed"
    return word.value, prevs


@given(
    values=st.lists(st.integers(min_value=1, max_value=50), min_size=2,
                    max_size=4),
    reps=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_concurrent_faa_is_atomic_and_linearizable(values, reps, seed):
    total, prevs = _run_faa(len(values), values, reps, seed, loss=0.0)
    expected = sum(values) * reps
    assert total == expected
    # linearizability: with strictly positive deltas the word increases
    # monotonically, so the serialization order IS the sorted prevs and
    # every op must fit the chain 0 -> total exactly.
    deltas = sorted(values * reps)
    ordered = sorted(prevs)
    assert ordered[0] == 0, "first applied op did not see the initial word"
    implied = [ordered[k + 1] - ordered[k] for k in range(len(ordered) - 1)]
    implied.append(expected - ordered[-1])
    assert sorted(implied) == deltas, (
        f"prevs {ordered} are not a serialization of deltas {deltas}")


@given(
    n=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
    loss=st.sampled_from([0.0, 0.08, 0.15]),
)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_concurrent_cas_exactly_one_winner(n, seed, loss):
    rig = LapiRig(n + 1, seed=seed, packet_loss_rate=loss)
    target = rig.tasks[0]
    word = Word(0)
    target.address_init("w", word)
    results = {}

    def origin(i):
        task = rig.tasks[i + 1]
        cntr = Counter(rig.env, f"prev{i}")
        rid = yield from task.rmw("user", 0, "w", "COMPARE_AND_SWAP",
                                  i + 1, prev_cntr=cntr, compare_value=0)
        yield from task.waitcntr("user", cntr, 1)
        ok, prev = task.rmw_result(rid)
        assert ok
        results[i] = prev

    def target_proc():
        while len(results) < n:
            yield from target.dispatch("user")
            yield rig.env.timeout(3.0)

    rig.run(target_proc(), *(origin(i) for i in range(n)), until=5e6)
    assert len(results) == n
    winners = [i for i, prev in results.items() if prev == 0]
    assert len(winners) == 1, f"CAS winners: {winners} (results {results})"
    assert word.value == winners[0] + 1
    # every loser fetched the winner's value (the word never changed again)
    for i, prev in results.items():
        if i not in winners:
            assert prev == winners[0] + 1


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_faa_exactly_once_under_loss(seed):
    """Loss + retransmission must not double-apply an rmw."""
    total, prevs = _run_faa(3, [7, 11, 13], 2, seed, loss=0.12)
    assert total == 2 * (7 + 11 + 13)
    assert len(prevs) == 6
    assert len(set(prevs)) == 6  # all distinct: each applied exactly once


def test_rmw_result_is_read_exactly_once():
    """Polling a completed rmw id again raises (retired entry)."""
    import pytest

    from repro.lapi import LapiError

    rig = LapiRig(2)
    t0, t1 = rig.tasks
    word = Word(3)
    t1.address_init("w", word)
    cntr = Counter(rig.env, "prev")
    got = {}

    def origin():
        rid = yield from t0.rmw("user", 1, "w", "FETCH_AND_ADD", 4,
                                prev_cntr=cntr)
        yield from t0.waitcntr("user", cntr, 1)
        got["rid"] = rid

    def tgt():
        while "rid" not in got:
            yield from t1.dispatch("user")
            yield rig.env.timeout(3.0)

    rig.run(origin(), tgt())
    done, prev = t0.rmw_result(got["rid"])
    assert done and prev == 3
    with pytest.raises(LapiError):
        t0.rmw_result(got["rid"])
