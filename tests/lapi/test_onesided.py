"""LAPI_Put / Get / Rmw / Fence / Gfence / Qenv / Senv / counters —
the rest of the paper's Table 1 surface."""

import pytest

from repro.lapi import Lapi, LapiError
from repro.lapi.counters import Counter
from tests.lapi.conftest import LapiRig


class Variable:
    """A remotely-RMW-able scalar (LAPI_Rmw target)."""

    def __init__(self, value=0):
        self.value = value


def spin_dispatch(rig, task, pred, step=5.0, limit=1e6):
    """Drive a task's dispatcher until pred() holds."""

    def proc():
        while not pred() and rig.env.now < limit:
            yield from task.dispatch("user")
            yield rig.env.timeout(step)

    return proc()


def test_put_writes_remote_buffer_and_counts():
    rig = LapiRig(2)
    t0, t1 = rig.tasks
    remote = bytearray(64)
    t1.address_init("rbuf", remote)
    tgt_id, tgt_cntr = t1.create_counter()
    org = Counter(rig.env, "org")

    def sender():
        yield from t0.put("user", 1, "rbuf", 8, b"ONESIDED", tgt_cntr_id=tgt_id,
                          org_cntr=org)
        yield from t0.waitcntr("user", org, 1)

    def receiver():
        yield from t1.waitcntr("user", tgt_cntr, 1)

    rig.run(sender(), receiver())
    assert bytes(remote[8:16]) == b"ONESIDED"
    assert bytes(remote[:8]) == b"\x00" * 8


def test_put_ping_pong_raw_lapi_benchmark_shape():
    """The paper's Fig 10 RAW-LAPI measurement loop: Put + Waitcntr."""
    rig = LapiRig(2)
    t0, t1 = rig.tasks
    bufs = [bytearray(1024), bytearray(1024)]
    for t, b in zip(rig.tasks, bufs):
        t.address_init("pp", b)
    ids = [t.create_counter() for t in rig.tasks]
    done = {}

    def side(me, peer, reps=4):
        task = rig.tasks[me]
        my_id, my_cntr = ids[me]
        peer_id = ids[peer][0]
        for _ in range(reps):
            if me == 0:
                yield from task.put("user", peer, "pp", 0, b"z" * 64,
                                    tgt_cntr_id=peer_id)
                yield from task.waitcntr("user", my_cntr, 1)
            else:
                yield from task.waitcntr("user", my_cntr, 1)
                yield from task.put("user", peer, "pp", 0, b"z" * 64,
                                    tgt_cntr_id=peer_id)
        done[me] = rig.env.now

    rig.run(side(0, 1), side(1, 0))
    assert 0 in done and 1 in done
    rtt = done[0] / 4
    assert 10 < rtt < 500, f"implausible raw-LAPI round trip {rtt} us"


def test_get_reads_remote_buffer():
    rig = LapiRig(2)
    t0, t1 = rig.tasks
    remote = bytearray(b"ABCDEFGHIJKLMNOP")
    t1.address_init("src", remote)
    local = bytearray(4)
    org = Counter(rig.env, "org")
    got = {}

    def origin():
        yield from t0.get("user", 1, "src", 4, 4, local, org_cntr=org)
        yield from t0.waitcntr("user", org, 1)
        got["data"] = bytes(local)

    rig.run(origin(), spin_dispatch(rig, t1, lambda: "data" in got))
    assert got["data"] == b"EFGH"


@pytest.mark.parametrize(
    "op,val,cmp,start,expect_var,expect_prev",
    [
        ("FETCH_AND_ADD", 5, None, 10, 15, 10),
        ("FETCH_AND_OR", 0b0101, None, 0b0011, 0b0111, 0b0011),
        ("SWAP", 99, None, 7, 99, 7),
        ("COMPARE_AND_SWAP", 42, 7, 7, 42, 7),
        ("COMPARE_AND_SWAP", 42, 8, 7, 7, 7),
    ],
)
def test_rmw_operations(op, val, cmp, start, expect_var, expect_prev):
    rig = LapiRig(2)
    t0, t1 = rig.tasks
    var = Variable(start)
    t1.address_init("v", var)
    prev_cntr = Counter(rig.env, "prev")
    result = {}

    def origin():
        rid = yield from t0.rmw("user", 1, "v", op, val, prev_cntr=prev_cntr,
                                compare_value=cmp)
        yield from t0.waitcntr("user", prev_cntr, 1)
        result["rid"] = rid

    rig.run(origin(), spin_dispatch(rig, t1, lambda: "rid" in result))
    done, prev = t0.rmw_result(result["rid"])
    assert done
    assert prev == expect_prev
    assert var.value == expect_var


def test_rmw_unknown_op_rejected():
    rig = LapiRig(2)

    def proc():
        yield from rig.tasks[0].rmw("user", 1, "v", "NONSENSE", 1)

    with pytest.raises(LapiError):
        rig.run(proc())


def test_fence_waits_for_delivery():
    rig = LapiRig(2)
    t0, t1 = rig.tasks
    remote = bytearray(16)
    t1.address_init("r", remote)
    fence_done = {}

    def origin():
        for i in range(4):
            yield from t0.put("user", 1, "r", 0, bytes([i]) * 8)
        yield from t0.fence("user")
        fence_done["t"] = rig.env.now

    rig.run(origin(), spin_dispatch(rig, t1, lambda: "t" in fence_done))
    assert "t" in fence_done
    # after fence, all puts are delivered: buffer holds the last one
    assert bytes(remote[:8]) == bytes([3]) * 8


def test_gfence_synchronises_three_tasks():
    rig = LapiRig(3)
    order = []

    def task_proc(i):
        t = rig.tasks[i]
        yield rig.env.timeout(i * 50.0)  # stagger arrivals
        yield from t.gfence("user")
        order.append((i, rig.env.now))

    rig.run(*[task_proc(i) for i in range(3)])
    assert len(order) == 3
    times = [t for _, t in order]
    # nobody leaves before the last task arrived (t=100)
    assert min(times) >= 100.0


def test_qenv_values():
    rig = LapiRig(4, enhanced=True)
    t2 = rig.tasks[2]
    assert t2.qenv("TASK_ID") == 2
    assert t2.qenv("NUM_TASKS") == 4
    assert t2.qenv("ENHANCED") is True
    assert t2.qenv("INTERRUPT_SET") is False
    assert t2.qenv("MAX_UHDR_SZ") > 0
    with pytest.raises(LapiError):
        t2.qenv("BOGUS")


def test_senv_interrupt_mode_enables_isr_progress():
    """With interrupts on, a target that never polls still completes."""
    rig = LapiRig(2)
    t0, t1 = rig.tasks
    remote = bytearray(32)
    t1.address_init("r", remote)
    t1.senv("INTERRUPT_SET", True)
    tgt_id, tgt_cntr = t1.create_counter()

    def sender():
        yield from t0.put("user", 1, "r", 0, b"VIAIRQ!!", tgt_cntr_id=tgt_id)

    rig.run(sender())
    assert bytes(remote[:8]) == b"VIAIRQ!!"
    assert tgt_cntr.value == 1
    assert rig.stats[1].interrupts >= 1
    with pytest.raises(LapiError):
        t1.senv("BOGUS", 1)


def test_setcntr_getcntr_waitcntr_decrement():
    rig = LapiRig(2)
    t0 = rig.tasks[0]
    c = Counter(rig.env, "c")
    t0.setcntr(c, 5)
    assert t0.getcntr(c) == 5

    def proc():
        yield from t0.waitcntr("user", c, 3)

    rig.run(proc())
    assert c.value == 2


def test_counter_sub_underflow_rejected():
    rig = LapiRig(2)
    c = Counter(rig.env, "c", initial=1)
    with pytest.raises(ValueError):
        c.sub(2)


def test_unknown_address_raises_at_target():
    rig = LapiRig(2)
    t0, t1 = rig.tasks

    def sender():
        yield from t0.put("user", 1, "ghost", 0, b"x")

    def receiver():
        _id, c = t1.create_counter()
        yield from t1.waitcntr("user", c, 1)

    with pytest.raises(LapiError, match="unknown address"):
        rig.run(sender(), receiver())
