"""Shared rig for LAPI tests: N tasks on a simulated switch."""

import numpy as np
import pytest

from repro.hal import Hal
from repro.lapi import Lapi
from repro.machine import Cpu, MachineParams, NodeStats
from repro.network import Adapter, SwitchFabric
from repro.sim import Environment


class LapiRig:
    def __init__(self, n=2, seed=7, enhanced=False, **overrides):
        self.env = Environment()
        self.params = MachineParams(**overrides)
        self.fabric = SwitchFabric(self.env, self.params, rng=np.random.default_rng(seed))
        self.stats = [NodeStats() for _ in range(n)]
        self.cpus = [Cpu(self.env, self.params, self.stats[i]) for i in range(n)]
        self.adapters = [
            Adapter(self.env, self.params, self.fabric, i, self.stats[i]) for i in range(n)
        ]
        self.hals = [
            Hal(self.env, self.cpus[i], self.adapters[i], self.params, self.stats[i],
                self.params.lapi_header_bytes)
            for i in range(n)
        ]
        self.tasks = [
            Lapi(self.env, self.cpus[i], self.hals[i], self.params, self.stats[i],
                 task_id=i, num_tasks=n, enhanced=enhanced)
            for i in range(n)
        ]

    def run(self, *procs, until=1e7):
        ps = [self.env.process(p) for p in procs]
        self.env.run(until=until)
        return ps


@pytest.fixture
def rig2():
    return LapiRig(2)
