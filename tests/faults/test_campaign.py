"""Campaign runner: soak, invariants, metrics surfacing, span instants."""

import pytest

from repro.faults import (
    CampaignResult,
    SOAK_MATRIX,
    builtin_plan,
    check_invariants,
    quiesce,
    run_soak,
    run_workload,
)


# --------------------------------------------------------------- the soak
@pytest.fixture(scope="module")
def soak_results():
    return run_soak(stack="lapi-enhanced", seed=0)


def test_soak_matrix_passes(soak_results):
    failed = [(r.plan, r.workload, r.violations)
              for r in soak_results if not r.ok]
    assert not failed, failed
    assert len(soak_results) == len(SOAK_MATRIX)


def test_soak_actually_injected_faults(soak_results):
    """A chaos soak that injects nothing proves nothing."""
    damage = sum(
        r.fault_counters.get("fault.injected_drops", 0)
        + r.fault_counters.get("fault.extra_delays", 0)
        + r.fault_counters.get("fault.fifo_squeezes", 0)
        for r in soak_results
    )
    assert damage > 0
    assert any(r.retransmissions > 0 for r in soak_results)


def test_soak_results_serialise(soak_results):
    import json

    doc = json.dumps([r.to_dict() for r in soak_results])
    assert "loss-burst" in doc


# ----------------------------------------------------- recovery machinery
def test_faulted_payload_matches_reference():
    _, _, reference = run_workload("pingpong", plan=None, seed=3)
    cluster, _, payload = run_workload(
        "pingpong", plan=builtin_plan("loss-burst"), seed=3)
    assert quiesce(cluster) is not None
    assert payload == reference
    assert not check_invariants(cluster, payload, reference)


def test_fault_counters_surface_in_cluster_snapshot():
    cluster, _, _ = run_workload(
        "pingpong", plan=builtin_plan("loss-burst"), seed=0)
    quiesce(cluster)
    counters = cluster.metrics_snapshot()["cluster"]["counters"]
    assert counters.get("fault.injected_drops", 0) > 0


def test_invariant_checker_flags_corruption():
    cluster, _, payload = run_workload("pingpong", plan=None, seed=0)
    quiesce(cluster)
    violations = check_invariants(cluster, payload, b"not-the-reference")
    assert any("payload corruption" in v for v in violations)


def test_invariant_checker_flags_stuck_state():
    cluster, _, payload = run_workload("pingpong", plan=None, seed=0)
    quiesce(cluster)
    assert not check_invariants(cluster, payload, payload)
    # manufacture damage: a pending send that never completed and a
    # sequence parked in a SenderWindow
    cluster.backends[0].pending_sends["zombie"] = object()
    lapi = next(l for l in cluster.lapis if l is not None)
    flow = next(iter(lapi._flow_tx.values()))
    flow.window.send("orphan-packet")
    violations = check_invariants(cluster, payload, payload)
    assert any("sends stuck pending" in v for v in violations)
    assert any("stuck in SenderWindow" in v for v in violations)


def test_streaming_recovers_from_reorder_storm():
    """Regression: a deferred eager message that finished assembling
    into its EA buffer before the announcement gap filled used to leave
    its matched request incomplete forever (receiver stuck in waitall).
    Reorder storms make deferred announcements routine."""
    _, _, reference = run_workload("streaming", plan=None, seed=0)
    cluster, _, payload = run_workload(
        "streaming", plan=builtin_plan("reorder-storm"), seed=0)
    assert quiesce(cluster) is not None
    assert not check_invariants(cluster, payload, reference)


def test_streaming_recovers_from_chaos():
    _, _, reference = run_workload("streaming", plan=None, seed=4)
    cluster, _, payload = run_workload(
        "streaming", plan=builtin_plan("chaos"), seed=4)
    assert quiesce(cluster) is not None
    assert not check_invariants(cluster, payload, reference)


def test_streaming_workload_recovers_from_fifo_squeeze():
    _, _, reference = run_workload("streaming", plan=None, seed=1)
    cluster, _, payload = run_workload(
        "streaming", plan=builtin_plan("fifo-squeeze"), seed=1)
    assert quiesce(cluster) is not None
    assert not check_invariants(cluster, payload, reference)


def test_campaign_result_shape():
    r = CampaignResult(plan="p", workload="w", stack="s", seed=0, ok=True)
    d = r.to_dict()
    assert set(d) == {
        "plan", "workload", "stack", "seed", "ok", "violations",
        "elapsed_us", "quiesce_us", "retransmissions", "packets_dropped",
        "fault_counters",
    }


# ----------------------------------------------------------- span instants
def test_fault_instants_reach_span_trees_and_perfetto():
    from repro.obs import breakdown as _  # noqa: F401 (module sanity)
    from repro.obs import capture
    from repro.obs.chrometrace import to_chrome_trace
    from repro.obs.spans import build_span_trees

    cluster = capture("lapi-enhanced", 256, mode="polling", seed=0,
                      fault_plan=builtin_plan("loss-burst", rate=0.4))
    fault_records = [r for r in cluster.tracer.records if r.layer == "fault"]
    assert fault_records, "no fault instants traced"
    assert all(r.event in ("drop", "duplicate", "delay")
               for r in fault_records)

    trees = build_span_trees(cluster.tracer, allow_truncated=True)
    names = {s.name for t in trees.values()
             for leg in t.legs for s, _ in leg.walk()}
    names |= {s.name for t in trees.values() for s, _ in t.root.walk()}
    assert names & {"drop", "duplicate", "delay"}, names

    doc = to_chrome_trace(trees)
    instants = [e for e in doc["traceEvents"]
                if e.get("ph") == "i" and e["name"] in ("drop", "delay")]
    assert instants
