"""FaultInjector / FaultPoint verdict mechanics and fault.* metrics."""

from types import SimpleNamespace

import numpy as np
import pytest

from repro.faults import (
    DispatcherStall,
    DuplicateStorm,
    FaultInjector,
    FaultPlan,
    FifoSqueeze,
    LossBurst,
    NodeSlowdown,
    ReorderStorm,
)
from repro.obs import MetricsRegistry


def _packet(src=0, dst=1, **header):
    return SimpleNamespace(src=src, dst=dst, header=header)


def _injector(*events, metrics=None, **kw):
    return FaultInjector(plan=FaultPlan("t", tuple(events)),
                         rng=np.random.default_rng(0), metrics=metrics, **kw)


# ------------------------------------------------------------------ points
def test_inert_sites_yield_no_point():
    inj = _injector(LossBurst(0.0, 100.0, rate=1.0))
    assert inj.point("fabric") is not None
    for site in ("adapter", "dispatcher", "cpu", "storm"):
        assert inj.point(site) is None


def test_node_filter_prunes_events():
    inj = _injector(FifoSqueeze(0.0, 100.0, capacity=1, node=1))
    assert inj.point("adapter", node=0) is None
    assert inj.point("adapter", node=1) is not None


def test_base_loss_keeps_fabric_point_alive():
    inj = FaultInjector(rng=np.random.default_rng(0), base_loss_rate=0.5)
    assert inj.point("fabric") is not None
    quiet = FaultInjector(rng=np.random.default_rng(0))
    assert quiet.point("fabric") is None


def test_live_params_override_static_rate():
    params = SimpleNamespace(packet_loss_rate=0.9)
    inj = FaultInjector(rng=np.random.default_rng(0), params=params)
    assert inj.base_loss_rate == 0.9
    params.packet_loss_rate = 0.0  # heal mid-run, as the tests do
    assert inj.base_loss_rate == 0.0


# ---------------------------------------------------------------- verdicts
def test_loss_burst_drops_inside_window_only():
    reg = MetricsRegistry()
    point = _injector(LossBurst(10.0, 10.0, rate=1.0),
                      metrics=reg).point("fabric")
    assert point.on_packet(_packet(), now=5.0) is None
    verdict = point.on_packet(_packet(), now=12.0)
    assert verdict is not None and verdict.copies == 0
    assert point.on_packet(_packet(), now=25.0) is None
    assert reg.snapshot()["counters"]["fault.injected_drops"] == 1


def test_duplicate_storm_yields_staggered_copies():
    reg = MetricsRegistry()
    point = _injector(DuplicateStorm(0.0, 100.0, rate=1.0, copies=3),
                      metrics=reg).point("fabric")
    verdict = point.on_packet(_packet(), now=1.0)
    assert verdict.copies == 3
    assert len(verdict.extra_delays_us) == 3
    assert len(set(verdict.extra_delays_us)) == 3  # distinct arrivals
    assert reg.snapshot()["counters"]["fault.duplicates"] == 2


def test_reorder_storm_adds_bounded_delay():
    point = _injector(
        ReorderStorm(0.0, 100.0, extra_skew_us=4.0, extra_jitter_us=30.0)
    ).point("fabric")
    verdict = point.on_packet(_packet(), now=1.0)
    assert verdict.copies == 1
    (extra,) = verdict.extra_delays_us
    assert 4.0 <= extra < 34.0


def test_packet_node_scoping():
    point = _injector(LossBurst(0.0, 100.0, rate=1.0, node=1)).point("fabric")
    assert point.on_packet(_packet(src=0, dst=2), now=1.0) is None
    assert point.on_packet(_packet(src=0, dst=1), now=1.0).copies == 0


# ------------------------------------------------- non-packet fault sites
def test_fifo_capacity_clamped_inside_window():
    reg = MetricsRegistry()
    point = _injector(FifoSqueeze(10.0, 10.0, capacity=1, node=0),
                      metrics=reg).point("adapter", node=0)
    assert point.fifo_capacity(8, now=5.0) == 8
    assert point.fifo_capacity(8, now=12.0) == 1
    assert point.fifo_capacity(8, now=30.0) == 8
    assert reg.snapshot()["counters"]["fault.fifo_squeezes"] == 1


def test_dispatcher_stall_window():
    point = _injector(DispatcherStall(0.0, 50.0, stall_us=40.0)
                      ).point("dispatcher", node=0)
    assert point.stall_us(now=10.0) == 40.0
    assert point.stall_us(now=60.0) == 0.0


def test_cpu_slowdown_window():
    point = _injector(NodeSlowdown(0.0, 50.0, factor=2.5, node=1)
                      ).point("cpu", node=1)
    assert point.slowdown(now=10.0) == 2.5
    assert point.slowdown(now=99.0) == 1.0


def test_overlapping_events_take_worst_case():
    point = _injector(
        LossBurst(0.0, 100.0, rate=0.0),
        FifoSqueeze(0.0, 100.0, capacity=4),
        FifoSqueeze(0.0, 100.0, capacity=2),
    ).point("adapter")
    assert point.fifo_capacity(8, now=1.0) == 2


# ------------------------------------------------------------------ safety
def test_inactive_plan_draws_no_randomness():
    """Armed-but-idle injection must not consume the RNG stream."""
    rng = np.random.default_rng(7)
    # fabric point is None only with no fabric events, no loss floor,
    # and no live params
    assert FaultInjector(rng=rng).point("fabric") is None
    params = SimpleNamespace(packet_loss_rate=0.0)
    point = FaultInjector(plan=FaultPlan("late", (LossBurst(1e9, 1.0),)),
                          rng=rng, params=params).point("fabric")
    before = rng.bit_generator.state["state"]["state"]
    for _ in range(50):
        assert point.on_packet(_packet(), now=5.0) is None
    assert rng.bit_generator.state["state"]["state"] == before


def test_injector_rejects_bad_base_rate():
    with pytest.raises(ValueError):
        FaultInjector(base_loss_rate=1.0)
