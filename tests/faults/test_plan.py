"""FaultPlan / FaultEvent: composition, validation, JSON round-trip."""

import pytest

from repro.faults import (
    DispatcherStall,
    DuplicateStorm,
    FaultPlan,
    FifoSqueeze,
    InterruptStorm,
    LossBurst,
    NodeSlowdown,
    PLANS,
    ReorderStorm,
    SITES,
    builtin_plan,
)


# ------------------------------------------------------------- validation
@pytest.mark.parametrize("bad", [
    lambda: LossBurst(at_us=-1.0),
    lambda: LossBurst(duration_us=-0.5),
    lambda: LossBurst(rate=1.5),
    lambda: LossBurst(rate=-0.1),
    lambda: DuplicateStorm(rate=2.0),
    lambda: DuplicateStorm(copies=1),
    lambda: FifoSqueeze(capacity=0),
    lambda: DispatcherStall(stall_us=-1.0),
    lambda: InterruptStorm(period_us=0.0),
    lambda: NodeSlowdown(factor=0.0),
    lambda: ReorderStorm(extra_skew_us=-1.0),
])
def test_invalid_events_rejected(bad):
    with pytest.raises(ValueError):
        bad()


def test_event_window_semantics():
    ev = LossBurst(at_us=10.0, duration_us=5.0, rate=0.5)
    assert ev.end_us == 15.0
    assert not ev.active(9.99)
    assert ev.active(10.0)
    assert ev.active(14.99)
    assert not ev.active(15.0)  # half-open window


def test_node_scoping():
    anywhere = LossBurst(rate=1.0)
    assert anywhere.matches_packet(0, 1)
    assert anywhere.matches_node(3)
    pinned = LossBurst(rate=1.0, node=1)
    assert pinned.matches_packet(0, 1)
    assert pinned.matches_packet(1, 2)
    assert not pinned.matches_packet(0, 2)
    assert pinned.matches_node(1)
    assert not pinned.matches_node(0)


# ------------------------------------------------------------ composition
def test_plan_extend_and_add():
    a = FaultPlan("a", (LossBurst(rate=0.1),))
    b = a.extend(FifoSqueeze(capacity=2), name="ab")
    assert (len(a), len(b)) == (1, 2)
    assert b.name == "ab"
    c = a + FaultPlan("z", (NodeSlowdown(factor=2.0),))
    assert c.name == "a+z"
    assert len(c) == 2


def test_for_site_partitions_events():
    plan = builtin_plan("chaos")
    total = sum(len(plan.for_site(s)) for s in SITES)
    assert total == len(plan)
    assert all(e.site == "fabric" for e in plan.for_site("fabric"))
    with pytest.raises(ValueError):
        plan.for_site("disk")


def test_horizon():
    assert FaultPlan().horizon_us == 0.0
    plan = FaultPlan("p", (LossBurst(10.0, 20.0, rate=0.5),
                           FifoSqueeze(5.0, 100.0, capacity=2)))
    assert plan.horizon_us == 105.0


# ---------------------------------------------------------- serialisation
def test_dict_round_trip():
    plan = builtin_plan("chaos")
    clone = FaultPlan.from_dict(plan.to_dict())
    assert clone == plan
    assert clone.to_dict() == plan.to_dict()


def test_from_dict_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault event kind"):
        FaultPlan.from_dict({"name": "x", "events": [{"kind": "gremlin"}]})


def test_from_dict_rejects_unknown_field():
    with pytest.raises(ValueError, match="unknown field"):
        FaultPlan.from_dict({
            "name": "x",
            "events": [{"kind": "loss_burst", "rate": 0.5, "color": "red"}],
        })


# --------------------------------------------------------------- registry
def test_builtin_plans_cover_registry():
    for name in PLANS:
        plan = builtin_plan(name)
        assert plan.name == name
        assert len(plan) >= 1


def test_builtin_plan_overrides():
    plan = builtin_plan("loss-burst", rate=0.9, duration_us=50.0)
    (ev,) = plan.events
    assert ev.rate == 0.9
    assert ev.duration_us == 50.0


def test_builtin_plan_unknown_name():
    with pytest.raises(KeyError):
        builtin_plan("kernel-panic")
