"""Trace subsystem: event emission, ordering, filtering."""

import numpy as np
import pytest

from repro import SPCluster
from repro.trace import Tracer


class FakeClock:
    now = 5.0


def test_tracer_basics():
    tr = Tracer(FakeClock())
    tr.emit(0, "lapi", "amsend", tgt=1)
    tr.emit(1, "lapi", "hdr_handler", hh="x")
    assert len(tr.records) == 2
    assert tr.records[0].time == 5.0
    assert tr.filter(node=0)[0].event == "amsend"
    assert tr.filter(layer="lapi", event="hdr_handler")[0].fields["hh"] == "x"
    assert tr.filter(hh="x")[0].node == 1
    assert tr.summary()[("lapi", "amsend")] == 1
    assert "amsend" in tr.dump()
    tr.clear()
    assert not tr.records


def test_tracer_capacity_bound():
    tr = Tracer(FakeClock(), capacity=2)
    for i in range(5):
        tr.emit(0, "x", "e")
    assert len(tr.records) == 2
    assert tr.dropped == 3


def test_trace_off_by_default_costs_nothing():
    cl = SPCluster(2)
    assert cl.tracer is None
    assert cl.node_stats[0].tracer is None


def test_eager_message_timeline():
    cl = SPCluster(2, stack="lapi-enhanced", trace=True)

    def program(comm, rank, size):
        if rank == 0:
            yield from comm.send(b"traced!", dest=1, tag=3)
            return None
        buf = bytearray(7)
        yield from comm.recv(buf, source=0, tag=3)
        return None

    cl.run(program)
    tr = cl.tracer
    # sender side: amsend then packet out
    ev0 = tr.events(node=0, layer="lapi")
    assert "amsend" in ev0
    # receiver side: the milestone order of Fig 3
    rx = [r for r in tr.filter(node=1)
          if r.event in ("pkt_rx", "hdr_handler", "matched_posted",
                         "msg_complete", "cmpl_inline")]
    names = [r.event for r in rx]
    assert names.index("pkt_rx") < names.index("hdr_handler")
    assert names.index("hdr_handler") < names.index("msg_complete")
    assert "matched_posted" in names
    times = [r.time for r in rx]
    assert times == sorted(times)


def test_rendezvous_timeline_shows_control_steps():
    cl = SPCluster(2, stack="lapi-enhanced", trace=True)

    def program(comm, rank, size):
        if rank == 0:
            yield from comm.send(bytes(20000), dest=1)
            return None
        buf = bytearray(20000)
        yield from comm.recv(buf, source=0)
        return None

    cl.run(program)
    tr = cl.tracer
    hh_names = [r.fields["hh"] for r in tr.filter(layer="lapi", event="hdr_handler")]
    assert "mpi_rts" in hh_names
    assert "mpi_rts_ack" in hh_names
    assert "mpi_rdata" in hh_names
    # rts handled before its ack, ack before the data
    def first(hh):
        return next(r.time for r in tr.filter(layer="lapi", event="hdr_handler")
                    if r.fields["hh"] == hh)
    assert first("mpi_rts") < first("mpi_rts_ack") < first("mpi_rdata")


def test_base_variant_traces_thread_handoff():
    cl = SPCluster(2, stack="lapi-base", trace=True)

    def program(comm, rank, size):
        if rank == 0:
            yield from comm.send(b"x" * 50, dest=1)
            return None
        buf = bytearray(50)
        yield from comm.recv(buf, source=0)
        return None

    cl.run(program)
    assert cl.tracer.filter(event="cmpl_queued_to_thread")
    assert cl.tracer.filter(event="cmpl_thread_run")


def test_early_arrival_traced():
    cl = SPCluster(2, stack="lapi-enhanced", trace=True)

    def program(comm, rank, size):
        if rank == 0:
            yield from comm.send(b"early", dest=1)
            return None
        yield from comm.probe(source=0)
        buf = bytearray(5)
        yield from comm.recv(buf, source=0)
        return None

    cl.run(program)
    assert cl.tracer.filter(layer="mpci", event="early_arrival")
