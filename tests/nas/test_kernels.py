"""Every NAS mini-kernel verifies against its serial reference,
on both protocol stacks and at multiple node counts."""

import numpy as np
import pytest

from repro import SPCluster
from repro.nas import KERNELS, run_kernel

ALL = sorted(KERNELS)


@pytest.mark.parametrize("kernel", ALL)
@pytest.mark.parametrize("stack", ["native", "lapi-enhanced"])
def test_kernel_verifies_on_4_nodes(kernel, stack):
    cluster = SPCluster(4, stack=stack)
    result = run_kernel(kernel, cluster)
    for outcome in result.values:
        assert outcome.verified, f"{kernel}/{stack}: {outcome.detail}"
    assert result.elapsed_us > 0


@pytest.mark.parametrize("kernel", ALL)
def test_kernel_verifies_on_2_nodes(kernel):
    cluster = SPCluster(2, stack="lapi-enhanced")
    result = run_kernel(kernel, cluster)
    for outcome in result.values:
        assert outcome.verified, f"{kernel}: {outcome.detail}"


def test_kernels_checksums_agree_across_stacks():
    """The numerics must be independent of the transport."""
    for kernel in ALL:
        sums = set()
        for stack in ("native", "lapi-base", "lapi-counters", "lapi-enhanced"):
            cluster = SPCluster(4, stack=stack)
            result = run_kernel(kernel, cluster)
            sums.add(round(result.values[0].checksum, 9))
        assert len(sums) == 1, f"{kernel}: checksum differs across stacks: {sums}"


def test_unknown_kernel_rejected():
    with pytest.raises(KeyError, match="unknown NAS kernel"):
        run_kernel("nope", SPCluster(2))


def test_ep_serial_reference_matches_parallel_counts():
    from repro.nas.ep import serial_reference

    counts, sx, sy = serial_reference(2048)
    assert counts.sum() > 0
    assert np.isfinite(sx) and np.isfinite(sy)


def test_is_handles_uneven_buckets():
    cluster = SPCluster(4, stack="lapi-enhanced")
    result = run_kernel("is", cluster, n_local=1000)
    assert all(o.verified for o in result.values)


def test_cg_converges_tightly():
    cluster = SPCluster(4, stack="lapi-enhanced")
    result = run_kernel("cg", cluster, n=128, iters=40)
    for o in result.values:
        assert o.verified
        assert o.detail < 1e-8


def test_lu_different_block_sizes():
    for block in (8, 16, 32):
        cluster = SPCluster(4, stack="lapi-enhanced")
        result = run_kernel("lu", cluster, block=block)
        assert all(o.verified for o in result.values), f"block={block}"
