"""NAS problem classes: W verifies too, and scales over S."""

import pytest

from repro import SPCluster
from repro.nas import KERNELS, run_kernel
from repro.nas.common import KERNEL_CLASSES


def test_every_kernel_has_both_classes():
    for k in KERNELS:
        assert set(KERNEL_CLASSES[k]) == {"S", "W"}


@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_class_w_verifies(kernel):
    res = run_kernel(kernel, SPCluster(4), cls="W")
    assert all(o.verified for o in res.values)


def test_class_w_takes_longer_than_s():
    for kernel in ("is", "lu"):
        s = run_kernel(kernel, SPCluster(4), cls="S").elapsed_us
        w = run_kernel(kernel, SPCluster(4), cls="W").elapsed_us
        assert w > 1.3 * s, kernel


def test_unknown_class_rejected():
    with pytest.raises(KeyError, match="no class"):
        run_kernel("ep", SPCluster(2), cls="Z")


def test_overrides_beat_class_params():
    res = run_kernel("cg", SPCluster(4), cls="S", iters=40)
    assert all(o.verified for o in res.values)
