"""The artifact regression gate (``python -m repro.bench.regress``)."""

import json

import pytest

from repro.bench.artifact import make_artifact, write_artifact
from repro.bench.regress import compare_artifacts, main


def _doc(lat=10.0, imp=5.0, name="toy", sizes=(4,)):
    return make_artifact(
        name,
        params={"sizes": list(sizes), "reps": 3},
        results=[{"size": s, "lat_us": lat, "improvement_%": imp}
                 for s in sizes],
    )


@pytest.fixture
def baseline(tmp_path):
    base = tmp_path / "baselines"
    write_artifact(_doc(), base)
    return base / "BENCH_toy.json"


def _write(tmp_path, doc, stem="cur"):
    d = tmp_path / stem
    return write_artifact(doc, d)


def test_identical_artifacts_pass(tmp_path, baseline):
    cur = _write(tmp_path, _doc())
    assert main([str(baseline), str(cur)]) == 0


def test_regression_fails(tmp_path, baseline, capsys):
    cur = _write(tmp_path, _doc(lat=11.0))  # +10% > the 5% default
    assert main([str(baseline), str(cur)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    assert "results[size=4].lat_us" in out


def test_improvement_within_tolerance_passes(tmp_path, baseline):
    cur = _write(tmp_path, _doc(lat=10.3))  # 3% < 5%
    assert main([str(baseline), str(cur)]) == 0


def test_improvement_pct_gets_absolute_band(tmp_path, baseline):
    # 5.0 → 6.5 is +30% relative but only 1.5 points — inside the
    # builtin ±2-point band for *improvement_%* metrics
    assert main([str(baseline),
                 str(_write(tmp_path, _doc(imp=6.5), "a"))]) == 0
    assert main([str(baseline),
                 str(_write(tmp_path, _doc(imp=8.5), "b"))]) == 1


def test_tol_override_widens_the_gate(tmp_path, baseline):
    cur = _write(tmp_path, _doc(lat=11.0))
    assert main([str(baseline), str(cur),
                 "--tol", "*lat_us=0.25"]) == 0
    assert main([str(baseline), str(cur),
                 "--tol", "*lat_us=0.25", "--tol", "*lat_us=0.01"]) == 1


def test_param_drift_is_not_comparable(tmp_path, baseline):
    doc = _doc()
    doc["params"]["reps"] = 99
    assert main([str(baseline), str(_write(tmp_path, doc))]) == 1


def test_schema_mismatch_fails(tmp_path, baseline):
    cur = _write(tmp_path, _doc())
    doc = json.loads(cur.read_text())
    doc["schema"] = "repro-bench/1"
    cur.write_text(json.dumps(doc))
    assert main([str(baseline), str(cur)]) == 1


def test_directory_mode(tmp_path):
    base, cur = tmp_path / "base", tmp_path / "cur"
    write_artifact(_doc(), base)
    write_artifact(_doc(name="other"), base)
    write_artifact(_doc(), cur)
    write_artifact(_doc(name="other", lat=20.0), cur)
    assert main([str(base), str(cur)]) == 1  # "other" regressed
    write_artifact(_doc(name="other"), cur)
    assert main([str(base), str(cur)]) == 0


def test_missing_current_artifact_fails(tmp_path):
    base, cur = tmp_path / "base", tmp_path / "cur"
    write_artifact(_doc(), base)
    cur.mkdir()
    assert main([str(base), str(cur)]) == 1


def test_file_vs_directory_is_a_usage_error(tmp_path, baseline):
    assert main([str(baseline), str(tmp_path)]) == 2


def test_row_disappearance_fails():
    base = _doc(sizes=(4, 16))
    cur = _doc(sizes=(4,))
    deltas = compare_artifacts(base, cur)
    bad = [d for d in deltas if not d.ok]
    assert any("size=16" in d.path for d in bad)


def test_checked_in_baseline_matches_itself():
    """The seeded baseline passes its own gate (what CI regenerates
    must be compared against *something* that is already green)."""
    from pathlib import Path

    baseline = (Path(__file__).resolve().parents[2]
                / "benchmarks" / "baselines" / "BENCH_fig11_latency.json")
    assert baseline.exists()
    assert main([str(baseline), str(baseline)]) == 0
