"""Property tests: histogram conservation and breakdown partitioning."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry, PHASES
from repro.obs.registry import Histogram

samples = st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False,
              allow_infinity=False),
    min_size=0, max_size=200,
)


@settings(max_examples=50, deadline=None)
@given(samples)
def test_bucket_counts_sum_to_observation_count(xs):
    h = MetricsRegistry().histogram("t")
    for x in xs:
        h.observe(x)
    assert sum(h.buckets) == h.count == len(xs)


@settings(max_examples=50, deadline=None)
@given(samples, st.integers(min_value=2, max_value=40))
def test_every_sample_lands_in_exactly_one_bucket(xs, nbuckets):
    h = Histogram("t", nbuckets=nbuckets)
    for x in xs:
        idx = h.bucket_index(x, nbuckets)
        assert 0 <= idx < nbuckets
        lo = 0.0 if idx == 0 else float(1 << (idx - 1))
        hi = h.upper_bounds()[idx]
        assert lo <= x or idx == 0
        assert x < hi or idx == nbuckets - 1
        h.observe(x)
    assert sum(h.buckets) == len(xs)


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=0.0, max_value=1e12, allow_nan=False))
def test_bucket_index_is_monotone(x):
    # doubling a sample never decreases its bucket
    assert Histogram.bucket_index(2 * x) >= Histogram.bucket_index(x)


@settings(max_examples=25, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    st.lists(st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
             min_size=len(PHASES), max_size=len(PHASES)),
)
def test_breakdown_phases_sum_to_end_to_end(start, durations):
    """A breakdown built from telescoping timestamps partitions its
    interval exactly (the construction the profiler uses)."""
    from repro.obs import Breakdown

    t = start
    phases = {}
    for name, d in zip(PHASES, durations):
        phases[name] = d
        t += d
    b = Breakdown(src=0, dst=1, key=0, bytes=8, start=start, end=t,
                  phases=phases)
    assert abs(sum(b.phases.values()) - b.end_to_end) <= 1e-6 * max(1.0, t)
