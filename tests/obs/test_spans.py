"""Causal span trees: coverage, determinism, and breakdown consistency."""

import pytest

from repro.bench.harness import pingpong_capture
from repro.obs import (
    TruncatedTraceError,
    build_span_trees,
    lapi_breakdowns,
    pipes_breakdowns,
    render_text,
)
from repro.obs.spans import TRACKS, _DATA_LEGS
from repro.trace import Tracer

LAPI_STACKS = ("lapi-base", "lapi-counters", "lapi-enhanced")
ALL_STACKS = LAPI_STACKS + ("native",)
SIZES = (256, 16384)  # eager and rendezvous


@pytest.fixture(scope="module")
def captures():
    return {
        (stack, size): pingpong_capture(stack, size, reps=3)
        for stack in ALL_STACKS
        for size in SIZES
    }


@pytest.mark.parametrize("stack", ALL_STACKS)
@pytest.mark.parametrize("size", SIZES)
def test_no_orphans_and_complete(captures, stack, size):
    trees = build_span_trees(captures[stack, size].tracer)
    assert trees
    for mid, tree in trees.items():
        assert tree.orphans == [], (stack, size, mid, tree.orphans)
        assert tree.complete, (stack, size, mid)


@pytest.mark.parametrize("stack", ALL_STACKS)
@pytest.mark.parametrize("size", SIZES)
def test_every_mid_record_lands_in_a_tree(captures, stack, size):
    tracer = captures[stack, size].tracer
    trees = build_span_trees(tracer)
    with_mid = [r for r in tracer.records if "mid" in r.fields]
    assert sum(len(t.records) for t in trees.values()) == len(with_mid)


@pytest.mark.parametrize("stack", ALL_STACKS)
@pytest.mark.parametrize("size", SIZES)
def test_reconstruction_is_byte_identical(captures, stack, size):
    tracer = captures[stack, size].tracer
    first = render_text(build_span_trees(tracer))
    second = render_text(build_span_trees(tracer))
    assert first == second
    assert first.strip()


@pytest.mark.parametrize("stack", ALL_STACKS)
@pytest.mark.parametrize("size", SIZES)
def test_span_wellformedness(captures, stack, size):
    trees = build_span_trees(captures[stack, size].tracer)
    for tree in trees.values():
        for span, _depth in tree.root.walk():
            assert span.end >= span.start, span
            assert span.track in TRACKS, span
        for leg in tree.legs:
            assert tree.root.start <= leg.start <= leg.end <= tree.root.end


@pytest.mark.parametrize("stack", LAPI_STACKS)
@pytest.mark.parametrize("size", SIZES)
def test_leaf_sum_matches_lapi_breakdowns(captures, stack, size):
    """Per message, leaf span durations sum to the Fig 10 total."""
    tracer = captures[stack, size].tracer
    trees = build_span_trees(tracer)
    by_mid = {}
    for b in lapi_breakdowns(tracer):
        by_mid[b.mid] = by_mid.get(b.mid, 0.0) + b.end_to_end
    assert by_mid
    for mid, total in by_mid.items():
        assert trees[mid].leaf_total == pytest.approx(total, abs=1e-9), mid


@pytest.mark.parametrize("size", SIZES)
def test_leaf_sum_matches_pipes_breakdowns(captures, size):
    """Native: the data legs' leaves sum to the Fig 10 total (control
    frames — cts, bfree — have wire time the breakdown never counts)."""
    tracer = captures["native", size].tracer
    trees = build_span_trees(tracer)
    by_mid = {}
    for b in pipes_breakdowns(tracer):
        by_mid[b.mid] = by_mid.get(b.mid, 0.0) + b.end_to_end
    assert by_mid
    for mid, total in by_mid.items():
        data_leaves = sum(
            s.duration
            for leg in trees[mid].legs
            if leg.name in _DATA_LEGS
            for s in leg.leaves()
        )
        assert data_leaves == pytest.approx(total, abs=1e-9), mid


def test_rendezvous_has_handshake_legs(captures):
    trees = build_span_trees(captures["lapi-enhanced", 16384].tracer)
    names = {leg.name for t in trees.values() for leg in t.legs}
    assert {"rts", "rts_ack", "rdata"} <= names


def test_eager_is_single_leg(captures):
    trees = build_span_trees(captures["lapi-enhanced", 256].tracer)
    for tree in trees.values():
        assert [leg.name for leg in tree.legs] == ["eager"]


def test_base_variant_completion_rides_the_cmpl_track(captures):
    trees = build_span_trees(captures["lapi-base", 256].tracer)
    leaves = [s for t in trees.values() for s in t.root.leaves()]
    switches = [s for s in leaves if s.name == "thread_switch"]
    assert switches and all(s.track == "cmpl" for s in switches)
    assert all(s.duration > 0 for s in switches)


# -------------------------------------------------------- interrupt mode
def test_interrupt_dwell_is_its_own_phase():
    """Fig 13 methodology: native hysteresis dwell shows up as the
    ``interrupt`` phase, both in the spans and in the breakdowns."""
    cluster = pingpong_capture("native", 8192, reps=2, interrupt_mode=True)
    trees = build_span_trees(cluster.tracer)
    intr = [
        s for t in trees.values() for s in t.root.leaves()
        if s.name == "interrupt"
    ]
    assert sum(s.duration for s in intr) > 0.0
    downs = pipes_breakdowns(cluster.tracer)
    assert sum(b.phases["interrupt"] for b in downs) > 0.0
    # the dwell is carved out of copy, not double-counted
    for b in downs:
        assert sum(b.phases.values()) == pytest.approx(b.end_to_end, abs=1e-9)


def test_lapi_isr_has_no_hysteresis_dwell():
    cluster = pingpong_capture("lapi-enhanced", 8192, reps=2,
                               interrupt_mode=True)
    downs = lapi_breakdowns(cluster.tracer)
    assert downs
    assert all(b.phases["interrupt"] == 0.0 for b in downs)


# ------------------------------------------------------------ truncation
def test_truncated_capture_refuses_and_names_the_layer():
    class _Clock:
        now = 0.0

    t = Tracer(_Clock(), capacity=1)
    t.emit(0, "lapi", "amsend", msg=0, tgt=1, bytes=4)
    t.emit(0, "lapi", "amsend", msg=1, tgt=1, bytes=4)
    t.emit(0, "pipes", "frame_send", fid=0, dst=1, bytes=4)
    t.emit(0, "lapi", "pkt_tx", msg=0, bytes=4)
    assert t.dropped_by_layer == {"lapi": 2, "pipes": 1}
    with pytest.raises(TruncatedTraceError, match="lapi"):
        build_span_trees(t)
    # tolerated when asked — partial trees beat no trees
    build_span_trees(t, allow_truncated=True)
