"""Benchmark artifact schema: make, validate, round-trip, CLI."""

import json

import pytest

from repro.bench.artifact import (
    SCHEMA,
    load_artifact,
    main,
    make_artifact,
    validate_artifact,
    write_artifact,
)

ROWS = [{"size": 1, "us": 10.5}, {"size": 1024, "us": 42.0}]


def _doc(**overrides):
    doc = make_artifact("demo", {"sizes": [1, 1024]}, list(ROWS))
    doc.update(overrides)
    return doc


def test_make_artifact_is_valid():
    assert validate_artifact(_doc()) == []


def test_round_trip(tmp_path):
    path = write_artifact(_doc(), tmp_path)
    assert path.name == "BENCH_demo.json"
    assert load_artifact(path)["results"] == ROWS


def test_write_is_deterministic(tmp_path):
    a = write_artifact(_doc(), tmp_path / "a").read_bytes()
    b = write_artifact(_doc(), tmp_path / "b").read_bytes()
    assert a == b


@pytest.mark.parametrize(
    "mutation, fragment",
    [
        ({"schema": "repro-bench/0"}, "schema"),
        ({"name": "bad name!"}, "name"),
        ({"params": []}, "params"),
        ({"results": []}, "results"),
        ({"results": [{"a": 1}, {"b": 2}]}, "keys differ"),
        ({"results": [{"a": [1, 2]}]}, "scalar"),
        ({"metrics": {"cluster": {}}}, "aggregate"),
        ({"breakdown": {}}, "breakdown"),
        ({"breakdown": {"x": {"count": 1, "phases_us": {"wire": 1.0}}}},
         "phases_us"),
    ],
)
def test_invalid_documents_are_rejected(mutation, fragment):
    problems = validate_artifact(_doc(**mutation))
    assert problems, mutation
    assert any(fragment in p for p in problems), problems


def test_write_refuses_invalid(tmp_path):
    with pytest.raises(ValueError):
        write_artifact(_doc(schema="nope"), tmp_path)


def test_breakdown_section_validates():
    from repro.obs import summarize

    doc = make_artifact("demo", {}, list(ROWS),
                        breakdown={"lapi-enhanced": summarize([])})
    assert validate_artifact(doc) == []


def test_cli_validate(tmp_path, capsys):
    good = write_artifact(_doc(), tmp_path)
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text(json.dumps({"schema": SCHEMA, "name": "bad"}))
    assert main(["validate", str(good)]) == 0
    assert main(["validate", str(good), str(bad)]) == 1
    out = capsys.readouterr().out
    assert "OK" in out and "INVALID" in out


def test_cli_usage_error():
    assert main([]) == 2
