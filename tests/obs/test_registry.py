"""The metrics registry: typed instruments, snapshots, merging."""

import json
import math

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


# ------------------------------------------------------------- counters
def test_counter_incr_and_set():
    r = MetricsRegistry()
    c = r.counter("x")
    c.incr()
    c.incr(4)
    assert c.value == 5
    c.set(2)
    assert r.counter("x").value == 2  # get-or-create returns the same object
    assert r.counter("x") is c


def test_counter_value_of_untouched_name_is_zero():
    r = MetricsRegistry()
    assert r.counter_value("never.created") == 0
    assert "never.created" not in r.snapshot()["counters"]


# --------------------------------------------------------------- gauges
def test_gauge_tracks_high_water():
    r = MetricsRegistry()
    g = r.gauge("depth")
    g.set(3)
    g.set(7)
    g.set(1)
    assert g.value == 1
    assert g.high_water == 7
    g.add(10)
    assert g.value == 11
    assert g.high_water == 11
    g.add(-11)
    assert g.value == 0
    assert g.high_water == 11


# ----------------------------------------------------------- histograms
def test_histogram_log2_bucket_edges():
    # bucket 0 holds x < 1; bucket i holds [2^(i-1), 2^i)
    assert Histogram.bucket_index(0.0) == 0
    assert Histogram.bucket_index(0.999) == 0
    assert Histogram.bucket_index(1.0) == 1
    assert Histogram.bucket_index(1.999) == 1
    assert Histogram.bucket_index(2.0) == 2
    assert Histogram.bucket_index(3.999) == 2
    assert Histogram.bucket_index(4.0) == 3


def test_histogram_observe_clamps_to_last_bucket():
    r = MetricsRegistry()
    h = r.histogram("lat", nbuckets=4)
    h.observe(1e12)
    assert h.buckets[-1] == 1
    assert h.count == 1


def test_histogram_rejects_negative():
    h = MetricsRegistry().histogram("lat")
    with pytest.raises(ValueError):
        h.observe(-0.5)


def test_histogram_sum_and_count():
    h = MetricsRegistry().histogram("lat")
    for x in (0.5, 1.5, 1.5, 100.0):
        h.observe(x)
    assert h.count == 4
    assert math.isclose(h.total, 103.5)
    assert sum(h.buckets) == 4


# ----------------------------------------------------- name collisions
def test_cross_type_name_collision_raises():
    r = MetricsRegistry()
    r.counter("x")
    with pytest.raises(ValueError):
        r.gauge("x")
    with pytest.raises(ValueError):
        r.histogram("x")


# ------------------------------------------------------------ snapshots
def test_snapshot_is_sorted_and_json_able():
    r = MetricsRegistry()
    r.counter("b").incr()
    r.counter("a").incr(2)
    r.gauge("g").set(5)
    r.histogram("h").observe(3.0)
    snap = r.snapshot()
    assert list(snap["counters"]) == ["a", "b"]
    assert snap["gauges"]["g"] == {"value": 5, "high_water": 5}
    assert snap["histograms"]["h"]["count"] == 1
    json.dumps(snap)  # must not raise


def test_snapshot_is_a_copy():
    r = MetricsRegistry()
    r.counter("a").incr()
    snap = r.snapshot()
    r.counter("a").incr()
    assert snap["counters"]["a"] == 1


# -------------------------------------------------------------- merging
def test_merged_sums_counters_and_histograms_maxes_high_water():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("c").incr(2)
    b.counter("c").incr(3)
    b.counter("only_b").incr()
    a.gauge("g").set(10)
    b.gauge("g").set(4)
    a.histogram("h").observe(1.0)
    b.histogram("h").observe(2.0)
    m = MetricsRegistry.merged([a, b])
    snap = m.snapshot()
    assert snap["counters"]["c"] == 5
    assert snap["counters"]["only_b"] == 1
    assert snap["gauges"]["g"]["high_water"] == 10
    assert snap["histograms"]["h"]["count"] == 2
