"""Perfetto/Chrome trace_event export of span trees."""

import json

import pytest

from repro.bench.harness import pingpong_capture
from repro.obs import build_span_trees, to_chrome_trace, write_chrome_trace

VALID_PH = {"X", "i", "s", "f", "M"}


@pytest.fixture(scope="module")
def trees():
    return build_span_trees(pingpong_capture("lapi-enhanced", 16384,
                                             reps=2).tracer)


@pytest.fixture(scope="module")
def trace(trees):
    return to_chrome_trace(trees)


def test_trace_event_structure(trace):
    assert set(trace) == {"traceEvents", "displayTimeUnit"}
    for ev in trace["traceEvents"]:
        assert ev["ph"] in VALID_PH, ev
        assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
        if ev["ph"] == "X":
            assert ev["dur"] >= 0.0
        if ev["ph"] != "M":
            assert ev["ts"] >= 0.0
    # round-trips through JSON (what Perfetto actually parses)
    json.loads(json.dumps(trace))


def test_process_and_thread_metadata(trace):
    meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
    procs = {e["pid"]: e["args"]["name"] for e in meta
             if e["name"] == "process_name"}
    assert procs[0] == "fabric"
    assert procs[1] == "node 0" and procs[2] == "node 1"
    threads = {(e["pid"], e["tid"]): e["args"]["name"] for e in meta
               if e["name"] == "thread_name"}
    assert threads[(0, 1)] == "wire"
    assert threads[(1, 1)] == "user task"
    assert threads[(2, 2)] == "dispatcher"


def test_flow_arrows_pair_up(trace):
    starts = [e for e in trace["traceEvents"] if e["ph"] == "s"]
    ends = [e for e in trace["traceEvents"] if e["ph"] == "f"]
    assert starts
    assert {e["id"] for e in starts} == {e["id"] for e in ends}
    by_id = {e["id"]: e for e in starts}
    for fin in ends:
        assert fin["ts"] >= by_id[fin["id"]]["ts"]  # arrows go forward in time
        assert fin["pid"] != by_id[fin["id"]]["pid"]  # and cross nodes


def test_every_span_has_its_mid(trees, trace):
    xs = [e for e in trace["traceEvents"] if e["ph"] in ("X", "i")]
    assert xs
    assert all(e["args"].get("mid") in trees for e in xs)


def test_writer_is_deterministic(trees, tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    write_chrome_trace(trees, a)
    write_chrome_trace(build_span_trees(
        pingpong_capture("lapi-enhanced", 16384, reps=2).tracer), b)
    assert a.read_bytes() == b.read_bytes()
    json.loads(a.read_text())
