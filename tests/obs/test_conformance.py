"""Protocol-conformance sweep: exact counter deltas per stack.

A fixed eager ping-pong (2 nodes, 3 reps each way, 256 B — six one-way
messages total) must produce exactly the counter deltas each protocol
stack's cost model promises:

- every LAPI variant moves each message with **one** copy (the header
  handler's assemble into the user buffer);
- the native stack pays **four** copies per message — the send-side
  staging into the pipe buffer and HAL send buffer, the receive-side
  reordering copy and the final copy to the user buffer (two extra per
  side vs LAPI, the paper's Fig 11/12 argument);
- the base variant runs every completion handler on the separate LAPI
  completion thread (nonzero context switches); counters avoids the
  handler entirely for eager data; enhanced runs it inline in the
  dispatcher (zero context switches).
"""

import pytest

from repro.cluster import SPCluster

SIZE = 256
REPS = 3
MSGS = 2 * REPS  # one-way messages: REPS each direction


def run_pingpong(stack: str):
    cluster = SPCluster(2, stack=stack)

    def program(comm, rank, size):
        payload = bytes(SIZE)
        buf = bytearray(SIZE)
        for _ in range(REPS):
            if rank == 0:
                yield from comm.send(payload, dest=1)
                yield from comm.recv(buf, source=1)
            else:
                yield from comm.recv(buf, source=0)
                yield from comm.send(payload, dest=0)
        return None

    return cluster.run(program)


@pytest.fixture(scope="module")
def results():
    return {
        stack: run_pingpong(stack)
        for stack in ("lapi-base", "lapi-counters", "lapi-enhanced", "native")
    }


LAPI_STACKS = ("lapi-base", "lapi-counters", "lapi-enhanced")


# ----------------------------------------------------- shared invariants
@pytest.mark.parametrize(
    "stack", ["lapi-base", "lapi-counters", "lapi-enhanced", "native"]
)
def test_message_counts(results, stack):
    agg = results[stack].metrics["aggregate"]["counters"]
    assert agg["msgs_sent"] == MSGS
    assert agg["msgs_received"] == MSGS
    assert agg["eager_sends"] == MSGS
    assert agg["mpi.proto.eager.standard"] == MSGS
    assert agg.get("early_arrivals", 0) == 0


# --------------------------------------------------------------- copies
@pytest.mark.parametrize("stack", LAPI_STACKS)
def test_lapi_single_copy_per_message(results, stack):
    agg = results[stack].metrics["aggregate"]["counters"]
    assert agg["copies"] == MSGS  # one assemble copy per message


def test_native_pays_two_extra_copies_per_side(results):
    agg = results["native"].metrics["aggregate"]["counters"]
    assert agg["copies"] == 4 * MSGS
    # ...and they are the Pipes staging/reordering copies, byte for byte
    assert agg["pipes.bytes_staged"] == SIZE * MSGS
    assert agg["pipes.bytes_reordered"] == SIZE * MSGS
    assert agg["pipes.frames_sent"] == MSGS


# ------------------------------------------------- completion machinery
def test_base_runs_completion_handlers_on_thread(results):
    agg = results["lapi-base"].metrics["aggregate"]["counters"]
    assert agg["cmpl_handlers_threaded"] == MSGS
    assert agg["cmpl_handlers_inline"] == 0
    assert agg["ctx_switches"] > 0


def test_counters_variant_needs_no_completion_handler(results):
    agg = results["lapi-counters"].metrics["aggregate"]["counters"]
    assert agg["cmpl_handlers_threaded"] == 0
    assert agg["cmpl_handlers_inline"] == 0
    assert agg["ctx_switches"] == 0


def test_enhanced_runs_completion_handlers_inline(results):
    agg = results["lapi-enhanced"].metrics["aggregate"]["counters"]
    assert agg["cmpl_handlers_inline"] == MSGS
    assert agg["cmpl_handlers_threaded"] == 0
    assert agg["ctx_switches"] == 0


# ------------------------------------------------------ LAPI op counters
@pytest.mark.parametrize("stack", LAPI_STACKS)
def test_lapi_op_counters(results, stack):
    agg = results[stack].metrics["aggregate"]["counters"]
    assert agg["lapi.amsend"] == MSGS
    assert agg["lapi.hdr.mpi_eager"] == MSGS
    assert agg["hdr_handlers_run"] == MSGS
    assert agg["lapi.put"] == 0
    assert agg["lapi.get"] == 0


def test_native_has_no_lapi_metrics(results):
    agg = results["native"].metrics["aggregate"]["counters"]
    assert not any(k.startswith("lapi.") for k in agg)
    assert agg["hdr_handlers_run"] == 0


# ----------------------------------------------------------- sim kernel
@pytest.mark.parametrize(
    "stack", ["lapi-base", "lapi-counters", "lapi-enhanced", "native"]
)
def test_sim_kernel_metrics_present(results, stack):
    cl = results[stack].metrics["cluster"]
    assert cl["counters"]["sim.events_popped"] > 0
    assert cl["counters"]["sim.processes_started"] >= 2
    assert cl["gauges"]["sim.heap_depth"]["high_water"] >= 1


def test_gauges_drain_cleanly(results):
    for stack, res in results.items():
        gauges = res.metrics["aggregate"]["gauges"]
        assert gauges["mpi.ea_bytes"]["value"] == 0, stack
        assert gauges["mpi.unexpected_depth"]["value"] == 0, stack
