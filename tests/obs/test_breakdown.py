"""The latency-breakdown profiler (paper Fig 10 as data)."""

import pytest

from repro.bench.harness import pingpong_breakdown
from repro.obs import PHASES, TruncatedTraceError, lapi_breakdowns
from repro.trace import Tracer

ALL_STACKS = ("lapi-base", "lapi-counters", "lapi-enhanced", "native")


@pytest.fixture(scope="module")
def breakdowns():
    return {
        stack: pingpong_breakdown(stack, 256, reps=3) for stack in ALL_STACKS
    }


@pytest.mark.parametrize("stack", ALL_STACKS)
def test_every_data_message_gets_a_breakdown(breakdowns, stack):
    summary, downs = breakdowns[stack]
    assert summary["count"] == 6  # 3 reps each way
    assert all(b.bytes == 256 for b in downs)


@pytest.mark.parametrize("stack", ALL_STACKS)
def test_phases_partition_end_to_end(breakdowns, stack):
    _summary, downs = breakdowns[stack]
    for b in downs:
        assert set(b.phases) == set(PHASES)
        assert sum(b.phases.values()) == pytest.approx(b.end_to_end, abs=1e-9)
        assert all(v >= 0.0 for v in b.phases.values()), b.phases


def test_base_pays_the_thread_switch(breakdowns):
    summary, _ = breakdowns["lapi-base"]
    assert summary["phases_us"]["thread_switch"] > 0.0


@pytest.mark.parametrize("stack", ["lapi-counters", "lapi-enhanced", "native"])
def test_only_base_pays_the_thread_switch(breakdowns, stack):
    summary, _ = breakdowns[stack]
    assert summary["phases_us"]["thread_switch"] == 0.0


def test_base_slowdown_is_mostly_the_switch(breakdowns):
    """The §5 claim, quantified: the Base-vs-Enhanced latency gap is
    dominated by the completion-handler context switch."""
    base, _ = breakdowns["lapi-base"]
    enh, _ = breakdowns["lapi-enhanced"]
    gap = base["end_to_end_us"] - enh["end_to_end_us"]
    assert base["phases_us"]["thread_switch"] > 0.75 * gap


def test_native_charges_copies_not_handlers(breakdowns):
    summary, _ = breakdowns["native"]
    ph = summary["phases_us"]
    assert ph["hdr_handler"] == 0.0
    assert ph["completion"] == 0.0
    assert ph["copy"] > 0.0


# ------------------------------------------------------------ truncation
def _truncated_tracer():
    class _Clock:
        now = 0.0

    t = Tracer(_Clock(), capacity=1)
    t.emit(0, "lapi", "amsend", msg=0, tgt=1, bytes=4)
    t.emit(0, "lapi", "amsend", msg=1, tgt=1, bytes=4)  # dropped
    assert t.dropped == 1
    return t


def test_truncated_trace_raises():
    with pytest.raises(TruncatedTraceError):
        lapi_breakdowns(_truncated_tracer())


def test_truncated_trace_warns_once_when_allowed():
    import repro.obs.breakdown as bd

    bd._warned_truncated = False
    with pytest.warns(RuntimeWarning):
        lapi_breakdowns(_truncated_tracer(), allow_truncated=True)
    # second call: the warning is not repeated
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")
        lapi_breakdowns(_truncated_tracer(), allow_truncated=True)


def test_summarize_empty_is_all_zero():
    from repro.obs import summarize

    s = summarize([])
    assert s["count"] == 0
    assert all(v == 0.0 for v in s["phases_us"].values())
