"""Property sweep: SenderWindow + ReceiverLedger survive any channel.

Hypothesis drives the pair through arbitrary interleavings of sends,
drops, duplicate deliveries, reorderings, and lost acks, then a
deterministic repair phase retransmits until the channel drains.  The
invariants under test are the paper's reliability claim distilled:

* every message is delivered to the application **exactly once**, in
  sequence order, regardless of what the channel did;
* after quiesce the sender window is empty, the ledger holds no gaps,
  and the cumulative ack covers the whole stream.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport.reliability import ReceiverLedger, SenderWindow

# channel actions the fuzzer can interleave between operations
ACTIONS = st.lists(
    st.sampled_from(["send", "deliver", "drop", "dup", "reorder",
                     "ack", "drop_ack", "retransmit"]),
    min_size=1, max_size=200,
)


class Channel:
    """A byte-free model of one direction of a flow."""

    def __init__(self, window: int):
        self.tx = SenderWindow(window)
        self.rx = ReceiverLedger()
        self.wire: list[int] = []          # data seqs in flight
        self.ack_wire: list[int] = []      # cumulative acks in flight
        self.delivered: list[int] = []     # exactly-once in-order release
        self.stash: set[int] = set()       # accepted but not yet releasable
        self.next_release = 0
        self.total_sent = 0

    # --- actions ------------------------------------------------------
    def send(self):
        if self.tx.can_send:
            seq = self.tx.send(f"msg{self.tx.next_seq}")
            self.wire.append(seq)
            self.total_sent += 1

    def deliver(self):
        if not self.wire:
            return
        seq = self.wire.pop(0)
        if self.rx.accept(seq) == "new":
            self.stash.add(seq)
            while self.next_release in self.stash:
                self.stash.remove(self.next_release)
                self.delivered.append(self.next_release)
                self.next_release += 1
        self.ack_wire.append(self.rx.cum_ack)

    def drop(self):
        if self.wire:
            self.wire.pop(0)

    def dup(self):
        if self.wire:
            self.wire.append(self.wire[0])

    def reorder(self):
        if len(self.wire) >= 2:
            self.wire.append(self.wire.pop(0))

    def ack(self):
        if self.ack_wire:
            self.tx.on_ack(self.ack_wire.pop(0))

    def drop_ack(self):
        if self.ack_wire:
            self.ack_wire.pop(0)

    def retransmit(self):
        oldest = self.tx.oldest_unacked()
        if oldest is not None:
            self.wire.append(oldest[0])

    def quiesce(self, budget: int = 10_000):
        """Deterministic repair: drain wires, retransmit until clean."""
        for _ in range(budget):
            if self.wire:
                self.deliver()
            elif self.ack_wire:
                self.ack()
            elif self.tx.in_flight:
                self.retransmit()
            else:
                return
        raise AssertionError("channel failed to quiesce within budget")


@settings(max_examples=200, deadline=None)
@given(actions=ACTIONS, window=st.integers(min_value=1, max_value=16))
def test_exactly_once_in_order_under_arbitrary_channels(actions, window):
    ch = Channel(window)
    for action in actions:
        getattr(ch, action)()
    ch.quiesce()

    # exactly-once, in-order delivery of the full stream
    assert ch.delivered == list(range(ch.total_sent))
    # empty state at quiesce
    assert ch.tx.in_flight == 0
    assert ch.rx.gap_count == 0
    assert not ch.stash
    assert ch.rx.cum_ack == ch.total_sent - 1


@settings(max_examples=50, deadline=None)
@given(actions=ACTIONS)
def test_ledger_never_reclassifies_delivered_seqs(actions):
    """Once a seq is "new", every later arrival of it is "dup"."""
    ch = Channel(8)
    seen_new: set[int] = set()
    for action in actions:
        if action == "deliver" and ch.wire:
            seq = ch.wire[0]
            verdict = ch.rx.accept(seq)
            ch.wire.pop(0)
            if verdict == "new":
                assert seq not in seen_new
                seen_new.add(seq)
        else:
            getattr(ch, action if action != "deliver" else "send")()


def test_window_enforces_bound():
    tx = SenderWindow(4)
    for _ in range(4):
        tx.send("x")
    assert not tx.can_send
    with pytest.raises(RuntimeError):
        tx.send("overflow")
    assert tx.on_ack(1) == 2
    assert tx.can_send
