"""Unit + property tests for the reliability state machines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport import ReceiverLedger, SenderWindow


# ---------------------------------------------------------- SenderWindow


def test_window_admission_and_exhaustion():
    w = SenderWindow(window=2)
    assert w.can_send
    w.send("a")
    w.send("b")
    assert not w.can_send
    with pytest.raises(RuntimeError):
        w.send("c")


def test_sequences_are_consecutive():
    w = SenderWindow(window=10)
    assert [w.send(i) for i in range(5)] == [0, 1, 2, 3, 4]


def test_cumulative_ack_frees_window():
    w = SenderWindow(window=3)
    for i in range(3):
        w.send(i)
    assert w.on_ack(1) == 2
    assert w.in_flight == 1
    assert w.can_send
    assert w.oldest_unacked() == (2, 2)


def test_stale_ack_is_noop():
    w = SenderWindow(window=3)
    w.send("x")
    w.on_ack(0)
    assert w.on_ack(0) == 0
    assert w.oldest_unacked() is None


def test_window_must_be_positive():
    with pytest.raises(ValueError):
        SenderWindow(0)


# --------------------------------------------------------- ReceiverLedger


def test_in_order_acceptance():
    r = ReceiverLedger()
    assert [r.accept(i) for i in range(4)] == ["new"] * 4
    assert r.cum_ack == 3
    assert r.gap_count == 0


def test_out_of_order_acceptance():
    r = ReceiverLedger()
    assert r.accept(2) == "new"
    assert r.cum_ack == -1
    assert r.gap_count == 1
    assert r.accept(0) == "new"
    assert r.cum_ack == 0
    assert r.accept(1) == "new"
    assert r.cum_ack == 2
    assert r.gap_count == 0


def test_duplicates_detected_below_and_above_cum():
    r = ReceiverLedger()
    r.accept(0)
    r.accept(2)
    assert r.accept(0) == "dup"
    assert r.accept(2) == "dup"
    assert r.accept(1) == "new"


def test_negative_seq_rejected():
    r = ReceiverLedger()
    with pytest.raises(ValueError):
        r.accept(-1)


# ----------------------------------------------------------- properties


@given(st.permutations(list(range(30))))
def test_any_permutation_yields_full_cum_ack(perm):
    r = ReceiverLedger()
    for seq in perm:
        assert r.accept(seq) == "new"
    assert r.cum_ack == 29
    assert r.gap_count == 0


@given(
    st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=200)
)
def test_each_seq_delivered_exactly_once(seqs):
    r = ReceiverLedger()
    delivered = [s for s in seqs if r.accept(s) == "new"]
    assert sorted(delivered) == sorted(set(seqs))


@settings(max_examples=50)
@given(
    st.lists(st.booleans(), min_size=1, max_size=300),
    st.integers(min_value=1, max_value=16),
)
def test_sender_receiver_duplex_invariant(send_or_ack, window):
    """Random interleaving of sends and acks never exceeds the window and
    never delivers a packet twice."""
    tx = SenderWindow(window)
    rx = ReceiverLedger()
    delivered = set()
    for do_send in send_or_ack:
        if do_send and tx.can_send:
            seq = tx.send(f"pkt{tx.next_seq}")
            # deliver immediately (no loss in this model)
            if rx.accept(seq) == "new":
                assert seq not in delivered
                delivered.add(seq)
        else:
            tx.on_ack(rx.cum_ack)
        assert tx.in_flight <= window
    tx.on_ack(rx.cum_ack)
    assert tx.in_flight == 0
    assert delivered == set(range(tx.next_seq))


@settings(max_examples=50)
@given(st.data())
def test_loss_and_retransmit_eventually_completes(data):
    """Packets may be lost; retransmitting the oldest unacked packet until
    the ledger is complete always terminates with full delivery."""
    n = data.draw(st.integers(min_value=1, max_value=40))
    tx = SenderWindow(window=8)
    rx = ReceiverLedger()
    sent_payloads = {}
    lost_first_try = set()

    # initial sends, some lost
    while tx.next_seq < n or tx.in_flight:
        while tx.can_send and tx.next_seq < n:
            seq = tx.send(("payload", tx.next_seq))
            sent_payloads[seq] = ("payload", seq)
            if data.draw(st.booleans()):
                lost_first_try.add(seq)
            else:
                rx.accept(seq)
        # retransmission pass: resend oldest unacked (never lost twice here)
        oldest = tx.oldest_unacked()
        if oldest is not None:
            seq, _ = oldest
            rx.accept(seq)
        tx.on_ack(rx.cum_ack)

    assert rx.cum_ack == n - 1
