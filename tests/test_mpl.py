"""MPL compatibility layer."""

import numpy as np
import pytest

from repro import SPCluster
from repro.mpl import ALLMSG, DONTCARE, MplError, MplTask


def run(n, program, stack="lapi-enhanced"):
    cl = SPCluster(n, stack=stack)

    def wrapper(comm, rank, size):
        task = MplTask(comm)
        return (yield from program(task, rank, size))

    return cl.run(wrapper)


def test_environ():
    def program(task, rank, size):
        yield task.comm.env.timeout(0)
        return task.mpc_environ()

    res = run(3, program)
    assert res.values == [(3, 0), (3, 1), (3, 2)]


@pytest.mark.parametrize("stack", ["native", "lapi-enhanced"])
def test_bsend_brecv(stack):
    def program(task, rank, size):
        if rank == 0:
            yield from task.mpc_bsend(b"mpl lives", dest=1, type_=7)
            return None
        buf = bytearray(16)
        n, src, typ = yield from task.mpc_brecv(buf, source=DONTCARE,
                                                type_=DONTCARE)
        return (bytes(buf[:n]), src, typ)

    res = run(2, program, stack)
    assert res.values[1] == (b"mpl lives", 0, 7)


def test_nonblocking_send_recv_wait():
    def program(task, rank, size):
        if rank == 0:
            mid = yield from task.mpc_send(b"async", dest=1, type_=3)
            yield from task.mpc_wait(mid)
            return None
        buf = bytearray(5)
        mid = yield from task.mpc_recv(buf, source=0, type_=3)
        n = yield from task.mpc_wait(mid)
        return (n, bytes(buf))

    res = run(2, program)
    assert res.values[1] == (5, b"async")


def test_wait_allmsg():
    def program(task, rank, size):
        if rank == 0:
            ids = []
            for i in range(3):
                mid = yield from task.mpc_send(bytes([i]) * 4, dest=1, type_=i)
                ids.append(mid)
            yield from task.mpc_wait(ALLMSG)
            return None
        bufs = [bytearray(4) for _ in range(3)]
        for i in range(3):
            yield from task.mpc_recv(bufs[i], source=0, type_=i)
        total = yield from task.mpc_wait(ALLMSG)
        return (total, [bytes(b) for b in bufs])

    res = run(2, program)
    total, bufs = res.values[1]
    assert total == 12
    assert bufs == [b"\x00" * 4, b"\x01" * 4, b"\x02" * 4]


def test_status_polls_without_consuming():
    def program(task, rank, size):
        if rank == 0:
            yield task.comm.env.timeout(2000.0)
            yield from task.mpc_bsend(b"late", dest=1, type_=1)
            return None
        buf = bytearray(4)
        mid = yield from task.mpc_recv(buf, source=0, type_=1)
        polls = 0
        while (yield from task.mpc_status(mid)) == -1:
            polls += 1
            yield task.comm.env.timeout(100.0)
        # status doesn't consume: wait still works
        n = yield from task.mpc_wait(mid)
        return (polls, n)

    res = run(2, program)
    polls, n = res.values[1]
    assert polls > 3
    assert n == 4


def test_wait_unknown_id_raises():
    def program(task, rank, size):
        yield task.comm.env.timeout(0)
        try:
            yield from task.mpc_wait(99)
        except MplError:
            return "caught"

    assert run(1, program).values[0] == "caught"


def test_send_with_dontcare_type_rejected():
    def program(task, rank, size):
        yield task.comm.env.timeout(0)
        try:
            yield from task.mpc_bsend(b"x", dest=0, type_=DONTCARE)
        except MplError:
            return "caught"

    assert run(2, program).values[0] == "caught"


def test_probe():
    def program(task, rank, size):
        if rank == 0:
            yield from task.mpc_bsend(b"probe!", dest=1, type_=5)
            return None
        while True:
            got = yield from task.mpc_probe(source=DONTCARE, type_=DONTCARE)
            if got is not None:
                break
            yield task.comm.env.timeout(10.0)
        n, src, typ = got
        buf = bytearray(n)
        yield from task.mpc_brecv(buf, source=src, type_=typ)
        return bytes(buf)

    assert run(2, program).values[1] == b"probe!"


def test_sync_and_combine():
    def program(task, rank, size):
        yield from task.mpc_sync()
        out = np.zeros(2)
        yield from task.mpc_combine(np.array([rank, 1.0]), out, op="sum")
        cat = np.zeros((size, 1), dtype=np.int64)
        yield from task.mpc_concat(np.array([rank * 5], dtype=np.int64), cat)
        return (out.tolist(), cat.ravel().tolist())

    res = run(4, program)
    for v in res.values:
        assert v == ([6.0, 4.0], [0, 5, 10, 15])
