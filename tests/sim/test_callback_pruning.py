"""Regression tests: losing condition waiters must not leak callbacks.

A polling loop that repeatedly races a short timeout against one
long-lived event (``yield AnyOf([data, timeout])``) used to append one
``_on_event`` callback to the long-lived event per iteration, and an
interrupted waiter used to leave its ``_cb`` behind on the abandoned
target.  Both are now pruned; these tests pin the callback-list length
so the leak cannot come back.
"""

from repro.sim import AnyOf, Environment, Event, Interrupt


def test_anyof_loser_callbacks_stay_bounded():
    env = Environment()
    data = Event(env)
    iterations = 500

    def poller():
        for _ in range(iterations):
            yield AnyOf(env, [data, env.timeout(1.0)])

    env.process(poller())
    env.run()
    # One stale callback per iteration before the fix; now none survive.
    assert data.callbacks is not None
    assert len(data.callbacks) <= 1


def test_anyof_winner_still_fires_and_collects():
    env = Environment()
    data = Event(env)
    seen = []

    def fire():
        yield env.timeout(0.5)
        data.succeed("payload")

    def waiter():
        got = yield AnyOf(env, [data, env.timeout(5.0)])
        seen.append(got)

    env.process(fire())
    env.process(waiter())
    env.run()
    assert seen and seen[0][data] == "payload"
    # The pruned loser timeout still drains from the heap (only its
    # callback was removed), so the clock runs out to t=5.
    assert env.now == 5.0


def test_pruned_loser_failure_does_not_crash():
    """A loser pruned by ``_abandon`` is preemptively defused: if it
    later fails, the run must not blow up with an undefused error."""
    env = Environment()
    loser = Event(env)

    def waiter():
        yield AnyOf(env, [env.timeout(0.1), loser])

    def failer():
        yield env.timeout(1.0)
        loser.fail(RuntimeError("late failure"))

    env.process(waiter())
    env.process(failer())
    env.run()  # must not raise


def test_interrupt_detaches_waiter_from_target():
    env = Environment()
    target = Event(env)
    caught = []

    def waiter():
        try:
            yield target
        except Interrupt as exc:
            caught.append(exc)

    proc = env.process(waiter())

    def interrupter():
        yield env.timeout(1.0)
        proc.interrupt("stop")

    env.process(interrupter())
    env.run()
    assert caught
    # The interrupted waiter's callback must be gone from the target.
    assert target.callbacks == []


def test_interrupt_abandons_orphaned_condition():
    """Interrupting the only waiter of an AnyOf must detach the whole
    condition from its constituents, not just the process from the
    condition."""
    env = Environment()
    longlived = Event(env)

    def waiter():
        try:
            yield AnyOf(env, [longlived, env.timeout(100.0)])
        except Interrupt:
            pass

    proc = env.process(waiter())

    def interrupter():
        yield env.timeout(1.0)
        proc.interrupt()

    env.process(interrupter())
    env.run()
    assert longlived.callbacks == []
