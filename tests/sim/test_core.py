"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    done = []

    def proc():
        yield env.timeout(5.0)
        done.append(env.now)

    env.process(proc())
    env.run()
    assert done == [5.0]


def test_timeouts_fire_in_order():
    env = Environment()
    order = []

    def proc(delay, tag):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc(3.0, "c"))
    env.process(proc(1.0, "a"))
    env.process(proc(2.0, "b"))
    env.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_by_schedule_order():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("x", "y", "z"):
        env.process(proc(tag))
    env.run()
    assert order == ["x", "y", "z"]


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_process_return_value():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        return 42

    p = env.process(proc())
    assert env.run(until=p) == 42


def test_run_until_time():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(10.0)

    env.process(proc())
    env.run(until=35.0)
    assert env.now == 35.0


def test_run_until_past_raises():
    env = Environment()
    env.timeout(1.0)
    env.run()
    with pytest.raises(ValueError):
        env.run(until=0.5)


def test_event_succeed_wakes_waiter():
    env = Environment()
    ev = env.event()
    got = []

    def waiter():
        v = yield ev
        got.append((env.now, v))

    def trigger():
        yield env.timeout(7.0)
        ev.succeed("hello")

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert got == [(7.0, "hello")]


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_propagates_into_process():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter():
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(waiter())
    ev.fail(RuntimeError("boom"))
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_crashes_run():
    env = Environment()

    def bad():
        yield env.timeout(1.0)
        raise ValueError("oops")

    env.process(bad())
    with pytest.raises(ValueError, match="oops"):
        env.run()


def test_undefused_event_failure_crashes_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("nobody handles me"))
    with pytest.raises(RuntimeError, match="nobody handles me"):
        env.run()


def test_yield_on_already_processed_event():
    env = Environment()
    ev = env.event()
    ev.succeed("early")
    env.run()  # process the event with no listeners
    got = []

    def late_waiter():
        v = yield ev
        got.append(v)

    env.process(late_waiter())
    env.run()
    assert got == ["early"]


def test_yield_non_event_fails_process():
    env = Environment()

    def bad():
        yield 42

    p = env.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        env.run(until=p)


def test_process_waits_on_subprocess():
    env = Environment()

    def child():
        yield env.timeout(4.0)
        return "child-result"

    def parent():
        result = yield env.process(child())
        return (env.now, result)

    p = env.process(parent())
    assert env.run(until=p) == (4.0, "child-result")


def test_any_of():
    env = Environment()

    def proc():
        t_fast = env.timeout(1.0, value="fast")
        t_slow = env.timeout(5.0, value="slow")
        result = yield AnyOf(env, [t_fast, t_slow])
        return (env.now, list(result.values()))

    p = env.process(proc())
    now, values = env.run(until=p)
    assert now == 1.0
    assert values == ["fast"]


def test_all_of():
    env = Environment()

    def proc():
        events = [env.timeout(d, value=d) for d in (3.0, 1.0, 2.0)]
        result = yield AllOf(env, events)
        return (env.now, sorted(result.values()))

    p = env.process(proc())
    now, values = env.run(until=p)
    assert now == 3.0
    assert values == [1.0, 2.0, 3.0]


def test_all_of_empty_triggers_immediately():
    env = Environment()

    def proc():
        yield AllOf(env, [])
        return env.now

    p = env.process(proc())
    assert env.run(until=p) == 0.0


def test_interrupt_wakes_blocked_process():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100.0)
            log.append("slept full")
        except Interrupt as i:
            log.append(("interrupted", env.now, i.cause))

    p = env.process(sleeper())

    def interrupter():
        yield env.timeout(2.0)
        p.interrupt(cause="wake up")

    env.process(interrupter())
    env.run()
    assert log == [("interrupted", 2.0, "wake up")]


def test_interrupt_terminated_process_raises():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_run_until_untriggered_event_deadlock_detected():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError, match="deadlock"):
        env.run(until=ev)


def test_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_nested_processes_three_deep():
    env = Environment()

    def leaf():
        yield env.timeout(1.0)
        return 1

    def mid():
        v = yield env.process(leaf())
        yield env.timeout(1.0)
        return v + 1

    def root():
        v = yield env.process(mid())
        return v + 1

    p = env.process(root())
    assert env.run(until=p) == 3
    assert env.now == 2.0


def test_peek():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(9.0)
    assert env.peek() == 9.0
