"""Unit tests for Mutex / Store / Channel."""

import pytest

from repro.sim import Channel, Environment, Mutex, SimulationError, Store


# ---------------------------------------------------------------- Mutex


def test_mutex_exclusion_and_fifo_order():
    env = Environment()
    mx = Mutex(env)
    log = []

    def worker(tag, hold):
        yield mx.acquire()
        log.append(("in", tag, env.now))
        yield env.timeout(hold)
        log.append(("out", tag, env.now))
        mx.release()

    env.process(worker("a", 5.0))
    env.process(worker("b", 3.0))
    env.process(worker("c", 1.0))
    env.run()
    assert log == [
        ("in", "a", 0.0),
        ("out", "a", 5.0),
        ("in", "b", 5.0),
        ("out", "b", 8.0),
        ("in", "c", 8.0),
        ("out", "c", 9.0),
    ]
    assert not mx.locked
    assert mx.acquisitions == 3


def test_mutex_try_acquire():
    env = Environment()
    mx = Mutex(env)
    assert mx.try_acquire()
    assert not mx.try_acquire()
    mx.release()
    assert mx.try_acquire()


def test_mutex_release_unlocked_raises():
    env = Environment()
    mx = Mutex(env)
    with pytest.raises(SimulationError):
        mx.release()


# ---------------------------------------------------------------- Store


def test_store_put_then_get():
    env = Environment()
    st = Store(env)
    st.put("x")
    got = []

    def getter():
        got.append((yield st.get()))

    env.process(getter())
    env.run()
    assert got == ["x"]


def test_store_get_blocks_until_put():
    env = Environment()
    st = Store(env)
    got = []

    def getter():
        v = yield st.get()
        got.append((env.now, v))

    def putter():
        yield env.timeout(4.0)
        st.put("late")

    env.process(getter())
    env.process(putter())
    env.run()
    assert got == [(4.0, "late")]


def test_store_fifo_order_items_and_getters():
    env = Environment()
    st = Store(env)
    got = []

    def getter(tag):
        v = yield st.get()
        got.append((tag, v))

    env.process(getter("g1"))
    env.process(getter("g2"))

    def putter():
        yield env.timeout(1.0)
        st.put(1)
        st.put(2)

    env.process(putter())
    env.run()
    assert got == [("g1", 1), ("g2", 2)]


def test_store_try_get():
    env = Environment()
    st = Store(env)
    assert st.try_get() == (False, None)
    st.put(7)
    assert st.try_get() == (True, 7)
    assert len(st) == 0


# ---------------------------------------------------------------- Channel


def test_channel_backpressure():
    env = Environment()
    ch = Channel(env, capacity=2)
    log = []

    def producer():
        for i in range(4):
            yield ch.put(i)
            log.append(("put", i, env.now))

    def consumer():
        yield env.timeout(10.0)
        while True:
            v = yield ch.get()
            log.append(("get", v, env.now))
            if v == 3:
                return

    env.process(producer())
    env.process(consumer())
    env.run()
    # puts 0 and 1 go immediately; 2 waits for the first get at t=10
    assert ("put", 0, 0.0) in log
    assert ("put", 1, 0.0) in log
    put2 = [e for e in log if e[:2] == ("put", 2)][0]
    assert put2[2] == 10.0
    gets = [e[1] for e in log if e[0] == "get"]
    assert gets == [0, 1, 2, 3]


def test_channel_capacity_one_alternates():
    env = Environment()
    ch = Channel(env, capacity=1)
    seen = []

    def producer():
        for i in range(3):
            yield ch.put(i)

    def consumer():
        for _ in range(3):
            v = yield ch.get()
            seen.append(v)
            yield env.timeout(1.0)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert seen == [0, 1, 2]


def test_channel_try_put_and_try_get():
    env = Environment()
    ch = Channel(env, capacity=1)
    assert ch.try_put("a")
    assert not ch.try_put("b")
    assert ch.try_get() == (True, "a")
    assert ch.try_get() == (False, None)


def test_channel_rejects_zero_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Channel(env, capacity=0)


def test_channel_max_occupancy_statistic():
    env = Environment()
    ch = Channel(env, capacity=8)
    for i in range(5):
        assert ch.try_put(i)
    assert ch.max_occupancy == 5
