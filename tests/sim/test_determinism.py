"""Determinism and stress properties of the event kernel."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import AllOf, AnyOf, Environment


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=50),
       st.integers(min_value=0, max_value=2**31))
def test_same_schedule_same_trace(delays, seed):
    """Two environments fed the same schedule produce identical traces,
    including ties (FIFO by scheduling order)."""

    def run_once():
        env = Environment()
        trace = []

        def proc(i, d):
            yield env.timeout(d)
            trace.append((env.now, i))

        for i, d in enumerate(delays):
            env.process(proc(i, d))
        env.run()
        return trace

    assert run_once() == run_once()


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(min_value=0.001, max_value=10.0,
                          allow_nan=False), min_size=1, max_size=30))
def test_clock_is_monotone(delays):
    env = Environment()
    stamps = []

    def proc(d):
        yield env.timeout(d)
        stamps.append(env.now)
        yield env.timeout(d)
        stamps.append(env.now)

    for d in delays:
        env.process(proc(d))
    env.run()
    assert stamps == sorted(stamps)


def test_ten_thousand_processes():
    """Scalability smoke: the heap handles large event populations."""
    env = Environment()
    rng = np.random.default_rng(0)
    delays = rng.uniform(0, 1000, 10_000)
    counter = {"n": 0}

    def proc(d):
        yield env.timeout(d)
        counter["n"] += 1

    for d in delays:
        env.process(proc(d))
    env.run()
    assert counter["n"] == 10_000
    assert env.now == max(delays)


def test_deep_process_chain():
    env = Environment()

    def chain(depth):
        if depth == 0:
            yield env.timeout(1.0)
            return 0
        v = yield env.process(chain(depth - 1))
        return v + 1

    p = env.process(chain(150))
    assert env.run(until=p) == 150


def test_condition_of_conditions():
    env = Environment()

    def proc():
        pair1 = AllOf(env, [env.timeout(1.0), env.timeout(2.0)])
        pair2 = AllOf(env, [env.timeout(5.0), env.timeout(6.0)])
        yield AnyOf(env, [pair1, pair2])
        return env.now

    p = env.process(proc())
    assert env.run(until=p) == 2.0


def _traced_pingpong(stack):
    from repro.cluster import SPCluster

    cluster = SPCluster(2, stack=stack, trace=True)

    def program(comm, rank, size):
        payload = bytes(128)
        buf = bytearray(128)
        for _ in range(3):
            if rank == 0:
                yield from comm.send(payload, dest=1)
                yield from comm.recv(buf, source=1)
            else:
                yield from comm.recv(buf, source=0)
                yield from comm.send(payload, dest=0)
        return None

    result = cluster.run(program)
    return cluster, result


def test_metrics_snapshots_are_byte_identical():
    """Identical runs serialise to identical bytes — the metrics layer
    introduces no wall clock, randomness, or ordering dependence."""
    import json

    for stack in ("lapi-enhanced", "native"):
        _c1, r1 = _traced_pingpong(stack)
        _c2, r2 = _traced_pingpong(stack)
        s1 = json.dumps(r1.metrics, sort_keys=True)
        s2 = json.dumps(r2.metrics, sort_keys=True)
        assert s1 == s2, stack


def test_latency_breakdowns_are_byte_identical():
    import json

    from repro.obs import lapi_breakdowns, pipes_breakdowns, summarize

    def capture(stack):
        cluster, _res = _traced_pingpong(stack)
        fn = pipes_breakdowns if stack == "native" else lapi_breakdowns
        downs = fn(cluster.tracer)
        return json.dumps(
            [(b.src, b.dst, b.key, b.start, b.end, b.phases) for b in downs],
            sort_keys=True,
        ), json.dumps(summarize(downs), sort_keys=True)

    for stack in ("lapi-base", "native"):
        assert capture(stack) == capture(stack), stack


def test_failed_event_inside_condition_propagates():
    env = Environment()
    bad = env.event()
    caught = []

    def proc():
        try:
            yield AllOf(env, [env.timeout(5.0), bad])
        except RuntimeError as e:
            caught.append(str(e))

    env.process(proc())
    bad.fail(RuntimeError("component failed"))
    env.run()
    assert caught == ["component failed"]
