"""Pipes reliability edge cases: duplicate acks, RTO recovery, windows."""

import numpy as np
import pytest

from tests.pipes.test_endpoint import Rig, frame_bytes


def test_total_blackhole_then_recovery_via_rto():
    """Every first-transmission packet is lost; only retransmissions
    get through (loss is turned off mid-flight by swapping the rate)."""
    rig = Rig(packet_payload=512, packet_loss_rate=0.999, seed=1)
    rig.run_poller(1)
    data = b"r" * 1500  # 3 packets

    def sender():
        yield from rig.pipes[0].send_frame("user", 1, {"type": "e"}, data)
        # after the first transmissions are gone, heal the fabric
        yield rig.env.timeout(1000.0)
        rig.params.packet_loss_rate = 0.0
        # drive retransmission progress from this side
        while len(rig.delivered[1]) < 3 and rig.env.now < 1e6:
            yield from rig.pipes[0].dispatch("user")
            yield rig.env.timeout(500.0)

    rig.env.process(sender())
    rig.env.run(until=2e6)
    assert frame_bytes(rig.delivered[1], 1500) == data
    assert rig.stats[0].retransmissions >= 1


def test_duplicate_data_packets_acked_not_redelivered():
    """Force a duplicate by retransmitting when nothing was lost."""
    rig = Rig(packet_payload=512, pipe_rto_us=200.0, pipe_ack_delay_us=5000.0,
              pipe_ack_every=1000)
    rig.run_poller(1)
    data = b"d" * 400

    def sender():
        yield from rig.pipes[0].send_frame("user", 1, {"type": "e"}, data)
        # acks are heavily delayed, so the RTO fires and retransmits a
        # packet the receiver already has
        yield rig.env.timeout(3000.0)

    rig.env.process(sender())
    rig.env.run(until=1e5)
    # delivered exactly once despite the duplicate on the wire
    assert len(rig.delivered[1]) == 1
    assert rig.stats[0].retransmissions >= 1
    # the duplicate triggered an immediate ack
    assert rig.stats[1].acks_sent >= 1


def test_window_respects_configured_limit():
    rig = Rig(packet_payload=256, pipe_window_pkts=4)
    # receiver never drains: at most `window` packets reach the adapter
    data = b"w" * 4096  # 16 packets

    def sender():
        yield from rig.pipes[0].send_frame("user", 1, {"type": "e"}, data)

    rig.env.process(sender())
    rig.env.run(until=1e5)
    # distinct packets injected = the window size (RTO retransmissions of
    # the oldest unacked packet are counted separately)
    distinct = rig.stats[0].packets_sent - rig.stats[0].retransmissions
    assert distinct == 4


def test_ack_every_packet_mode():
    rig = Rig(packet_payload=256, pipe_ack_every=1)
    rig.run_poller(1)
    data = b"a" * 1024  # 4 packets

    def sender():
        yield from rig.pipes[0].send_frame("user", 1, {"type": "e"}, data)

    rig.env.process(sender())
    rig.env.run(until=1e5)
    assert rig.stats[1].acks_sent >= 4


def test_interleaved_frames_to_two_destinations():
    rig = Rig(n=3)
    rig.run_poller(1)
    rig.run_poller(2)

    def sender():
        yield from rig.pipes[0].send_frame("user", 1, {"type": "e", "k": 1},
                                           b"x" * 900, fid=1)
        yield from rig.pipes[0].send_frame("user", 2, {"type": "e", "k": 2},
                                           b"y" * 900, fid=2)

    rig.env.process(sender())
    rig.env.run(until=1e5)
    assert frame_bytes(rig.delivered[1], 900) == b"x" * 900
    assert frame_bytes(rig.delivered[2], 900) == b"y" * 900
