"""Property test: pipes deliver exactly the sent bytes under random
loss rates, seeds and fragmentations."""

import numpy as np
import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from tests.pipes.test_endpoint import Rig, frame_bytes


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    loss=st.floats(min_value=0.0, max_value=0.3),
    nbytes=st.integers(min_value=1, max_value=6000),
    payload=st.sampled_from([128, 256, 1024]),
)
# Regression: a concurrent poller stole the ack that would have opened
# the sender window for the final 1-byte fragment; send_frame slept on
# wait_rx forever and silently truncated the frame.
@example(seed=636, loss=0.03125, nbytes=4737, payload=128)
def test_stream_integrity_under_random_loss(seed, loss, nbytes, payload):
    rig = Rig(packet_payload=payload, packet_loss_rate=loss, seed=seed)
    rig.run_poller(0)
    rig.run_poller(1)
    data = np.random.default_rng(seed).integers(0, 256, nbytes,
                                                dtype=np.uint8).tobytes()

    def sender():
        yield from rig.pipes[0].send_frame("user", 1, {"type": "e"}, data)

    rig.env.process(sender())
    rig.env.run(until=5e6)
    assert frame_bytes(rig.delivered[1], nbytes) == data
