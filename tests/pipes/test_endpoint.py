"""Integration-style tests for the Pipes reliable ordered stream."""

import numpy as np
import pytest

from repro.hal import Hal
from repro.machine import Cpu, MachineParams, NodeStats
from repro.network import Adapter, SwitchFabric
from repro.pipes import PipeEndpoint
from repro.sim import Environment


class Rig:
    """Two (or more) nodes with pipe endpoints and frame collectors."""

    def __init__(self, n=2, seed=3, **overrides):
        self.env = Environment()
        self.params = MachineParams(**overrides)
        self.fabric = SwitchFabric(self.env, self.params, rng=np.random.default_rng(seed))
        self.stats = [NodeStats() for _ in range(n)]
        self.cpus = [Cpu(self.env, self.params, self.stats[i]) for i in range(n)]
        self.adapters = [
            Adapter(self.env, self.params, self.fabric, i, self.stats[i]) for i in range(n)
        ]
        self.hals = [
            Hal(self.env, self.cpus[i], self.adapters[i], self.params, self.stats[i],
                self.params.native_header_bytes)
            for i in range(n)
        ]
        self.pipes = [
            PipeEndpoint(self.env, self.cpus[i], self.hals[i], self.params, self.stats[i])
            for i in range(n)
        ]
        # packet log per node: (src, header, payload) in delivery order
        self.delivered = [[] for _ in range(n)]
        for i in range(n):
            self.pipes[i].on_packet = self._collector(i)
        self.pollers = [None] * n

    def _collector(self, i):
        def on_packet(thread, src, header, payload):
            self.delivered[i].append((src, header, payload))
            yield self.env.timeout(0)

        return on_packet

    def run_poller(self, i):
        """Continuously dispatch arrivals on node i."""

        def poller():
            ep = self.pipes[i]
            while True:
                yield from ep.dispatch("user")
                yield ep.wait_rx()

        self.pollers[i] = self.env.process(poller(), name=f"poll{i}")


def frame_bytes(node_log, flen):
    """Reassemble a single frame of known length from a delivery log."""
    buf = bytearray(flen)
    for _src, hdr, payload in node_log:
        buf[hdr["foff"] : hdr["foff"] + len(payload)] = payload
    return bytes(buf)


def test_single_packet_frame_delivery():
    rig = Rig()
    rig.run_poller(1)

    def sender():
        yield from rig.pipes[0].send_frame(
            "user", 1, {"type": "eager", "tag": 7}, b"hello pipes"
        )

    rig.env.process(sender())
    rig.env.run(until=1e6)
    assert len(rig.delivered[1]) == 1
    src, hdr, payload = rig.delivered[1][0]
    assert src == 0
    assert payload == b"hello pipes"
    assert hdr["meta"] == {"type": "eager", "tag": 7}
    assert hdr["flen"] == 11


def test_multi_packet_frame_in_order_and_meta_on_first_only():
    rig = Rig(packet_payload=256)
    rig.run_poller(1)
    data = bytes(range(256)) * 5  # 1280 bytes -> 5 packets

    def sender():
        yield from rig.pipes[0].send_frame("user", 1, {"type": "eager"}, data)

    rig.env.process(sender())
    rig.env.run(until=1e6)
    log = rig.delivered[1]
    assert len(log) == 5
    offs = [h["foff"] for _, h, _ in log]
    assert offs == sorted(offs), "pipes must deliver in order"
    assert "meta" in log[0][1]
    assert all("meta" not in h for _, h, _ in log[1:])
    assert frame_bytes(log, len(data)) == data


def test_in_order_delivery_despite_fabric_reordering():
    rig = Rig(packet_payload=128, route_skew_us=300.0, route_jitter_us=50.0)
    rig.run_poller(1)
    data = np.arange(300, dtype=np.uint8).tobytes() * 4  # 1200B -> 10 pkts

    def sender():
        yield from rig.pipes[0].send_frame("user", 1, {"type": "eager"}, data)

    rig.env.process(sender())
    rig.env.run(until=1e6)
    log = rig.delivered[1]
    seqs = [h["seq"] for _, h, _ in log]
    assert seqs == sorted(seqs)
    assert frame_bytes(log, len(data)) == data


def test_loss_recovery_via_retransmission():
    rig = Rig(packet_payload=256, packet_loss_rate=0.15, seed=11)
    rig.run_poller(1)
    data = bytes(np.random.default_rng(0).integers(0, 256, 4096, dtype=np.uint8))

    def sender():
        yield from rig.pipes[0].send_frame("user", 1, {"type": "eager"}, data)

    rig.env.process(sender())
    rig.env.run(until=5e6)
    log = rig.delivered[1]
    assert frame_bytes(log, len(data)) == data
    assert rig.stats[0].retransmissions > 0


def test_window_backpressure_blocks_sender():
    # tiny window, receiver never dispatches -> sender must stall
    rig = Rig(packet_payload=128, pipe_window_pkts=2)
    done = []

    def sender():
        yield from rig.pipes[0].send_frame("user", 1, {"type": "eager"}, b"x" * 1024)
        done.append(rig.env.now)

    rig.env.process(sender())
    rig.env.run(until=1e6)
    assert not done, "sender should stall with a full window and no acks"


def test_window_opens_when_receiver_dispatches():
    rig = Rig(packet_payload=128, pipe_window_pkts=2, pipe_ack_every=1)
    rig.run_poller(1)
    done = []

    def sender():
        yield from rig.pipes[0].send_frame("user", 1, {"type": "eager"}, b"x" * 1024)
        done.append(rig.env.now)

    rig.env.process(sender())
    rig.env.run(until=1e6)
    assert done
    assert frame_bytes(rig.delivered[1], 1024) == b"x" * 1024


def test_buffered_ranges_charge_copies():
    rig = Rig(packet_payload=1024)
    rig.run_poller(1)
    data = b"z" * 4096

    def sender():
        yield from rig.pipes[0].send_frame(
            "user", 1, {"type": "eager"}, data,
            buffered_prefix=1024, buffered_suffix=1024,
        )

    rig.env.process(sender())
    rig.env.run(until=1e6)
    # sender copies only the buffered prefix+suffix (2 packets of 4)
    assert rig.stats[0].bytes_copied == 2048
    # receiver mirrors the buffered flag
    assert rig.stats[1].bytes_copied == 2048


def test_unbuffered_frame_charges_no_copies():
    rig = Rig(packet_payload=1024)
    rig.run_poller(1)

    def sender():
        yield from rig.pipes[0].send_frame("user", 1, {"type": "t"}, b"q" * 2048)

    rig.env.process(sender())
    rig.env.run(until=1e6)
    assert rig.stats[0].bytes_copied == 0
    assert rig.stats[1].bytes_copied == 0


def test_zero_byte_frame():
    rig = Rig()
    rig.run_poller(1)

    def sender():
        yield from rig.pipes[0].send_frame("user", 1, {"type": "rts", "size": 10**6}, b"")

    rig.env.process(sender())
    rig.env.run(until=1e6)
    assert len(rig.delivered[1]) == 1
    _, hdr, payload = rig.delivered[1][0]
    assert payload == b""
    assert hdr["meta"]["type"] == "rts"


def test_bidirectional_streams_are_independent():
    rig = Rig()
    rig.run_poller(0)
    rig.run_poller(1)

    def sender(i, j, tag):
        yield from rig.pipes[i].send_frame("user", j, {"type": "eager", "tag": tag},
                                           bytes([i]) * 100)

    rig.env.process(sender(0, 1, 1))
    rig.env.process(sender(1, 0, 2))
    rig.env.run(until=1e6)
    assert rig.delivered[1][0][2] == bytes([0]) * 100
    assert rig.delivered[0][0][2] == bytes([1]) * 100


def test_send_to_self_rejected():
    rig = Rig()
    with pytest.raises(ValueError):
        next(rig.pipes[0].send_frame("user", 0, {}, b"x"))


def test_many_frames_interleaved_order_per_flow():
    rig = Rig(packet_payload=512)
    rig.run_poller(1)

    def sender():
        for k in range(10):
            yield from rig.pipes[0].send_frame(
                "user", 1, {"type": "eager", "k": k}, bytes([k]) * 700
            )

    rig.env.process(sender())
    rig.env.run(until=1e7)
    metas = [h["meta"]["k"] for _, h, _ in rig.delivered[1] if "meta" in h]
    assert metas == list(range(10)), "frame starts must arrive in send order"


def test_acks_are_eventually_sent_and_window_drains():
    rig = Rig(packet_payload=512, pipe_ack_every=4)
    rig.run_poller(1)

    def sender():
        yield from rig.pipes[0].send_frame("user", 1, {"type": "e"}, b"m" * 3000)

    rig.env.process(sender())
    rig.env.run(until=1e6)
    flow = rig.pipes[0]._tx[1]
    assert flow.window.in_flight == 0, "delayed ack should have drained the window"
    assert rig.stats[1].acks_sent >= 1
