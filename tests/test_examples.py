"""The shipped examples must keep running (fast subset)."""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name):
    sys.path.insert(0, str(EXAMPLES))
    try:
        mod = importlib.import_module(name)
        importlib.reload(mod)  # fresh module state per test
        mod.main()
    finally:
        sys.path.remove(str(EXAMPLES))


@pytest.mark.parametrize(
    "name",
    ["quickstart", "one_sided_lapi", "protocol_trace", "stencil_topology",
     "mpl_legacy", "rma_halo"],
)
def test_example_runs(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"
    assert "MISMATCH" not in out
    assert "NO" not in out.split()
