"""Unit tests for the HAL packet layer."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hal import Hal, fragment
from repro.machine import Cpu, MachineParams, NodeStats
from repro.network import Adapter, SwitchFabric
from repro.sim import Environment


# ------------------------------------------------------------- fragment


def test_fragment_exact_multiple():
    assert fragment(2048, 1024) == [(0, 1024), (1024, 1024)]


def test_fragment_remainder():
    assert fragment(2500, 1024) == [(0, 1024), (1024, 1024), (2048, 452)]


def test_fragment_zero_bytes_is_one_empty_packet():
    assert fragment(0, 1024) == [(0, 0)]


def test_fragment_rejects_bad_args():
    with pytest.raises(ValueError):
        fragment(-1, 1024)
    with pytest.raises(ValueError):
        fragment(10, 0)


@given(st.integers(min_value=0, max_value=100_000),
       st.integers(min_value=1, max_value=4096))
def test_fragment_covers_everything_once(nbytes, payload):
    chunks = fragment(nbytes, payload)
    # contiguous, non-overlapping, covering [0, nbytes)
    pos = 0
    for off, ln in chunks:
        assert off == pos
        assert 0 <= ln <= payload
        pos += ln
    assert pos == max(nbytes, 0)
    if nbytes > 0:
        assert all(ln > 0 for _off, ln in chunks)


# ------------------------------------------------------------------ Hal


def rig():
    env = Environment()
    params = MachineParams()
    fabric = SwitchFabric(env, params, rng=np.random.default_rng(0))
    stats = [NodeStats(), NodeStats()]
    cpus = [Cpu(env, params, s) for s in stats]
    adapters = [Adapter(env, params, fabric, i, stats[i]) for i in range(2)]
    hals = [Hal(env, cpus[i], adapters[i], params, stats[i], 30) for i in range(2)]
    return env, params, hals, stats


def test_oversized_payload_rejected():
    env, params, hals, stats = rig()

    def proc():
        yield from hals[0].send("user", 1, {"kind": "x"}, b"z" * 5000)

    env.process(proc())
    with pytest.raises(ValueError, match="exceeds packet_payload"):
        env.run()


def test_send_charges_hal_cost_and_delivers():
    env, params, hals, stats = rig()
    got = []

    def sender():
        t0 = env.now
        yield from hals[0].send("user", 1, {"kind": "t"}, b"hello")
        got.append(env.now - t0)

    def receiver():
        yield hals[1].wait_rx()
        pkt = hals[1].poll()
        got.append(pkt.payload)

    env.process(sender())
    env.process(receiver())
    env.run()
    assert got[0] >= params.hal_send_pkt_us
    assert got[1] == b"hello"


def test_header_bytes_accounted_on_wire():
    env, params, hals, stats = rig()

    def sender():
        yield from hals[0].send("user", 1, {"kind": "t"}, b"12345678")

    env.process(sender())
    env.run()
    assert stats[0].bytes_on_wire == 30 + 8


def test_charge_recv_costs_time():
    env, params, hals, stats = rig()
    marks = []

    def proc():
        t0 = env.now
        yield from hals[0].charge_recv("user")
        marks.append(env.now - t0)

    env.process(proc())
    env.run()
    assert marks[0] == pytest.approx(params.hal_recv_pkt_us)
