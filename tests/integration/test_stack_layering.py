"""Figure 1's layering, asserted structurally.

(a) native:   MPI → MPCI → Pipes → HAL → adapter → fabric
(c) MPI-LAPI: MPI → thin MPCI → LAPI → HAL → adapter → fabric

The layers must actually be wired through each other (not just exist),
and the two stacks must NOT share the layer the paper removes/adds.
"""

import pytest

from repro import SPCluster
from repro.hal import Hal
from repro.lapi import Lapi
from repro.mpi.backends import LapiBackend, NativeBackend
from repro.network.adapter import Adapter
from repro.pipes import PipeEndpoint


def test_native_stack_composition():
    cl = SPCluster(2, stack="native")
    for i, backend in enumerate(cl.backends):
        assert isinstance(backend, NativeBackend)
        # MPCI drives the Pipes endpoint...
        assert isinstance(backend.pipes, PipeEndpoint)
        assert backend.pipes.on_packet is not None
        # ...which sits on the HAL, which sits on the adapter
        assert isinstance(backend.pipes.hal, Hal)
        assert isinstance(backend.pipes.hal.adapter, Adapter)
        assert backend.pipes.hal.adapter.node_id == i
        # the native stack has no LAPI
        assert cl.lapis[i] is None
        # native packet headers are the small MPCI/pipe headers
        assert backend.pipes.hal.header_bytes == cl.params.native_header_bytes


def test_mpi_lapi_stack_composition():
    cl = SPCluster(2, stack="lapi-enhanced")
    for i, backend in enumerate(cl.backends):
        assert isinstance(backend, LapiBackend)
        # thin MPCI sits on LAPI
        assert isinstance(backend.lapi, Lapi)
        # LAPI replaced the Pipes layer entirely (Fig 1c)
        assert cl.pipes[i] is None
        # LAPI sits on the same HAL/adapter substrate
        assert isinstance(backend.lapi.hal, Hal)
        assert backend.lapi.hal.adapter.node_id == i
        # MPI-LAPI pays the larger LAPI header (paper §6.1)
        assert backend.lapi.hal.header_bytes == cl.params.lapi_header_bytes
        # the MPI protocol handlers are registered with LAPI
        for hh in ("mpi_eager", "mpi_rts", "mpi_rts_ack", "mpi_rdata", "mpi_bfree"):
            assert hh in backend.lapi._handlers


def test_both_stacks_share_matching_machinery():
    """The paper keeps MPCI's matching semantics in both stacks."""
    from repro.mpci import EarlyArrivalQueue, PostedReceiveQueue

    for stack in ("native", "lapi-enhanced"):
        cl = SPCluster(2, stack=stack)
        b = cl.backends[0]
        assert isinstance(b.posted, PostedReceiveQueue)
        assert isinstance(b.early, EarlyArrivalQueue)


def test_raw_lapi_has_no_mpi_layer():
    cl = SPCluster(2, stack="raw-lapi")
    assert cl.backends == []
    assert all(isinstance(l, Lapi) for l in cl.lapis)
    assert all(c is None for c in cl.comms)


def test_enhanced_flag_reaches_lapi():
    assert SPCluster(2, stack="lapi-enhanced").lapis[0].enhanced
    assert not SPCluster(2, stack="lapi-base").lapis[0].enhanced
    assert not SPCluster(2, stack="lapi-counters").lapis[0].enhanced
