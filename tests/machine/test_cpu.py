"""Unit tests for the CPU scheduler and its switch accounting."""

import pytest

from repro.machine import Cpu, MachineParams, NodeStats
from repro.sim import Environment


def make_cpu(**overrides):
    env = Environment()
    params = MachineParams(**overrides)
    stats = NodeStats()
    return env, Cpu(env, params, stats), stats


def test_single_thread_no_switch_cost():
    env, cpu, stats = make_cpu(ctx_switch_us=100.0)

    def proc():
        yield from cpu.execute("user", 5.0)
        yield from cpu.execute("user", 5.0)

    p = env.process(proc())
    env.run(until=p)
    assert env.now == pytest.approx(10.0)
    assert stats.ctx_switches == 0


def test_thread_change_charges_ctx_switch():
    env, cpu, stats = make_cpu(ctx_switch_us=24.0)

    def proc():
        yield from cpu.execute("user", 1.0)
        yield from cpu.execute("cmpl", 1.0)
        yield from cpu.execute("user", 1.0)

    p = env.process(proc())
    env.run(until=p)
    # first execute: no previous thread; then two switches
    assert env.now == pytest.approx(3.0 + 2 * 24.0)
    assert stats.ctx_switches == 2


def test_interrupt_charges_overhead_not_switch():
    env, cpu, stats = make_cpu(ctx_switch_us=50.0, interrupt_overhead_us=7.0)

    def proc():
        yield from cpu.execute("user", 1.0)
        yield from cpu.execute("irq0", 2.0)
        yield from cpu.execute("user", 1.0)

    p = env.process(proc())
    env.run(until=p)
    # 1 + (7 + 2) + 1 : the return to the preempted thread is free
    assert env.now == pytest.approx(11.0)
    assert stats.ctx_switches == 0
    assert stats.interrupts == 1


def test_consecutive_irq_sections_charged_once():
    env, cpu, stats = make_cpu(interrupt_overhead_us=9.0)

    def proc():
        yield from cpu.execute("irq0", 1.0)
        yield from cpu.execute("irq0", 1.0)

    p = env.process(proc())
    env.run(until=p)
    assert stats.interrupts == 1
    assert env.now == pytest.approx(9.0 + 2.0)


def test_mutual_exclusion_serialises_contexts():
    env, cpu, stats = make_cpu(ctx_switch_us=0.0)
    order = []

    def worker(tag, cost):
        yield from cpu.execute(tag, cost)
        order.append((tag, env.now))

    env.process(worker("a", 10.0))
    env.process(worker("b", 5.0))
    env.run()
    assert order == [("a", 10.0), ("b", 15.0)]


def test_memcpy_records_stats_and_charges_time():
    env, cpu, stats = make_cpu(copy_bandwidth_MBps=100.0, copy_setup_us=0.0)

    def proc():
        yield from cpu.memcpy("user", 1000)

    p = env.process(proc())
    env.run(until=p)
    assert stats.copies == 1
    assert stats.bytes_copied == 1000
    assert env.now == pytest.approx(10.0)


def test_busy_time_accumulates():
    env, cpu, stats = make_cpu(ctx_switch_us=0.0)

    def proc():
        yield from cpu.execute("user", 3.0)
        yield env.timeout(100.0)  # idle
        yield from cpu.execute("user", 4.0)

    p = env.process(proc())
    env.run(until=p)
    assert cpu.busy_us == pytest.approx(7.0)


def test_zero_cost_execute_is_legal():
    env, cpu, stats = make_cpu()

    def proc():
        yield from cpu.execute("user", 0.0)
        return env.now

    p = env.process(proc())
    assert env.run(until=p) == 0.0
