"""Hardware presets (the paper's two node generations)."""

from repro import MachineParams
from repro.bench.harness import pingpong_us


def test_presets_validate():
    MachineParams.tbmx_332().validate()
    MachineParams.tb3_p2sc().validate()


def test_tbmx_is_smp():
    assert MachineParams.tbmx_332().cpus_per_node == 4
    assert MachineParams.tb3_p2sc().cpus_per_node == 1


def test_tb3_is_slower_end_to_end():
    new = pingpong_us("lapi-enhanced", 4096, reps=5, params=MachineParams())
    old = pingpong_us("lapi-enhanced", 4096, reps=5,
                      params=MachineParams.tb3_p2sc())
    assert old > new


def test_paper_shape_holds_on_tb3_too():
    """The MPI-LAPI advantage is generational-portable: it holds on the
    older TB3/P2SC nodes as well (slower memcpy makes it bigger)."""
    p = MachineParams.tb3_p2sc()
    native = pingpong_us("native", 4096, reps=5, params=p)
    lapi = pingpong_us("lapi-enhanced", 4096, reps=5, params=p)
    assert lapi < native
