"""NodeStats bookkeeping."""

from repro.machine import NodeStats
from repro.machine.stats import aggregate


def test_record_copy():
    s = NodeStats()
    s.record_copy(100)
    s.record_copy(50)
    assert s.copies == 2
    assert s.bytes_copied == 150


def test_merged_with_sums_fields():
    a = NodeStats(copies=1, packets_sent=5)
    b = NodeStats(copies=2, packets_sent=7, interrupts=3)
    c = a.merged_with(b)
    assert c.copies == 3
    assert c.packets_sent == 12
    assert c.interrupts == 3
    # originals untouched
    assert a.copies == 1


def test_aggregate_many():
    parts = [NodeStats(msgs_sent=i) for i in range(5)]
    total = aggregate(parts)
    assert total.msgs_sent == 10


def test_as_dict_covers_all_fields():
    s = NodeStats()
    d = s.as_dict()
    assert d["copies"] == 0
    assert "hysteresis_dwells" in d
    assert "deferred_announcements" in d
    assert all(isinstance(v, int) for v in d.values())


def test_trace_noop_without_tracer():
    s = NodeStats()
    s.trace("layer", "event", detail=1)  # must not raise
