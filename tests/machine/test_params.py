"""Unit tests for the cost model."""

import pytest

from repro.machine import MachineParams


def test_defaults_validate():
    MachineParams().validate()


def test_wire_cost_matches_bandwidth():
    p = MachineParams(link_bandwidth_MBps=150.0)
    # 150 MB/s == 150 bytes/us, so 1500 bytes take 10 us
    assert p.wire_cost(1500) == pytest.approx(10.0)


def test_copy_cost_has_setup_term():
    p = MachineParams(copy_bandwidth_MBps=100.0, copy_setup_us=0.5)
    assert p.copy_cost(0) == 0.0
    assert p.copy_cost(100) == pytest.approx(0.5 + 1.0)


def test_dma_cost():
    p = MachineParams(dma_bandwidth_MBps=400.0, dma_setup_us=1.0)
    assert p.dma_cost(400) == pytest.approx(1.0 + 1.0)


def test_route_base_us():
    p = MachineParams(switch_hop_us=0.2, switch_hops=5)
    assert p.route_base_us == pytest.approx(1.0)


def test_replace_returns_new_instance():
    p = MachineParams()
    q = p.replace(eager_limit=128)
    assert q.eager_limit == 128
    assert p.eager_limit == 4096
    assert q is not p


@pytest.mark.parametrize(
    "bad",
    [
        dict(packet_payload=32),
        dict(packet_loss_rate=1.0),
        dict(packet_loss_rate=-0.1),
        dict(route_count=0),
        dict(eager_limit=-1),
        dict(link_bandwidth_MBps=0),
        dict(dma_bandwidth_MBps=-5),
        dict(copy_bandwidth_MBps=0),
        dict(pipe_window_pkts=0),
        dict(lapi_window_pkts=0),
        dict(lapi_header_bytes=2048),
        dict(native_header_bytes=5000),
    ],
)
def test_validate_rejects_bad_values(bad):
    with pytest.raises(ValueError):
        MachineParams(**bad).validate()
