"""Multi-core CPU scheduling (SMP nodes)."""

import pytest

from repro.machine import Cpu, MachineParams, NodeStats
from repro.sim import Environment


def make(cores, **overrides):
    env = Environment()
    params = MachineParams(**overrides)
    stats = NodeStats()
    return env, Cpu(env, params, stats, cores=cores), stats


def test_zero_cores_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        Cpu(env, MachineParams(), NodeStats(), cores=0)


def test_two_threads_run_concurrently_on_two_cores():
    env, cpu, stats = make(2)
    done = {}

    def worker(tag):
        yield from cpu.execute(tag, 10.0)
        done[tag] = env.now

    env.process(worker("a"))
    env.process(worker("b"))
    env.run()
    assert done == {"a": 10.0, "b": 10.0}  # no serialisation


def test_three_threads_on_two_cores_serialise_one():
    env, cpu, stats = make(2, ctx_switch_us=0.0)
    done = {}

    def worker(tag):
        yield from cpu.execute(tag, 10.0)
        done[tag] = env.now

    for t in ("a", "b", "c"):
        env.process(worker(t))
    env.run()
    assert sorted(done.values()) == [10.0, 10.0, 20.0]


def test_affinity_avoids_switch_charge():
    env, cpu, stats = make(2, ctx_switch_us=100.0)

    def seq():
        yield from cpu.execute("a", 1.0)
        yield from cpu.execute("b", 1.0)  # lands on the other core
        yield from cpu.execute("a", 1.0)  # back on core 0: no switch
        yield from cpu.execute("b", 1.0)  # back on core 1: no switch

    p = env.process(seq())
    env.run(until=p)
    assert stats.ctx_switches == 0
    assert env.now == pytest.approx(4.0)


def test_single_core_still_charges_switches():
    env, cpu, stats = make(1, ctx_switch_us=24.0)

    def seq():
        yield from cpu.execute("a", 1.0)
        yield from cpu.execute("b", 1.0)

    p = env.process(seq())
    env.run(until=p)
    assert stats.ctx_switches == 1


def test_smp_shrinks_base_variant_penalty():
    """On a 2-way SMP the completion thread gets its own core, so the
    MPI-LAPI Base latency approaches Enhanced — the architectural reason
    the paper's enhanced-LAPI fix matters most on uniprocessor nodes."""
    from repro.bench.harness import pingpong_us

    base_up = pingpong_us("lapi-base", 64, reps=6,
                          params=MachineParams(cpus_per_node=1))
    base_smp = pingpong_us("lapi-base", 64, reps=6,
                           params=MachineParams(cpus_per_node=2))
    enhanced = pingpong_us("lapi-enhanced", 64, reps=6)
    assert base_smp < base_up
    gap_up = base_up - enhanced
    gap_smp = base_smp - enhanced
    assert gap_smp < 0.5 * gap_up


def test_enhanced_unaffected_by_smp():
    from repro.bench.harness import pingpong_us

    e1 = pingpong_us("lapi-enhanced", 64, reps=6,
                     params=MachineParams(cpus_per_node=1))
    e2 = pingpong_us("lapi-enhanced", 64, reps=6,
                     params=MachineParams(cpus_per_node=4))
    assert abs(e1 - e2) < 3.0
