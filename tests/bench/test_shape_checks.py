"""The figure shape-check functions must actually detect deviations
(synthetic data), and the harness drivers must return sane values."""

import pytest

from repro.bench import fig10, fig11, fig12, fig13, nas
from repro.bench.figures import geometric_sizes, reps_for


# ----------------------------------------------------------- figures util


def test_geometric_sizes():
    assert geometric_sizes(1, 64, 4) == [1, 4, 16, 64]
    assert geometric_sizes(2, 2, 4) == [2]


def test_reps_scale_down_for_big_messages():
    assert reps_for(64) > reps_for(1 << 20)


# ------------------------------------------------------- fig10 detection


def _fig10_row(size, raw, base, counters, enhanced):
    return {"size": size, "raw-lapi": raw, "lapi-base": base,
            "lapi-counters": counters, "lapi-enhanced": enhanced}


def test_fig10_accepts_paper_shape():
    rows = [_fig10_row(64, 15.0, 65.0, 17.0, 17.5)]
    assert fig10.check_shape(rows) == []


def test_fig10_rejects_base_faster_than_enhanced():
    rows = [_fig10_row(64, 15.0, 16.0, 17.0, 17.5)]
    assert fig10.check_shape(rows)


def test_fig10_rejects_enhanced_far_from_raw():
    rows = [_fig10_row(64, 10.0, 99.0, 40.0, 30.0)]
    assert any("raw LAPI" in p for p in fig10.check_shape(rows))


# ------------------------------------------------------- fig11 detection


def _fig11_row(size, native, lapi):
    return {"size": size, "native": native, "lapi-enhanced": lapi,
            "improvement_%": 100.0 * (native - lapi) / native}


def test_fig11_accepts_crossover_shape():
    rows = [_fig11_row(4, 15.0, 16.5), _fig11_row(4096, 140.0, 80.0)]
    assert fig11.check_shape(rows) == []


def test_fig11_rejects_native_never_ahead():
    rows = [_fig11_row(4, 20.0, 15.0), _fig11_row(4096, 140.0, 80.0)]
    assert fig11.check_shape(rows)


def test_fig11_rejects_lapi_losing_large():
    rows = [_fig11_row(4, 15.0, 16.5), _fig11_row(4096, 80.0, 140.0)]
    assert fig11.check_shape(rows)


# ------------------------------------------------------- fig12 detection


def _fig12_row(size, native, lapi):
    return {"size": size, "native": native, "lapi-enhanced": lapi,
            "improvement_%": 100.0 * (lapi - native) / native}


def test_fig12_accepts_paper_shape():
    rows = [_fig12_row(4096, 45.0, 90.0), _fig12_row(65536, 75.0, 95.0),
            _fig12_row(1 << 20, 98.0, 96.0)]
    assert fig12.check_shape(rows) == []


def test_fig12_rejects_no_mid_range_win():
    rows = [_fig12_row(4096, 90.0, 91.0), _fig12_row(1 << 20, 98.0, 96.0)]
    assert fig12.check_shape(rows)


def test_fig12_rejects_divergence_at_top():
    rows = [_fig12_row(4096, 45.0, 90.0), _fig12_row(1 << 20, 50.0, 96.0)]
    assert any("converge" in p for p in fig12.check_shape(rows))


# ------------------------------------------------------- fig13 detection


def test_fig13_detection():
    good = [{"size": 4, "native": 150.0, "lapi-enhanced": 50.0, "speedup_x": 3.0}]
    bad = [{"size": 4, "native": 55.0, "lapi-enhanced": 50.0, "speedup_x": 1.1}]
    assert fig13.check_shape(good) == []
    assert fig13.check_shape(bad)


# --------------------------------------------------------- nas detection


def _nas(kernel, native, lapi):
    return {"kernel": kernel.upper(), "native_us": native, "mpi_lapi_us": lapi,
            "improvement_%": 100.0 * (native - lapi) / native}


def test_nas_accepts_paper_shape():
    rows = [_nas(k, 100.0, 75.0) for k in nas.IMPROVERS]
    rows += [_nas(k, 100.0, 98.0) for k in nas.FLAT]
    assert nas.check_shape(rows) == []


def test_nas_rejects_lapi_regression():
    rows = [_nas(k, 100.0, 75.0) for k in nas.IMPROVERS]
    rows += [_nas(k, 100.0, 98.0) for k in nas.FLAT]
    rows[0] = _nas("lu", 100.0, 130.0)
    assert nas.check_shape(rows)


def test_nas_rejects_inverted_groups():
    rows = [_nas(k, 100.0, 99.0) for k in nas.IMPROVERS]
    rows += [_nas(k, 100.0, 60.0) for k in nas.FLAT]
    assert any("comm-bound" in p for p in nas.check_shape(rows))


# ----------------------------------------------------------- live drivers


def test_rows_with_custom_sizes_fast():
    data = fig11.rows(sizes=[8, 2048])
    assert [r["size"] for r in data] == [8, 2048]
    assert all(r["native"] > 0 and r["lapi-enhanced"] > 0 for r in data)


def test_bandwidth_driver_rejects_zero_size():
    from repro.bench.harness import bandwidth_mbps

    with pytest.raises(ValueError):
        bandwidth_mbps("native", 0)
