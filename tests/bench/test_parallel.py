"""The parallel sweep runner must reproduce serial results exactly.

Every sweep cell builds its own :class:`Environment` and derives all
randomness from its own explicit arguments, so fanning cells across
worker processes cannot change any result — these tests pin that
byte-identity for the runner itself and for a mixed real sweep
(a fig11 latency point, a fault-injection cell, and a NAS kernel).
"""

import dataclasses
import json

import pytest

from repro.bench.parallel import Cell, default_jobs, run_cells


def _square(x):
    return x * x


def _tag(prefix, x, suffix=""):
    return f"{prefix}{x}{suffix}"


def test_cell_is_callable_and_reprs():
    c = Cell(_tag, "n", 3, suffix="!")
    assert c() == "n3!"
    assert "_tag" in repr(c)


def test_run_cells_preserves_submission_order():
    cells = [Cell(_square, i) for i in range(20)]
    assert run_cells(cells, jobs=4) == [i * i for i in range(20)]


def test_serial_modes_are_equivalent():
    cells = [Cell(_square, i) for i in range(5)]
    expect = [i * i for i in range(5)]
    assert run_cells(cells) == expect            # jobs=None
    assert run_cells(cells, jobs=1) == expect    # explicit serial
    assert run_cells(cells, jobs=-3) == expect   # nonsense -> serial


def test_jobs_zero_means_one_worker_per_cpu():
    assert default_jobs() >= 1
    cells = [Cell(_square, i) for i in range(4)]
    assert run_cells(cells, jobs=0) == [0, 1, 4, 9]


def test_single_cell_runs_in_process():
    assert run_cells([Cell(_square, 7)], jobs=8) == [49]


@pytest.mark.parametrize("jobs", [2, 3])
def test_mixed_sweep_parallel_identical_to_serial(jobs):
    """One cell from each sweep family, serial vs parallel."""
    from repro.bench.fig11 import _row as fig11_row
    from repro.bench.nas import _row as nas_row
    from repro.faults.campaign import _reference_payload, _run_cell
    from repro.faults.plan import builtin_plan

    ref = _reference_payload("pingpong", "lapi-enhanced", 0, None)
    cells = [
        Cell(fig11_row, 256, None),
        Cell(_run_cell, builtin_plan("loss-burst"), "pingpong", ref,
             "lapi-enhanced", 0, None, False),
        Cell(nas_row, "is", 4, None),
    ]
    serial = run_cells(cells, jobs=None)
    parallel = run_cells(cells, jobs=jobs)

    # Byte-level identity, not approximate equality.
    def canon(results):
        return json.dumps(
            [dataclasses.asdict(r) if dataclasses.is_dataclass(r) else r
             for r in results],
            sort_keys=True)

    assert canon(parallel) == canon(serial)


def test_fig11_rows_worker_count_invariant():
    from repro.bench import fig11

    sizes = [64, 4096]
    serial = fig11.rows(sizes=sizes)
    assert fig11.rows(sizes=sizes, jobs=2) == serial
