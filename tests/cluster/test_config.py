"""ClusterConfig presets and the named RNG substreams."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, PRESETS, SPCluster, preset
from repro.rngs import RngStreams, STREAMS


# ----------------------------------------------------------- ClusterConfig
def test_preset_names():
    assert set(PRESETS) == {"paper_4node", "interrupt_mode", "lossy"}


def test_paper_4node_builds_four_nodes():
    cluster = preset("paper_4node").build()
    assert cluster.num_nodes == 4
    assert cluster.stack == "lapi-enhanced"


def test_interrupt_mode_preset():
    cluster = preset("interrupt_mode").build()
    assert cluster.interrupt_mode
    assert cluster.num_nodes == 2


def test_lossy_preset_sets_loss_floor():
    cfg = preset("lossy")
    assert cfg.params.packet_loss_rate == pytest.approx(0.05)
    cfg2 = preset("lossy", rate=0.2)
    assert cfg2.params.packet_loss_rate == pytest.approx(0.2)


def test_preset_overrides_and_replace():
    cfg = preset("paper_4node", stack="native", seed=3)
    assert (cfg.num_nodes, cfg.stack, cfg.seed) == (4, "native", 3)
    cfg2 = cfg.replace(trace=True)
    assert cfg2.trace and not cfg.trace


def test_with_params_layers_machine_overrides():
    cfg = ClusterConfig().with_params(adapter_recv_fifo=8)
    assert cfg.params.adapter_recv_fifo == 8


def test_from_config_equivalent_to_build():
    cfg = preset("interrupt_mode", seed=11)
    a = SPCluster.from_config(cfg)
    b = cfg.build()
    assert a.num_nodes == b.num_nodes
    assert a.interrupt_mode == b.interrupt_mode
    assert a.seed == b.seed


def test_unknown_preset_raises():
    with pytest.raises(KeyError):
        preset("nope")


def test_config_runs_a_program():
    cluster = preset("paper_4node", num_nodes=2).build()

    def program(comm, rank, size):
        if rank == 0:
            yield from comm.send(b"hi", dest=1)
        else:
            buf = bytearray(2)
            yield from comm.recv(buf, source=0)
            return bytes(buf)

    result = cluster.run(program)
    assert result.values[1] == b"hi"


# ------------------------------------------------------------- RngStreams
def test_streams_are_deterministic_per_seed():
    a, b = RngStreams(42), RngStreams(42)
    for name in STREAMS[:2]:
        assert a.get(name).random() == b.get(name).random()
    assert a.node(3).random() == b.node(3).random()


def test_streams_are_mutually_independent():
    s = RngStreams(0)
    draws = {s.fabric.random(), s.faults.random(), s.node(0).random(),
             s.node(1).random()}
    assert len(draws) == 4  # astronomically unlikely to collide


def test_node_streams_independent_of_request_order():
    a, b = RngStreams(7), RngStreams(7)
    a.node(0), a.node(1)  # warm in opposite orders
    b.node(1), b.node(0)
    assert a.node(1).random() == b.node(1).random()


def test_unknown_stream_rejected():
    with pytest.raises(KeyError):
        RngStreams(0).get("bogus")


def test_cluster_fabric_uses_fabric_stream():
    cluster = SPCluster(2, seed=5)
    expected = RngStreams(5).fabric
    assert cluster.fabric.rng.random() == expected.random()


def test_fault_draws_do_not_perturb_fabric_stream():
    """The point of the substreams: enabling fault injection must not
    shift the fabric's jitter trajectory for the same seed."""
    from repro.bench.harness import pingpong_us
    from repro.faults import FaultPlan, LossBurst

    base = pingpong_us("lapi-enhanced", 256, reps=4, seed=3)
    # a plan whose only event opens long after the run finished: the
    # fault machinery is armed (point installed) but never draws
    late = FaultPlan("late", (LossBurst(at_us=1e9, duration_us=1.0),))
    cluster = SPCluster(2, stack="lapi-enhanced", seed=3, fault_plan=late)

    def program(comm, rank, size):
        buf = bytearray(256)
        payload = bytes(256)
        yield from comm.barrier()
        t0 = None
        for i in range(6):
            if i == 2:
                t0 = comm.env.now
            if rank == 0:
                yield from comm.send(payload, dest=1)
                yield from comm.recv(buf, source=1)
            else:
                yield from comm.recv(buf, source=0)
                yield from comm.send(payload, dest=0)
        return (comm.env.now - t0) / 4 / 2.0 if rank == 0 else None

    assert cluster.run(program).values[0] == pytest.approx(base, abs=1e-12)


def test_numpy_generator_types():
    s = RngStreams(1)
    assert isinstance(s.fabric, np.random.Generator)
    assert isinstance(s.node(0), np.random.Generator)
