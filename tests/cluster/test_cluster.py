"""Cluster assembly, determinism, deadlock detection, stats plumbing."""

import numpy as np
import pytest

from repro import MachineParams, SPCluster, STACKS
from repro.sim import SimulationError


def test_unknown_stack_rejected():
    with pytest.raises(ValueError, match="unknown stack"):
        SPCluster(2, stack="carrier-pigeon")


def test_zero_nodes_rejected():
    with pytest.raises(ValueError):
        SPCluster(0)


def test_all_stacks_construct():
    for stack in STACKS:
        SPCluster(2, stack=stack)


def test_params_validated_at_build():
    with pytest.raises(ValueError):
        SPCluster(2, params=MachineParams(route_count=0))


def test_run_returns_per_rank_values_and_times():
    cl = SPCluster(3)

    def program(comm, rank, size):
        yield comm.env.timeout(rank * 10.0)
        return rank * 2

    res = cl.run(program)
    assert res.values == [0, 2, 4]
    assert [r.rank for r in res.ranks] == [0, 1, 2]
    assert res.ranks[2].finished_at >= 20.0
    assert res.elapsed_us >= 20.0


def test_program_args_and_kwargs_forwarded():
    cl = SPCluster(2)

    def program(comm, rank, size, a, b=0):
        yield comm.env.timeout(1.0)
        return (a, b, size)

    res = cl.run(program, 7, b=9)
    assert res.values == [(7, 9, 2), (7, 9, 2)]


def test_deadlock_surfaces_as_simulation_error():
    cl = SPCluster(2)

    def program(comm, rank, size):
        # both ranks receive, nobody sends
        buf = bytearray(4)
        yield from comm.recv(buf, source=1 - rank)

    with pytest.raises(SimulationError, match="deadlock"):
        cl.run(program)


def test_determinism_same_seed_same_timings():
    def program(comm, rank, size):
        buf = np.zeros(2048, dtype=np.uint8)
        if rank == 0:
            yield from comm.send(buf, dest=1)
            yield from comm.recv(buf, source=1)
        else:
            yield from comm.recv(buf, source=0)
            yield from comm.send(buf, dest=0)
        return comm.env.now

    t1 = SPCluster(2, seed=42).run(program).values
    t2 = SPCluster(2, seed=42).run(program).values
    t3 = SPCluster(2, seed=43).run(program).values
    assert t1 == t2
    assert t1 != t3  # jitter differs with the seed


def test_program_exception_propagates():
    cl = SPCluster(2)

    def program(comm, rank, size):
        yield comm.env.timeout(1.0)
        if rank == 1:
            raise ValueError("rank 1 exploded")

    with pytest.raises(ValueError, match="rank 1 exploded"):
        cl.run(program)


def test_two_programs_sequentially_on_same_cluster():
    cl = SPCluster(2)

    def program(comm, rank, size):
        yield from comm.barrier()
        return comm.env.now

    r1 = cl.run(program)
    r2 = cl.run(program)
    assert r2.ranks[0].finished_at > r1.ranks[0].finished_at


def test_stats_aggregation_sums_nodes():
    cl = SPCluster(2)

    def program(comm, rank, size):
        if rank == 0:
            yield from comm.send(b"x" * 100, dest=1)
        else:
            buf = bytearray(100)
            yield from comm.recv(buf, source=0)

    res = cl.run(program)
    per_node = [s.packets_sent for s in cl.node_stats]
    assert res.stats.packets_sent == sum(per_node)


def test_raw_lapi_stack_has_no_comms():
    cl = SPCluster(2, stack="raw-lapi")
    assert cl.comms == [None, None]
    assert all(l is not None for l in cl.lapis)


def test_single_node_cluster_runs_local_program():
    cl = SPCluster(1)

    def program(comm, rank, size):
        yield from comm.barrier()  # size-1 barrier is a no-op
        out = np.zeros(1)
        yield from comm.allreduce(np.ones(1), out)
        return float(out[0])

    assert cl.run(program).values == [1.0]
