"""Unit + property tests for envelope matching."""

from hypothesis import given
from hypothesis import strategies as st

from repro.mpci import (
    ANY_SOURCE,
    ANY_TAG,
    EarlyArrivalQueue,
    Envelope,
    PostedReceiveQueue,
    envelope_matches,
)


def test_exact_match():
    env = Envelope(context=5, src=2, tag=9)
    assert envelope_matches(5, 2, 9, env)


def test_context_must_match_even_with_wildcards():
    env = Envelope(context=5, src=2, tag=9)
    assert not envelope_matches(6, ANY_SOURCE, ANY_TAG, env)


def test_wildcards():
    env = Envelope(context=1, src=3, tag=7)
    assert envelope_matches(1, ANY_SOURCE, 7, env)
    assert envelope_matches(1, 3, ANY_TAG, env)
    assert envelope_matches(1, ANY_SOURCE, ANY_TAG, env)
    assert not envelope_matches(1, 4, ANY_TAG, env)
    assert not envelope_matches(1, ANY_SOURCE, 8, env)


def test_posted_queue_fifo_match_and_inspection_count():
    q = PostedReceiveQueue()
    q.post(1, 0, 5, "r1")
    q.post(1, 0, 6, "r2")
    q.post(1, 0, 5, "r3")
    handle, inspected = q.match(Envelope(1, 0, 5))
    assert handle == "r1"
    assert inspected == 1
    handle, inspected = q.match(Envelope(1, 0, 5))
    assert handle == "r3"
    assert inspected == 2
    assert len(q) == 1


def test_posted_queue_no_match():
    q = PostedReceiveQueue()
    q.post(1, 0, 5, "r1")
    handle, inspected = q.match(Envelope(1, 0, 99))
    assert handle is None
    assert inspected == 1
    assert len(q) == 1


def test_posted_queue_wildcard_recv_matches_any():
    q = PostedReceiveQueue()
    q.post(1, ANY_SOURCE, ANY_TAG, "rw")
    handle, _ = q.match(Envelope(1, 7, 123))
    assert handle == "rw"


def test_posted_queue_cancel():
    q = PostedReceiveQueue()
    q.post(1, 0, 5, "r1")
    assert q.remove("r1")
    assert not q.remove("r1")
    assert len(q) == 0


def test_early_queue_fifo_order_is_matching_order():
    q = EarlyArrivalQueue()
    q.add(Envelope(1, 0, 5), "m1")
    q.add(Envelope(1, 0, 5), "m2")
    got, _ = q.match(1, 0, 5)
    assert got == (Envelope(1, 0, 5), "m1")
    got, _ = q.match(1, ANY_SOURCE, ANY_TAG)
    assert got == (Envelope(1, 0, 5), "m2")
    assert len(q) == 0


def test_early_queue_peek_is_non_destructive():
    q = EarlyArrivalQueue()
    q.add(Envelope(1, 2, 3), "m")
    got, _ = q.peek_match(1, ANY_SOURCE, 3)
    assert got is not None
    assert len(q) == 1


def test_early_queue_no_match_returns_none():
    q = EarlyArrivalQueue()
    q.add(Envelope(1, 2, 3), "m")
    got, inspected = q.match(2, ANY_SOURCE, ANY_TAG)
    assert got is None
    assert inspected == 1


envelopes = st.builds(
    Envelope,
    context=st.integers(min_value=0, max_value=3),
    src=st.integers(min_value=0, max_value=3),
    tag=st.integers(min_value=0, max_value=3),
)


@given(st.lists(envelopes, max_size=30), envelopes)
def test_match_returns_earliest_matching_entry(entries, probe):
    """Property: EA matching always returns the first (oldest) match —
    the non-overtaking guarantee."""
    q = EarlyArrivalQueue()
    for i, env in enumerate(entries):
        q.add(env, i)
    got, _ = q.match(probe.context, probe.src, probe.tag)
    expected = next(
        (
            (env, i)
            for i, env in enumerate(entries)
            if envelope_matches(probe.context, probe.src, probe.tag, env)
        ),
        None,
    )
    assert got == expected


@given(st.lists(envelopes, max_size=30))
def test_posted_and_early_queues_conserve_entries(entries):
    """Matching with the exact envelope drains queues completely and in
    insertion order."""
    q = EarlyArrivalQueue()
    for i, env in enumerate(entries):
        q.add(env, i)
    seen = []
    for env in entries:
        got, _ = q.match(env.context, env.src, env.tag)
        assert got is not None
        seen.append(got[1])
    assert len(q) == 0
    # every handle seen exactly once
    assert sorted(seen) == list(range(len(entries)))
