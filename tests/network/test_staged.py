"""The contention-aware butterfly fabric."""

import numpy as np
import pytest

from repro import MachineParams, SPCluster
from repro.machine import NodeStats
from repro.network import Adapter
from repro.network.staged import StagedFabric, butterfly_links
from repro.sim import Environment


# --------------------------------------------------------- routing math


def test_butterfly_links_count_equals_stages():
    assert len(butterfly_links(0, 3, 2)) == 2
    assert len(butterfly_links(5, 2, 3)) == 3


def test_butterfly_paths_unique_per_pair():
    stages = 3  # 8 nodes
    for src in range(8):
        for dst in range(8):
            path = butterfly_links(src, dst, stages)
            assert len(set(path)) == stages


def test_butterfly_converging_flows_share_final_link():
    """All packets to one destination share the last-stage link."""
    stages = 3
    finals = {butterfly_links(s, 5, stages)[-1] for s in range(8)}
    assert len(finals) == 1


def test_butterfly_disjoint_permutation_paths():
    """The identity permutation uses pairwise disjoint paths."""
    stages = 3
    used = set()
    for node in range(8):
        for link in butterfly_links(node, node, stages):
            assert link not in used
            used.add(link)


# ------------------------------------------------------- fabric behaviour


def build(n=4, **overrides):
    env = Environment()
    params = MachineParams(fabric_model="staged", **overrides)
    fabric = StagedFabric(env, params, rng=np.random.default_rng(1))
    stats = [NodeStats() for _ in range(n)]
    adapters = [Adapter(env, params, fabric, i, stats[i]) for i in range(n)]
    return env, params, fabric, adapters, stats


def collect(env, adapter, out):
    def proc():
        while True:
            pkt = adapter.poll()
            if pkt is not None:
                out.append((env.now, pkt))
            else:
                yield adapter.wait_rx()

    env.process(proc())


def test_single_packet_delivery_staged():
    env, params, fabric, adapters, stats = build(route_jitter_us=0.0)
    got = []
    collect(env, adapters[1], got)

    from repro.network.packet import Packet

    def sender():
        yield adapters[0].enqueue_send(
            Packet(src=0, dst=1, header={"kind": "t"}, payload=b"hi", header_bytes=30)
        )

    env.process(sender())
    env.run(until=1e5)
    assert len(got) == 1
    assert got[0][1].payload == b"hi"
    assert fabric.delivered == 1
    assert fabric.stages == 2  # 4 nodes


def test_incast_contention_serialises_at_shared_link():
    """Three senders to one receiver: the staged fabric queues them at
    the converging links; the delay fabric would deliver in parallel."""
    times = {}
    for model in ("delay", "staged"):
        cl = SPCluster(4, stack="lapi-enhanced",
                       params=MachineParams(fabric_model=model, route_count=1,
                                            route_jitter_us=0.0))

        def program(comm, rank, size):
            n = 16384
            if rank == 0:
                bufs = [np.zeros(n, dtype=np.uint8) for _ in range(3)]
                reqs = []
                for i in range(3):
                    r = yield from comm.irecv(bufs[i], source=i + 1)
                    reqs.append(r)
                yield from comm.waitall(reqs)
                return comm.env.now
            yield from comm.send(np.zeros(16384, dtype=np.uint8), dest=0)
            return None

        times[model] = cl.run(program).values[0]
    assert times["staged"] >= times["delay"] * 0.95
    # contention was actually recorded
    cl2 = SPCluster(4, params=MachineParams(fabric_model="staged", route_count=1,
                                            route_jitter_us=0.0))

    def program2(comm, rank, size):
        if rank == 0:
            bufs = [np.zeros(16384, dtype=np.uint8) for _ in range(3)]
            reqs = []
            for i in range(3):
                r = yield from comm.irecv(bufs[i], source=i + 1)
                reqs.append(r)
            yield from comm.waitall(reqs)
        else:
            yield from comm.send(np.zeros(16384, dtype=np.uint8), dest=0)

    cl2.run(program2)
    assert cl2.fabric.contention_us > 0


def test_parallel_planes_reduce_contention():
    def contention(route_count):
        cl = SPCluster(4, params=MachineParams(fabric_model="staged",
                                               route_count=route_count,
                                               route_jitter_us=0.0))

        def program(comm, rank, size):
            if rank == 0:
                bufs = [np.zeros(32768, dtype=np.uint8) for _ in range(3)]
                reqs = []
                for i in range(3):
                    r = yield from comm.irecv(bufs[i], source=i + 1)
                    reqs.append(r)
                yield from comm.waitall(reqs)
            else:
                yield from comm.send(np.zeros(32768, dtype=np.uint8), dest=0)

        cl.run(program)
        return cl.fabric.contention_us

    assert contention(4) < contention(1)


@pytest.mark.parametrize("stack", ["native", "lapi-enhanced"])
def test_mpi_correct_on_staged_fabric(stack):
    cl = SPCluster(4, stack=stack, params=MachineParams(fabric_model="staged"))
    payload = np.random.default_rng(0).integers(0, 256, 10000, dtype=np.uint8)

    def program(comm, rank, size):
        out = np.zeros((size, 16), dtype=np.int64)
        yield from comm.allgather(np.full(16, rank, dtype=np.int64), out)
        if rank == 0:
            yield from comm.send(payload, dest=3)
            return None
        if rank == 3:
            buf = np.zeros(len(payload), dtype=np.uint8)
            yield from comm.recv(buf, source=0)
            return bool(np.array_equal(buf, payload))
        return None

    res = cl.run(program)
    assert res.values[3] is True


def test_nas_kernel_on_staged_fabric():
    from repro.nas import run_kernel

    cl = SPCluster(4, params=MachineParams(fabric_model="staged"))
    result = run_kernel("ft", cl)
    assert all(o.verified for o in result.values)


def test_staged_loss_injection():
    env, params, fabric, adapters, stats = build(packet_loss_rate=0.5)
    from repro.network.packet import Packet

    def sender():
        for _ in range(100):
            yield adapters[0].enqueue_send(
                Packet(src=0, dst=1, header={"kind": "t"}, payload=b"x",
                       header_bytes=30)
            )

    env.process(sender())
    env.run(until=1e6)
    assert fabric.dropped > 20
    assert fabric.delivered + fabric.dropped == 100


def test_bad_fabric_model_rejected():
    with pytest.raises(ValueError, match="fabric_model"):
        MachineParams(fabric_model="quantum").validate()
