"""Unit tests for the switch fabric and adapters."""

import numpy as np
import pytest

from repro.machine import MachineParams, NodeStats
from repro.network import Adapter, Packet, SwitchFabric
from repro.sim import Environment


def build(n=2, seed=1, **overrides):
    env = Environment()
    params = MachineParams(**overrides)
    fabric = SwitchFabric(env, params, rng=np.random.default_rng(seed))
    stats = [NodeStats() for _ in range(n)]
    adapters = [Adapter(env, params, fabric, i, stats[i]) for i in range(n)]
    return env, params, fabric, adapters, stats


def pkt(src, dst, payload=b"x" * 100, header=None, hbytes=30):
    return Packet(src=src, dst=dst, header=header or {"kind": "t"}, payload=payload,
                  header_bytes=hbytes)


def drain(adapter, n, timeout=1e9):
    """Process that collects n packets from an adapter by polling."""
    got = []

    def proc():
        while len(got) < n:
            p = adapter.poll()
            if p is not None:
                got.append(p)
            else:
                yield adapter.wait_rx()

    adapter.env.process(proc())
    return got


def test_single_packet_delivery():
    env, params, fabric, adapters, stats = build()
    got = drain(adapters[1], 1)

    def sender():
        yield adapters[0].enqueue_send(pkt(0, 1, b"hello"))

    env.process(sender())
    env.run()
    assert len(got) == 1
    assert got[0].payload == b"hello"
    assert stats[0].packets_sent == 1
    assert stats[1].packets_received == 1
    assert fabric.delivered == 1


def test_delivery_takes_dma_wire_and_route_time():
    env, params, fabric, adapters, stats = build(route_jitter_us=0.0, route_skew_us=0.0)
    got = []

    def receiver():
        yield adapters[1].wait_rx()
        got.append(env.now)

    def sender():
        yield adapters[0].enqueue_send(pkt(0, 1, b"z" * 970, hbytes=30))

    env.process(receiver())
    env.process(sender())
    env.run()
    wire = 1000 * params.wire_us_per_byte
    dma = params.dma_cost(1000)
    expected = dma + wire + params.route_base_us + dma  # tx dma, wire, fabric, rx dma
    assert got[0] == pytest.approx(expected, rel=0.01)


def test_round_robin_routes():
    env, params, fabric, adapters, stats = build(route_count=4)
    routes = [fabric.pick_route(0, 1) for _ in range(6)]
    assert routes == [0, 1, 2, 3, 0, 1]
    # independent flow has its own rotation
    assert fabric.pick_route(1, 0) == 0


def test_out_of_order_delivery_with_large_skew():
    """With skew much larger than serialisation gap, route r=1 packet
    overtakes nothing but r=0 of the NEXT cycle overtakes r=3."""
    env, params, fabric, adapters, stats = build(
        route_skew_us=200.0, route_jitter_us=0.0, packet_payload=1024
    )
    got = []

    def receiver():
        while len(got) < 6:
            p = adapters[1].poll()
            if p is not None:
                got.append(p.header["seq"])
            else:
                yield adapters[1].wait_rx()

    def sender():
        for i in range(6):
            yield adapters[0].enqueue_send(
                pkt(0, 1, b"d" * 64, header={"kind": "t", "seq": i})
            )

    env.process(receiver())
    env.process(sender())
    env.run()
    assert sorted(got) == list(range(6))
    assert got != sorted(got), "expected out-of-order arrival with huge skew"


def test_packet_loss_injection():
    env, params, fabric, adapters, stats = build(packet_loss_rate=0.5, seed=42)

    def sender():
        for i in range(200):
            yield adapters[0].enqueue_send(pkt(0, 1, b"a" * 10))

    env.process(sender())
    env.run()
    assert fabric.dropped > 30
    assert fabric.delivered > 30
    assert fabric.dropped + fabric.delivered == 200


def test_recv_fifo_overflow_drops():
    env, params, fabric, adapters, stats = build(adapter_recv_fifo=4)

    def sender():
        for i in range(20):
            yield adapters[0].enqueue_send(pkt(0, 1, b"a" * 10))

    env.process(sender())
    env.run()
    # nobody drains node 1, so only 4 packets fit
    assert stats[1].packets_received == 4
    assert stats[1].packets_dropped == 16


def test_send_to_unattached_node_raises():
    env, params, fabric, adapters, stats = build(n=2)
    bad = pkt(0, 99)
    with pytest.raises(KeyError):
        fabric.transmit(bad)


def test_wrong_source_rejected():
    env, params, fabric, adapters, stats = build()
    with pytest.raises(ValueError):
        adapters[0].enqueue_send(pkt(1, 0))


def test_interrupt_mode_fires_isr():
    env, params, fabric, adapters, stats = build(interrupt_latency_us=5.0)
    fired = []

    def isr(adapter):
        while True:
            p = adapter.poll()
            if p is None:
                break
            fired.append((env.now, p.payload))
        yield env.timeout(0)

    adapters[1].set_interrupt_handler(isr)
    adapters[1].set_interrupt_mode(True)

    def sender():
        yield adapters[0].enqueue_send(pkt(0, 1, b"irq!"))

    env.process(sender())
    env.run()
    assert len(fired) == 1
    assert fired[0][1] == b"irq!"


def test_isr_retriggers_for_late_packets():
    env, params, fabric, adapters, stats = build(interrupt_latency_us=1.0)
    seen = []

    def isr(adapter):
        while True:
            p = adapter.poll()
            if p is None:
                break
            seen.append(p.header["seq"])
        yield env.timeout(0)

    adapters[1].set_interrupt_handler(isr)
    adapters[1].set_interrupt_mode(True)

    def sender():
        yield adapters[0].enqueue_send(pkt(0, 1, b"1", header={"kind": "t", "seq": 0}))
        yield env.timeout(500.0)
        yield adapters[0].enqueue_send(pkt(0, 1, b"2", header={"kind": "t", "seq": 1}))

    env.process(sender())
    env.run()
    assert seen == [0, 1]


def test_wait_rx_fires_immediately_if_pending():
    env, params, fabric, adapters, stats = build()

    def sender():
        yield adapters[0].enqueue_send(pkt(0, 1))

    env.process(sender())
    env.run()
    assert adapters[1].rx_pending == 1
    fired = []

    def waiter():
        yield adapters[1].wait_rx()
        fired.append(env.now)

    env.process(waiter())
    env.run()
    assert fired == [env.now]


def test_on_dma_done_signals_buffer_reuse():
    env, params, fabric, adapters, stats = build(route_jitter_us=0.0)
    done_at = []

    def sender():
        ev = env.event()
        yield adapters[0].enqueue_send(pkt(0, 1, b"q" * 970, hbytes=30), on_dma_done=ev)
        yield ev
        done_at.append(env.now)

    env.process(sender())
    env.run()
    assert done_at[0] == pytest.approx(params.dma_cost(1000), rel=0.01)


def test_duplicate_attach_rejected():
    env = Environment()
    params = MachineParams()
    fabric = SwitchFabric(env, params)
    st = NodeStats()
    Adapter(env, params, fabric, 0, st)
    with pytest.raises(ValueError):
        Adapter(env, params, fabric, 0, st)


def test_bandwidth_is_wire_limited_for_back_to_back_packets():
    """With DMA faster than the wire, sustained throughput ~= link rate."""
    env, params, fabric, adapters, stats = build(
        route_jitter_us=0.0, route_skew_us=0.0, dma_bandwidth_MBps=400.0
    )
    n, payload = 64, 1024
    t_done = []

    def receiver():
        count = 0
        while count < n:
            p = adapters[1].poll()
            if p is not None:
                count += 1
            else:
                yield adapters[1].wait_rx()
        t_done.append(env.now)

    def sender():
        for i in range(n):
            yield adapters[0].enqueue_send(pkt(0, 1, b"b" * payload, hbytes=0))

    env.process(receiver())
    env.process(sender())
    env.run()
    total_bytes = n * payload
    mbps = total_bytes / t_done[0]
    assert mbps <= params.link_bandwidth_MBps + 1
    assert mbps > params.link_bandwidth_MBps * 0.8
