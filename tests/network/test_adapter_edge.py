"""Adapter edge behaviour: send-FIFO back-pressure, ISR toggling."""

import numpy as np
import pytest

from repro.machine import MachineParams, NodeStats
from repro.network import Adapter, Packet, SwitchFabric
from repro.sim import Environment


def build(**overrides):
    env = Environment()
    params = MachineParams(**overrides)
    fabric = SwitchFabric(env, params, rng=np.random.default_rng(0))
    stats = [NodeStats(), NodeStats()]
    adapters = [Adapter(env, params, fabric, i, stats[i]) for i in range(2)]
    return env, params, adapters, stats


def pkt(src, dst, n=100):
    return Packet(src=src, dst=dst, header={"kind": "t"}, payload=b"z" * n,
                  header_bytes=30)


def test_send_fifo_backpressure_blocks_producer():
    env, params, adapters, stats = build(adapter_send_fifo=2,
                                         dma_bandwidth_MBps=0.001)
    admitted = []

    def producer():
        for i in range(6):
            yield adapters[0].enqueue_send(pkt(0, 1, 1000))
            admitted.append((i, env.now))

    env.process(producer())
    env.run(until=5000.0)
    # with a glacial DMA, only FIFO-capacity (+1 in-service) admissions fit
    assert len(admitted) <= 4


def test_interrupt_mode_toggle_fires_for_backlog():
    env, params, adapters, stats = build(interrupt_latency_us=5.0)
    seen = []

    def isr(adapter):
        while True:
            p = adapter.poll()
            if p is None:
                break
            seen.append(p.pkt_id)
        yield env.timeout(0)

    def sender():
        yield adapters[0].enqueue_send(pkt(0, 1))

    env.process(sender())
    env.run()
    assert adapters[1].rx_pending == 1  # nobody drained it
    # now install the ISR and switch interrupt mode on: backlog serviced
    adapters[1].set_interrupt_handler(isr)
    adapters[1].set_interrupt_mode(True)
    env.run()
    assert len(seen) == 1
    assert adapters[1].rx_pending == 0


def test_isr_exception_propagates():
    env, params, adapters, stats = build()

    def isr(adapter):
        yield env.timeout(1.0)
        raise RuntimeError("handler bug")

    adapters[1].set_interrupt_handler(isr)
    adapters[1].set_interrupt_mode(True)

    def sender():
        yield adapters[0].enqueue_send(pkt(0, 1))

    env.process(sender())
    with pytest.raises(RuntimeError, match="handler bug"):
        env.run()
