#!/usr/bin/env python3
"""2-D heat-diffusion stencil on a Cartesian process grid.

Demonstrates two extensions beyond the paper's core reproduction:

* ``repro.mpi.topology.CartComm`` — MPI_Cart-style process grids with
  neighbour shifts, and
* the contention-aware **staged** (butterfly) switch fabric
  (``MachineParams(fabric_model="staged")``).

Four ranks in a 2x2 grid each own a block of the plate; every step they
exchange halo rows/columns with grid neighbours and apply a Jacobi
update.  The result is checked against a serial run of the same
recursion.

Run:  python examples/stencil_topology.py
"""

import numpy as np

from repro import MachineParams, SPCluster
from repro.mpi.topology import CartComm, dims_create

N = 32          # global grid is N x N
STEPS = 10
ALPHA = 0.2


def serial(steps=STEPS):
    grid = np.zeros((N, N))
    grid[0, :] = 1.0  # hot top edge
    for _ in range(steps):
        interior = grid[1:-1, 1:-1]
        grid = grid.copy()
        grid[1:-1, 1:-1] = interior + ALPHA * (
            np.roll(grid, 1, 0)[1:-1, 1:-1] + np.roll(grid, -1, 0)[1:-1, 1:-1]
            + np.roll(grid, 1, 1)[1:-1, 1:-1] + np.roll(grid, -1, 1)[1:-1, 1:-1]
            - 4 * interior
        )
    return grid


def program(comm, rank, size):
    dims = dims_create(size, 2)
    cart = CartComm(comm, dims)
    pr, pc = cart.coords
    bh, bw = N // dims[0], N // dims[1]
    r0, c0 = pr * bh, pc * bw

    full = np.zeros((N, N))
    full[0, :] = 1.0
    block = full[r0 : r0 + bh, c0 : c0 + bw].copy()
    up = np.zeros(bw)
    down = np.zeros(bw)
    left = np.zeros(bh)
    right = np.zeros(bh)

    for _ in range(STEPS):
        # halo exchanges along both dimensions (rows then columns)
        yield from cart.neighbour_sendrecv(0, 1, block[-1].copy(), up, tag=1)
        yield from cart.neighbour_sendrecv(0, -1, block[0].copy(), down, tag=2)
        yield from cart.neighbour_sendrecv(1, 1, block[:, -1].copy(), left, tag=3)
        yield from cart.neighbour_sendrecv(1, -1, block[:, 0].copy(), right, tag=4)

        padded = np.zeros((bh + 2, bw + 2))
        padded[1:-1, 1:-1] = block
        padded[0, 1:-1] = up if pr > 0 else 0.0
        padded[-1, 1:-1] = down if pr < dims[0] - 1 else 0.0
        padded[1:-1, 0] = left if pc > 0 else 0.0
        padded[1:-1, -1] = right if pc < dims[1] - 1 else 0.0

        new = block + ALPHA * (
            padded[:-2, 1:-1] + padded[2:, 1:-1]
            + padded[1:-1, :-2] + padded[1:-1, 2:] - 4 * block
        )
        # physical boundary stays clamped
        if pr == 0:
            new[0] = block[0]
        if pr == dims[0] - 1:
            new[-1] = block[-1]
        if pc == 0:
            new[:, 0] = block[:, 0]
        if pc == dims[1] - 1:
            new[:, -1] = block[:, -1]
        block = new

    out = np.zeros((size, bh, bw))
    yield from comm.gather(block, out if rank == 0 else None, root=0)
    if rank == 0:
        result = np.zeros((N, N))
        for r in range(size):
            rr, rc = cart.rank_to_coords(r)
            result[rr * bh : (rr + 1) * bh, rc * bw : (rc + 1) * bw] = out[r]
        return result
    return None


def main():
    cluster = SPCluster(4, stack="lapi-enhanced",
                        params=MachineParams(fabric_model="staged"))
    res = cluster.run(program)
    parallel = res.values[0]
    reference = serial()
    err = np.max(np.abs(parallel - reference))
    print(f"2x2 process grid, {N}x{N} plate, {STEPS} Jacobi steps")
    print(f"max |parallel - serial| = {err:.2e}  "
          f"({'OK' if err < 1e-12 else 'MISMATCH'})")
    print(f"simulated time: {res.elapsed_us:.0f} us on the staged fabric; "
          f"fabric contention: {cluster.fabric.contention_us:.1f} us")


if __name__ == "__main__":
    main()
