#!/usr/bin/env python3
"""Interrupt mode vs polling mode — the paper's Fig 13 pathology, live.

In interrupt mode the receiver does NOT sit in an MPI call; it spins on
the contents of its receive buffer, so the message can only arrive via
the adapter interrupt.  The native MPI's interrupt handler dwells
(hysteresis) hoping to batch further packets; LAPI's handler just
drains and returns.

Run:  python examples/interrupt_vs_polling.py
"""

from repro.bench.harness import interrupt_pingpong_us, pingpong_us


def main():
    print(f"{'size':>7} | {'mode':>9} | {'native us':>10} | {'mpi-lapi us':>11} | ratio")
    print("-" * 58)
    for size in (4, 1024):
        pn = pingpong_us("native", size, reps=6)
        pl = pingpong_us("lapi-enhanced", size, reps=6)
        print(f"{size:>7} | {'polling':>9} | {pn:10.1f} | {pl:11.1f} | {pn/pl:5.2f}x")
        inn = interrupt_pingpong_us("native", size, reps=6)
        inl = interrupt_pingpong_us("lapi-enhanced", size, reps=6)
        print(f"{size:>7} | {'interrupt':>9} | {inn:10.1f} | {inl:11.1f} | {inn/inl:5.2f}x")
    print("\nPolling: the two stacks are within tens of percent.")
    print("Interrupt: the native hysteresis dwell multiplies its latency,")
    print("exactly the effect the paper shows in Figure 13.")


if __name__ == "__main__":
    main()
