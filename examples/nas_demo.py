#!/usr/bin/env python3
"""Run NAS mini-kernels on a 4-node SP, native MPI vs MPI-LAPI.

A condensed version of the paper's §6.2 table: two communication-bound
kernels (IS, LU) where MPI-LAPI wins clearly and one compute-bound one
(EP) where the stacks tie.  Every kernel verifies its numerics against
a serial numpy reference before timing counts.

Run:  python examples/nas_demo.py
"""

from repro import SPCluster
from repro.nas import run_kernel


def main():
    print(f"{'kernel':>8} | {'native (us)':>12} | {'mpi-lapi (us)':>13} | "
          f"{'improvement':>11} | verified")
    print("-" * 66)
    for kernel in ("is", "lu", "cg", "ep"):
        times = {}
        verified = True
        for stack in ("native", "lapi-enhanced"):
            cluster = SPCluster(4, stack=stack)
            result = run_kernel(kernel, cluster)
            verified &= all(o.verified for o in result.values)
            times[stack] = result.elapsed_us
        impr = 100.0 * (times["native"] - times["lapi-enhanced"]) / times["native"]
        print(f"{kernel.upper():>8} | {times['native']:12.0f} | "
              f"{times['lapi-enhanced']:13.0f} | {impr:10.1f}% | "
              f"{'yes' if verified else 'NO'}")
    print("\nIS/LU move lots of bytes / many small messages -> MPI-LAPI's")
    print("copy avoidance and cheap completions pay; EP barely communicates.")


if __name__ == "__main__":
    main()
