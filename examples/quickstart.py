#!/usr/bin/env python3
"""Quickstart: a two-node ping-pong on the MPI-LAPI stack.

Builds a simulated 2-node RS/6000 SP, runs a blocking-send/recv
ping-pong over the paper's enhanced MPI-LAPI stack, and reports the
one-way latency plus what the protocol machinery did under the hood.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SPCluster


def pingpong(comm, rank, size, msg_size=1024, reps=10):
    """Each rank's program: generators yield on blocking operations."""
    payload = np.arange(msg_size, dtype=np.uint8)
    buf = np.zeros(msg_size, dtype=np.uint8)
    yield from comm.barrier()
    t0 = comm.env.now
    for _ in range(reps):
        if rank == 0:
            yield from comm.send(payload, dest=1, tag=7)
            yield from comm.recv(buf, source=1, tag=7)
        else:
            yield from comm.recv(buf, source=0, tag=7)
            yield from comm.send(buf, dest=0, tag=7)
    elapsed = comm.env.now - t0
    assert np.array_equal(buf, payload), "data corrupted in flight!"
    return elapsed / reps / 2.0  # one-way time


def main():
    for stack in ("native", "lapi-enhanced"):
        cluster = SPCluster(2, stack=stack)
        result = cluster.run(pingpong)
        s = result.stats
        print(f"stack={stack:14s} one-way latency {result.values[0]:7.2f} us | "
              f"copies={s.copies:3d} ({s.bytes_copied} B) "
              f"packets={s.packets_sent} ctx-switches={s.ctx_switches}")
    print("\nThe native stack stages every byte through pipe buffers;")
    print("MPI-LAPI's header handlers deliver straight into the user buffer.")


if __name__ == "__main__":
    main()
