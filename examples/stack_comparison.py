#!/usr/bin/env python3
"""Compare all four MPI stacks (plus raw LAPI) like the paper's §5-§6.

Prints a latency table across message sizes for:
  raw LAPI, MPI-LAPI {base, counters, enhanced}, and the native MPI —
the condensed story of Figures 10 and 11.

Run:  python examples/stack_comparison.py
"""

from repro.bench.harness import pingpong_us, raw_lapi_pingpong_us

SIZES = [4, 64, 1024, 16384]
STACKS = ["native", "lapi-base", "lapi-counters", "lapi-enhanced"]


def main():
    header = f"{'size':>8} | {'raw-lapi':>10} | " + " | ".join(f"{s:>14}" for s in STACKS)
    print(header)
    print("-" * len(header))
    for size in SIZES:
        cells = [f"{raw_lapi_pingpong_us(size, reps=6):10.1f}"]
        for stack in STACKS:
            cells.append(f"{pingpong_us(stack, size, reps=6):14.1f}")
        print(f"{size:>8} | " + " | ".join(cells))
    print("\nReading the table (paper §5):")
    print(" * base pays ~2 thread context switches per message (completion")
    print("   handlers run on a separate thread),")
    print(" * counters removes them for eager messages only,")
    print(" * enhanced runs completion handlers in-context: ~raw LAPI + MPI")
    print("   matching cost,")
    print(" * native wins only below the small-message crossover.")


if __name__ == "__main__":
    main()
