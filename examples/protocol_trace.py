#!/usr/bin/env python3
"""Trace the eager and rendezvous protocols through the stack.

Sends one small (eager) and one large (rendezvous) message and prints
the protocol counters each produced: early arrivals, header handlers,
completion-handler styles, control traffic — the paper's Figs 3-9 as
observable behaviour.

Run:  python examples/protocol_trace.py
"""

from dataclasses import fields

from repro import MachineParams, SPCluster


def send_one(stack, size, late_receiver):
    cluster = SPCluster(2, stack=stack)
    payload = bytes(size)

    def program(comm, rank, n):
        if rank == 0:
            yield from comm.send(payload, dest=1)
            return None
        if late_receiver:
            yield from comm.probe(source=0)  # progress without a receive
        buf = bytearray(size)
        yield from comm.recv(buf, source=0)
        assert bytes(buf) == payload
        return None

    result = cluster.run(program)
    return result.stats


INTERESTING = [
    "eager_sends", "rendezvous_started", "early_arrivals",
    "hdr_handlers_run", "cmpl_handlers_threaded", "cmpl_handlers_inline",
    "copies", "bytes_copied", "packets_sent", "ctx_switches",
]


def show(title, stats):
    print(f"\n--- {title}")
    for name in INTERESTING:
        v = getattr(stats, name)
        if v:
            print(f"    {name:24s} {v}")


def timeline(stack, size):
    """Print the actual event timeline of one message (trace subsystem)."""
    cluster = SPCluster(2, stack=stack, trace=True)
    payload = bytes(size)

    def program(comm, rank, n):
        if rank == 0:
            yield from comm.send(payload, dest=1)
            return None
        buf = bytearray(size)
        yield from comm.recv(buf, source=0)
        return None

    cluster.run(program)
    interesting = ("amsend", "hdr_handler", "matched_posted", "early_arrival",
                   "msg_complete", "cmpl_inline", "cmpl_queued_to_thread",
                   "cmpl_thread_run", "rts_acked")
    print(f"\n=== timeline: one {size}-byte message on {stack}")
    for r in cluster.tracer.records:
        if r.event in interesting:
            print(f"    {r}")


def main():
    el = MachineParams().eager_limit
    print(f"eager limit = {el} bytes (paper default)")
    timeline("lapi-enhanced", 256)        # Fig 3: eager
    timeline("lapi-enhanced", 3 * el)     # Figs 4-7: rendezvous
    timeline("lapi-base", 256)            # the §5 thread hand-off, visible
    show("eager, receive pre-posted (lapi-enhanced, 256 B)",
         send_one("lapi-enhanced", 256, late_receiver=False))
    show("eager, EARLY ARRIVAL (lapi-enhanced, 256 B, receiver late)",
         send_one("lapi-enhanced", 256, late_receiver=True))
    show("rendezvous (lapi-enhanced, 32 KiB)",
         send_one("lapi-enhanced", 32 * 1024, late_receiver=False))
    show("rendezvous on the Base variant: note the threaded completion "
         "handlers\n    and context switches",
         send_one("lapi-base", 32 * 1024, late_receiver=False))
    show("the native stack, same 32 KiB: staging copies instead",
         send_one("native", 32 * 1024, late_receiver=False))


if __name__ == "__main__":
    main()
