#!/usr/bin/env python3
"""Trace the eager and rendezvous protocols through the stack.

Sends one small (eager) and one large (rendezvous) message and prints
the protocol counters each produced: early arrivals, header handlers,
completion-handler styles, control traffic — the paper's Figs 3-9 as
observable behaviour.

Run:  python examples/protocol_trace.py
"""

from dataclasses import fields

from repro import MachineParams, SPCluster


def send_one(stack, size, late_receiver):
    cluster = SPCluster(2, stack=stack)
    payload = bytes(size)

    def program(comm, rank, n):
        if rank == 0:
            yield from comm.send(payload, dest=1)
            return None
        if late_receiver:
            yield from comm.probe(source=0)  # progress without a receive
        buf = bytearray(size)
        yield from comm.recv(buf, source=0)
        assert bytes(buf) == payload
        return None

    result = cluster.run(program)
    return result.stats


INTERESTING = [
    "eager_sends", "rendezvous_started", "early_arrivals",
    "hdr_handlers_run", "cmpl_handlers_threaded", "cmpl_handlers_inline",
    "copies", "bytes_copied", "packets_sent", "ctx_switches",
]


def show(title, stats):
    print(f"\n--- {title}")
    for name in INTERESTING:
        v = getattr(stats, name)
        if v:
            print(f"    {name:24s} {v}")


def timeline(stack, size, export_perfetto=False):
    """Print one message's causal span tree (the trace subsystem).

    With ``export_perfetto`` the same trees are also written as
    Perfetto/Chrome trace-event JSON — drop the file on
    https://ui.perfetto.dev to see the cross-node timeline with flow
    arrows from sender to receiver.
    """
    import os
    import tempfile

    from repro.obs import build_span_trees, render_text, write_chrome_trace

    cluster = SPCluster(2, stack=stack, trace=True)
    payload = bytes(size)

    def program(comm, rank, n):
        if rank == 0:
            yield from comm.send(payload, dest=1)
            return None
        buf = bytearray(size)
        yield from comm.recv(buf, source=0)
        return None

    cluster.run(program)
    trees = build_span_trees(cluster.tracer)
    print(f"\n=== span tree: one {size}-byte message on {stack}")
    print(render_text(trees), end="")
    if export_perfetto:
        path = os.path.join(tempfile.gettempdir(),
                            f"protocol_trace_{stack}_{size}.perfetto.json")
        write_chrome_trace(trees, path)
        print(f"    perfetto export -> {path}")


def main():
    el = MachineParams().eager_limit
    print(f"eager limit = {el} bytes (paper default)")
    timeline("lapi-enhanced", 256)        # Fig 3: eager
    timeline("lapi-enhanced", 3 * el,     # Figs 4-7: rendezvous
             export_perfetto=True)
    timeline("lapi-base", 256)            # the §5 thread hand-off, visible
    show("eager, receive pre-posted (lapi-enhanced, 256 B)",
         send_one("lapi-enhanced", 256, late_receiver=False))
    show("eager, EARLY ARRIVAL (lapi-enhanced, 256 B, receiver late)",
         send_one("lapi-enhanced", 256, late_receiver=True))
    show("rendezvous (lapi-enhanced, 32 KiB)",
         send_one("lapi-enhanced", 32 * 1024, late_receiver=False))
    show("rendezvous on the Base variant: note the threaded completion "
         "handlers\n    and context switches",
         send_one("lapi-base", 32 * 1024, late_receiver=False))
    show("the native stack, same 32 KiB: staging copies instead",
         send_one("native", 32 * 1024, late_receiver=False))


if __name__ == "__main__":
    main()
