#!/usr/bin/env python3
"""Run a legacy MPL-style program over the LAPI transport.

The paper's §2 lineage: MPL was IBM's pre-MPI interface, and the native
MPI reused its infrastructure.  Here a classic MPL-shaped token-ring
program (integer message ids, mpc_bsend/mpc_brecv, DONTCARE wildcards,
mpc_combine) runs unchanged on top of MPI-LAPI — the "make LAPI the
common transport layer for other communication libraries" goal stated
in the paper's introduction.

Run:  python examples/mpl_legacy.py
"""

import numpy as np

from repro import SPCluster
from repro.mpl import ALLMSG, DONTCARE, MplTask


def legacy_program(task: MplTask, rank, size):
    numtask, taskid = task.mpc_environ()
    log = []

    # --- a token ring with typed messages, MPL style
    token = np.zeros(1, dtype=np.int64)
    if taskid == 0:
        token[0] = 1000
        yield from task.mpc_bsend(token, dest=1, type_=17)
        nbytes, src, typ = yield from task.mpc_brecv(token, source=DONTCARE,
                                                     type_=DONTCARE)
        log.append(f"task 0: token came home = {int(token[0])} "
                   f"(from task {src}, type {typ}, {nbytes}B)")
    else:
        yield from task.mpc_brecv(token, source=taskid - 1, type_=17)
        token[0] += taskid
        yield from task.mpc_bsend(token, dest=(taskid + 1) % numtask, type_=17)

    # --- nonblocking pairwise exchange, waited with ALLMSG
    mine = np.full(4, taskid, dtype=np.int64)
    theirs = np.zeros(4, dtype=np.int64)
    partner = numtask - 1 - taskid
    if partner != taskid:
        yield from task.mpc_recv(theirs, source=partner, type_=2)
        yield from task.mpc_send(mine, dest=partner, type_=2)
        yield from task.mpc_wait(ALLMSG)
        log.append(f"task {taskid}: swapped with {partner}, got {int(theirs[0])}")

    # --- a combine (allreduce) to close
    total = np.zeros(1, dtype=np.float64)
    yield from task.mpc_combine(np.array([float(taskid)]), total, op="sum")
    log.append(f"task {taskid}: combine -> {total[0]:.0f}")
    yield from task.mpc_sync()
    return log


def main():
    cluster = SPCluster(4, stack="lapi-enhanced")

    def wrapper(comm, rank, size):
        return (yield from legacy_program(MplTask(comm), rank, size))

    res = cluster.run(wrapper)
    for rank_log in res.values:
        for line in rank_log:
            print(line)
    print(f"\nsimulated time {res.elapsed_us:.0f} us — an MPL program on LAPI.")


if __name__ == "__main__":
    main()
