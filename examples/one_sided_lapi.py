#!/usr/bin/env python3
"""Program directly against LAPI — the paper's Table 1 API.

Three tasks use one-sided Put/Get, a remote atomic (Rmw), counters and
fences with no MPI layer at all: the raw-lapi stack hands each rank the
Lapi object itself.

Run:  python examples/one_sided_lapi.py
"""

import numpy as np

from repro import SPCluster
from repro.lapi.counters import Counter


class SharedSlot:
    """A remotely RMW-able scalar."""

    def __init__(self, value=0):
        self.value = value


def program(lapi, rank, size):
    # publish a window and a fetch-and-add slot
    window = bytearray(64)
    ticket = SharedSlot(0)
    lapi.address_init("win", window)
    lapi.address_init("ticket", ticket)
    _cid, tgt_cntr = lapi.create_counter("win")
    yield from lapi.gfence("user")  # everyone registered

    log = []
    if rank != 0:
        # grab a unique ticket from task 0 with a remote fetch-and-add
        prev = Counter(lapi.env, "prev")
        rid = yield from lapi.rmw("user", 0, "ticket", "FETCH_AND_ADD", 1,
                                  prev_cntr=prev)
        yield from lapi.waitcntr("user", prev, 1)
        _done, my_ticket = lapi.rmw_result(rid)
        log.append(f"task {rank}: got ticket {my_ticket}")
        # write a greeting into task 0's window at our ticket's offset
        msg = f"[{rank}]".encode()
        yield from lapi.put("user", 0, "win", my_ticket * 8, msg)
        yield from lapi.fence("user")  # ensure it landed
    yield from lapi.gfence("user")
    if rank == 0:
        log.append(f"task 0 window: {bytes(window[:24])!r}  tickets={ticket.value}")
        # read back a remote copy with Get to prove symmetry
        peek = bytearray(8)
        org = Counter(lapi.env, "org")
        yield from lapi.get("user", 1, "win", 0, 8, peek, org_cntr=org)
        yield from lapi.waitcntr("user", org, 1)
    yield from lapi.gfence("user")
    return log


def main():
    cluster = SPCluster(3, stack="raw-lapi")
    result = cluster.run(program)
    for rank_log in result.values:
        for line in rank_log:
            print(line)
    print(f"\nsimulated time: {result.elapsed_us:.1f} us, "
          f"header handlers run: {result.stats.hdr_handlers_run}")


if __name__ == "__main__":
    main()
