#!/usr/bin/env python3
"""MPI-3 one-sided halo exchange over fence epochs.

A 1-D ring: each rank owns a window with two ghost slots and Puts its
boundary cells into its neighbours' ghosts each iteration, with a
single MPI_Win_fence closing the epoch — no tags, no matching, no
receive posting.  The same program runs on the thin LAPI mapping and
on the native stack (where RMA is emulated through a target-side
server over send/recv), so the elapsed times show the layering
contrast directly.

Run:  python examples/rma_halo.py
"""

import numpy as np

from repro import SPCluster

CELLS = 16          # interior cells per rank
ITERS = 4
GHOST = 8           # one float64 ghost slot per side


def program(comm, rank, size):
    # window layout: [left ghost | right ghost] — 2 slots of 8 bytes
    win = yield from comm.win_create(2 * GHOST)
    left = (rank - 1) % size
    right = (rank + 1) % size
    interior = np.full(CELLS, float(rank + 1))
    yield from win.fence()
    for _ in range(ITERS):
        # my first cell goes into my left neighbour's right ghost,
        # my last cell into my right neighbour's left ghost
        yield from win.put(interior[:1].tobytes(), left, GHOST)
        yield from win.put(interior[-1:].tobytes(), right, 0)
        yield from win.fence()
        ghosts = np.frombuffer(bytes(win.mem), dtype=np.float64)
        # 3-point update on the boundary cells only (demo-sized stencil)
        interior[0] = (ghosts[0] + interior[0] + interior[1]) / 3.0
        interior[-1] = (interior[-2] + interior[-1] + ghosts[1]) / 3.0
        yield from win.fence()
    yield from win.free()
    return float(interior.sum())


def main():
    for stack in ("lapi-enhanced", "native"):
        cluster = SPCluster(4, stack=stack)
        result = cluster.run(program)
        total = sum(result.values)
        print(f"{stack:14s}  sum={total:10.4f}  "
              f"elapsed={result.elapsed_us:8.1f} us")
    print("fence-synchronized halo: no tags, no matching, no recv posting")


if __name__ == "__main__":
    main()
